//! Clean mirror: allowlisted `unsafe` with its SAFETY comment.

pub fn lane_sum(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is valid for reads and aligned.
    unsafe { *p }
}
