//! Clean mirror: a panic-free decode path and in-sync doc tables.

pub const PROTOCOL_VERSION: u8 = 6;
const REQ_PING: u8 = 0x01;

pub fn decode_frame(payload: &[u8]) -> Result<u8, ()> {
    match payload.first() {
        Some(v) if *v == REQ_PING => Ok(*v),
        _ => Err(()),
    }
}
