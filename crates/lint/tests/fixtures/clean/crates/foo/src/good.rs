//! The clean mirror of `violations/crates/foo/src/bad.rs`: every
//! pattern the checks deny, written the approved way.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub static JOBS: AtomicU64 = AtomicU64::new(0);
pub static WORKERS_READY: AtomicBool = AtomicBool::new(false);

pub fn count() -> u64 {
    JOBS.load(Ordering::Relaxed) // ord: monotonic counter, no data published
}

pub fn gate_probe() -> bool {
    // ord: gate: pure toggle; readers take no data dependency through it
    WORKERS_READY.load(Ordering::Relaxed)
}

pub fn flush_then_write(m: &Mutex<Vec<u8>>, f: &mut std::fs::File) -> std::io::Result<()> {
    use std::io::Write;
    let copy = m.lock().unwrap().clone();
    f.write_all(&copy)
}

pub fn commit_under_lock(m: &Mutex<Vec<u8>>, f: &mut std::fs::File) -> std::io::Result<()> {
    use std::io::Write;
    // lint: allow(lock_across_io) — the write under the lock IS the commit point
    let buf = m.lock().unwrap();
    f.write_all(&buf)
}

pub fn register() {
    counter("psketch_real_total").inc();
}
