//! Clean mirror: float math only inside `merge_plan_counts`.

pub fn merge_plan_counts(xs: &[u64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x as f64;
    }
    acc
}

pub fn total(xs: &[u64]) -> u64 {
    xs.iter().sum()
}
