//! Seeded violations: panic-freedom in a decode path, and both
//! directions of opcode/version doc-drift.

pub const PROTOCOL_VERSION: u8 = 9;
const REQ_PING: u8 = 0x01;

pub fn decode_frame(payload: &[u8]) -> u8 {
    let first = payload[0];
    let parsed: Result<u8, ()> = Ok(first);
    parsed.unwrap()
}

pub fn encode_frame(v: u8) -> Vec<u8> {
    // The encode half is out of panic-freedom scope: this expect is a
    // programmer-error assertion and must NOT be flagged.
    let n: u8 = u8::try_from(64usize).expect("fits in u8");
    vec![v, n, REQ_PING]
}
