//! Seeded violation: this file IS on the unsafe allowlist, but the
//! `unsafe` block below lacks the required safety justification.

pub fn lane_sum(p: *const u64) -> u64 {
    unsafe { *p }
}
