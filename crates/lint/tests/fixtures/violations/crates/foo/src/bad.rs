//! Seeded violations: unsafe-audit (non-allowlisted file),
//! atomics-audit (missing ord comment; Relaxed gate without `gate:`),
//! lock-across-io, and the unregistered-metric side of doc-drift.
//! This file is fixture data — it is never compiled.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub static JOBS: AtomicU64 = AtomicU64::new(0);
pub static WORKERS_READY: AtomicBool = AtomicBool::new(false);

pub fn raw_peek(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn count() -> u64 {
    JOBS.load(Ordering::SeqCst)
}

pub fn gate_probe() -> bool {
    // ord: cheap probe (deliberately missing the marker for gate names)
    WORKERS_READY.load(Ordering::Relaxed)
}

pub fn flush_under_lock(m: &Mutex<Vec<u8>>, f: &mut std::fs::File) -> std::io::Result<()> {
    use std::io::Write;
    let buf = m.lock().unwrap();
    f.write_all(&buf)
}

pub fn register() {
    counter("psketch_real_total").inc();
}
