//! Seeded violations: float arithmetic outside `merge_plan_counts`.

pub fn merge_plan_counts(xs: &[u64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x as f64;
    }
    acc
}

pub fn skew(a: u64, b: u64) -> f64 {
    a as f64 / (b as f64 + 1.0)
}
