//! Fixture-driven self-tests: each of the six checks must fire on its
//! seeded violation and stay silent on the clean mirror — and the real
//! workspace must be clean, which makes `cargo test` itself a lint gate.

use std::path::{Path, PathBuf};

use psketch_lint::Diagnostic;

const ALL_CHECKS: &[&str] = &[
    "unsafe-audit",
    "atomics-audit",
    "panic-freedom",
    "lock-across-io",
    "doc-drift",
    "float-determinism",
];

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn run(root: &Path) -> Vec<Diagnostic> {
    psketch_lint::run(root)
        .expect("fixture tree scans")
        .diagnostics
}

fn fired(diags: &[Diagnostic], check: &str, file_frag: &str) -> bool {
    diags
        .iter()
        .any(|d| d.check == check && d.file.contains(file_frag))
}

#[test]
fn every_check_fires_on_its_seeded_violation() {
    let diags = run(&fixture_root("violations"));
    for check in ALL_CHECKS {
        assert!(
            diags.iter().any(|d| d.check == *check),
            "check {check} did not fire on the seeded fixtures; got:\n{}",
            render(&diags)
        );
    }
    // Anchors: each finding lands in the file that seeded it.
    assert!(fired(&diags, "unsafe-audit", "foo/src/bad.rs"));
    assert!(fired(&diags, "unsafe-audit", "prf/src/lanes.rs"));
    assert!(fired(&diags, "atomics-audit", "foo/src/bad.rs"));
    assert!(fired(&diags, "panic-freedom", "server/src/wire.rs"));
    assert!(fired(&diags, "lock-across-io", "foo/src/bad.rs"));
    assert!(fired(&diags, "float-determinism", "cluster/src/router.rs"));
    // Doc-drift fires in both directions plus the version phrase.
    assert!(fired(&diags, "doc-drift", "server/src/wire.rs"));
    assert!(fired(&diags, "doc-drift", "docs/wire-protocol.md"));
    assert!(fired(&diags, "doc-drift", "foo/src/bad.rs"));
    assert!(fired(&diags, "doc-drift", "docs/observability.md"));
}

#[test]
fn gate_named_relaxed_needs_gate_marker() {
    let diags = run(&fixture_root("violations"));
    assert!(
        diags
            .iter()
            .any(|d| d.check == "atomics-audit" && d.message.contains("WORKERS_READY")),
        "Relaxed on a gate-named atomic with a plain ord comment must still fire:\n{}",
        render(&diags)
    );
}

#[test]
fn encode_half_is_out_of_panic_scope() {
    let diags = run(&fixture_root("violations"));
    // The seeded wire.rs has an `.expect(...)` in `encode_frame`; only
    // the decode path is scoped, so every panic-freedom finding must sit
    // inside `decode_frame` (lines 7-11 of the fixture).
    for d in diags
        .iter()
        .filter(|d| d.check == "panic-freedom" && d.file.contains("wire.rs"))
    {
        assert!(
            (7..=11).contains(&d.line),
            "panic-freedom fired outside the decode path: {d}"
        );
    }
}

#[test]
fn clean_tree_passes_every_check() {
    let diags = run(&fixture_root("clean"));
    assert!(
        diags.is_empty(),
        "clean fixtures must produce zero findings; got:\n{}",
        render(&diags)
    );
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root resolves");
    let report = psketch_lint::run(&root).expect("workspace scans");
    assert!(
        report.files_scanned > 20,
        "expected to scan the whole workspace, saw only {} files",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must lint clean; got:\n{}",
        render(&report.diagnostics)
    );
}

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}
