//! **panic-freedom** — the hostile-input surfaces must turn bad bytes
//! into error values, never into a worker panic. Within the scoped
//! files/functions the check denies `.unwrap()` / `.expect(...)`,
//! every panicking macro, and unchecked slice indexing (`xs[i]`,
//! `&buf[n..]`).
//!
//! Indexing detection: a `[` token counts as indexing when the previous
//! token is a plain identifier, `)`, or `]` — which matches `xs[i]` and
//! `(expr)[i]` but not `vec![..]` (previous token `!`), attributes
//! (`#`), array literals/types (`=`, `:`, `<`, ...), or slice patterns
//! (`let [a, b] = ..`).

use crate::checks::{is_ident, is_punct};
use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::Diagnostic;

pub const CHECK: &str = "panic-freedom";

/// Which code is held to panic-freedom. `fns: None` scopes the whole
/// file; otherwise only the named functions (a trailing `*` matches a
/// prefix). The wire module is fn-scoped because its *encode* half may
/// assert on programmer error — only the decode half faces the network.
struct Scope {
    file_suffix: &'static str,
    fns: Option<&'static [&'static str]>,
}

const SCOPES: &[Scope] = &[
    Scope {
        file_suffix: "crates/server/src/wire.rs",
        fns: Some(&[
            "get_*",
            "decode*",
            "open_payload",
            "frame_version",
            "read_frame",
            // Dec, the bounds-checked cursor every decoder runs on.
            "take",
            "array",
            "u8",
            "u16",
            "u32",
            "u64",
            "f64",
            "count",
            "bytes",
            "string",
            "finish",
        ]),
    },
    Scope {
        file_suffix: "crates/server/src/server.rs",
        fns: None,
    },
    Scope {
        file_suffix: "crates/obs/src/expose.rs",
        fns: None,
    },
    Scope {
        file_suffix: "crates/obs/src/span.rs",
        fns: None,
    },
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

fn fn_matches(name: &str, pat: &str) -> bool {
    match pat.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == pat,
    }
}

fn in_scope(sf: &SourceFile, scope: &Scope, i: usize) -> bool {
    match scope.fns {
        None => true,
        Some(pats) => sf
            .enclosing_fn(i)
            .is_some_and(|f| pats.iter().any(|p| fn_matches(&f.name, p))),
    }
}

pub fn run(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for sf in files {
        let Some(scope) = SCOPES.iter().find(|s| sf.rel.ends_with(s.file_suffix)) else {
            continue;
        };
        for i in 0..sf.toks.len() {
            let t = &sf.toks[i];
            if t.in_test {
                continue;
            }
            let finding: Option<String> = if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && is_punct(sf, i - 1, ".")
                && is_punct(sf, i + 1, "(")
            {
                Some(format!("`.{}(...)` can panic", t.text))
            } else if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && is_punct(sf, i + 1, "!")
            {
                Some(format!("`{}!` can panic", t.text))
            } else if t.kind == TokKind::Punct && t.text == "[" && i > 0 {
                let prev = &sf.toks[i - 1];
                let indexing = is_ident(sf, i - 1)
                    || (prev.kind == TokKind::Punct && (prev.text == ")" || prev.text == "]"));
                indexing.then(|| {
                    format!(
                        "unchecked slice index after `{}` can panic; use .get()/.get_mut()",
                        prev.text
                    )
                })
            } else {
                None
            };
            let Some(what) = finding else { continue };
            if !in_scope(sf, scope, i) || sf.has_allow(CHECK, t.line) {
                continue;
            }
            diags.push(Diagnostic {
                file: sf.rel.clone(),
                line: t.line,
                check: CHECK,
                message: format!(
                    "{what} in a panic-free surface (hostile input must map to an error value)"
                ),
            });
        }
    }
}
