//! **unsafe-audit** — `unsafe` is confined to an explicit allowlist of
//! files, and every occurrence must sit under a `// SAFETY:` comment
//! (within the three lines above it). The allowlist is the policy: new
//! `unsafe` anywhere else is a finding even if perfectly justified —
//! the justification belongs in a review that also extends the list.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::Diagnostic;

pub const CHECK: &str = "unsafe-audit";

/// Files allowed to contain `unsafe` at all. Today: only the AVX-512
/// SipHash lane kernels, each call site SAFETY-commented and gated on
/// runtime CPU detection.
const ALLOWED_FILES: &[&str] = &["crates/prf/src/lanes.rs"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (attributes like `#[allow(unsafe_code)]` often intervene).
const SAFETY_LOOKBACK: u32 = 3;

pub fn run(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for sf in files {
        let allowed_file = ALLOWED_FILES.iter().any(|a| sf.rel.ends_with(a));
        for t in &sf.toks {
            if t.in_test || !(t.kind == TokKind::Keyword && t.text == "unsafe") {
                continue;
            }
            if !allowed_file {
                diags.push(Diagnostic {
                    file: sf.rel.clone(),
                    line: t.line,
                    check: CHECK,
                    message: format!(
                        "`unsafe` outside the allowlist ({}); keep unsafe confined or \
                         extend ALLOWED_FILES in crates/lint with a review",
                        ALLOWED_FILES.join(", ")
                    ),
                });
                continue;
            }
            if !sf
                .comments_near(t.line, SAFETY_LOOKBACK)
                .contains("SAFETY:")
            {
                diags.push(Diagnostic {
                    file: sf.rel.clone(),
                    line: t.line,
                    check: CHECK,
                    message: "`unsafe` without a `// SAFETY:` comment in the 3 lines above it"
                        .into(),
                });
            }
        }
    }
}
