//! **float-determinism** — the cluster answers must be bit-identical
//! across fanout widths and to the single-node oracle, which holds only
//! because every float operation on the merge path happens in exactly
//! one function with a fixed reduction order (`merge_plan_counts`).
//! New `f64` arithmetic anywhere else in `cluster/src/router.rs` is
//! denied: float literals and `as f64`/`as f32` casts outside the
//! allowlisted function are findings. Code that genuinely needs float
//! math belongs in another module (where the scatter-gather order can't
//! affect it), not in the router.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::Diagnostic;

pub const CHECK: &str = "float-determinism";

const TARGET: &str = "crates/cluster/src/router.rs";
const ALLOWED_FNS: &[&str] = &["merge_plan_counts"];

pub fn run(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for sf in files {
        if !sf.rel.ends_with(TARGET) {
            continue;
        }
        for i in 0..sf.toks.len() {
            let t = &sf.toks[i];
            if t.in_test {
                continue;
            }
            let what = if t.kind == TokKind::Float {
                Some(format!("float literal `{}`", t.text))
            } else if t.kind == TokKind::Keyword
                && t.text == "as"
                && sf
                    .toks
                    .get(i + 1)
                    .is_some_and(|n| n.text == "f64" || n.text == "f32")
            {
                Some(format!("`as {}` cast", sf.toks[i + 1].text))
            } else {
                None
            };
            let Some(what) = what else { continue };
            if sf
                .enclosing_fn(i)
                .is_some_and(|f| ALLOWED_FNS.contains(&f.name.as_str()))
                || sf.has_allow(CHECK, t.line)
            {
                continue;
            }
            diags.push(Diagnostic {
                file: sf.rel.clone(),
                line: t.line,
                check: CHECK,
                message: format!(
                    "{what} in the router outside merge_plan_counts threatens the \
                     cross-fanout bit-identity contract; move the float math out of the router"
                ),
            });
        }
    }
}
