//! **lock-across-io** — a `Mutex`/`RwLock` guard binding held across a
//! blocking file/socket I/O call serializes every other thread behind
//! that device; the one deliberate case (the WAL commit path, where the
//! fsync *is* the commit point) carries `// lint: allow(lock_across_io)`.
//!
//! Approximation, function-granular and name-based:
//!
//! 1. Build the set of I/O-performing function names: seed with the
//!    blocking primitives (`write_all`, `read_exact`, `sync_all`,
//!    `sync_data`, ...) and close over workspace functions that call a
//!    name already in the set (a crude name-matched call graph).
//!    Propagation only flows through names defined *exactly once* in
//!    the workspace and not on the ubiquitous-name blocklist (`new`,
//!    `drop`, `write`, ...), so `Wal::record_batch` carries its I/O to
//!    callers but `Ledger::new` does not smear I/O over every
//!    constructor call.
//! 2. In each function, find *persisted guard bindings*: a `let`
//!    statement ending in `.lock()` / `.read()` / `.write()` (empty
//!    parens, so `io::Write::write(buf)` never matches) optionally
//!    chained through `unwrap`/`expect`/`unwrap_or_else` or `?`. A
//!    chain that keeps going (`rx.lock().recv_timeout(..)`) consumes
//!    the guard within the statement and is not a held lock.
//! 3. Flag the first I/O-set call after the binding in the same
//!    function, unless an allow annotation covers the I/O line, the
//!    binding line, or the function header.
//!
//! `stderr()`/`stdout()`/`stdin()` locks are exempt: holding the
//! stream's own lock over its write is the intended use, and seeding
//! the call graph from a log sink would smear "does I/O" over every
//! function that logs.

use std::collections::HashSet;

use crate::checks::{is_punct, stmt_start};
use crate::lexer::TokKind;
use crate::model::{FnSpan, SourceFile};
use crate::Diagnostic;

pub const CHECK: &str = "lock-across-io";

const IO_PRIMITIVES: &[&str] = &[
    "write_all",
    "read_exact",
    "sync_all",
    "sync_data",
    "read_to_end",
    "read_to_string",
];

/// Methods that may follow `.lock()` and still leave the guard bound.
const GUARD_CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Names too common to trust in a name-matched call graph: calling one
/// says nothing about *which* definition runs (and `drop(guard)` is the
/// idiomatic fix, not a violation).
const UBIQUITOUS: &[&str] = &[
    "new", "drop", "clone", "default", "lock", "read", "write", "next", "get", "insert", "push",
];

pub fn run(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    let io_fns = io_fn_names(files);
    for sf in files {
        for f in &sf.fns {
            check_fn(sf, f, &io_fns, diags);
        }
    }
}

/// Fixpoint over the name-matched call graph, seeded by the
/// primitives. The returned set contains only names a *call site* may
/// be charged with: unique, non-ubiquitous workspace definitions that
/// transitively reach a blocking primitive.
fn io_fn_names(files: &[SourceFile]) -> HashSet<String> {
    let mut def_counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for sf in files {
        for f in &sf.fns {
            *def_counts.entry(f.name.as_str()).or_insert(0) += 1;
        }
    }
    let trusted =
        |name: &str| def_counts.get(name).copied() == Some(1) && !UBIQUITOUS.contains(&name);
    let mut set: HashSet<String> = HashSet::new();
    loop {
        let mut changed = false;
        for sf in files {
            for f in &sf.fns {
                if set.contains(&f.name) || !trusted(&f.name) {
                    continue;
                }
                let calls_io = (f.start..=f.end.min(sf.toks.len() - 1)).any(|i| {
                    let t = &sf.toks[i];
                    t.kind == TokKind::Ident
                        && !t.in_test
                        && is_punct(sf, i + 1, "(")
                        && (IO_PRIMITIVES.contains(&t.text.as_str()) || set.contains(&t.text))
                        && !stream_lock_receiver(sf, i)
                        && !sf.has_allow(CHECK, t.line)
                });
                if calls_io {
                    set.insert(f.name.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            return set;
        }
    }
}

/// True when the call at token `i` is reached through a std stream
/// handle: `stderr().lock()...`, `stdout()...` — the sink's own lock.
fn stream_lock_receiver(sf: &SourceFile, i: usize) -> bool {
    let start = stmt_start(sf, i);
    sf.toks[start..i].iter().any(|t| {
        t.kind == TokKind::Ident && matches!(t.text.as_str(), "stderr" | "stdout" | "stdin")
    })
}

struct GuardBinding {
    name: String,
    line: u32,
    /// Token index just past the binding statement's `;`.
    after: usize,
}

fn check_fn(sf: &SourceFile, f: &FnSpan, io_fns: &HashSet<String>, diags: &mut Vec<Diagnostic>) {
    let owns = |i: usize| sf.enclosing_fn(i).is_some_and(|g| g.start == f.start);
    let mut bindings: Vec<GuardBinding> = Vec::new();
    let hi = f.end.min(sf.toks.len().saturating_sub(1));
    for i in f.start..=hi {
        if !owns(i) {
            continue;
        }
        let t = &sf.toks[i];
        if t.in_test {
            continue;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && is_punct(sf, i - 1, ".")
            && is_punct(sf, i + 1, "(")
            && is_punct(sf, i + 2, ")")
            && !stream_lock_receiver(sf, i)
        {
            if let Some(b) = persisted_binding(sf, i) {
                bindings.push(b);
            }
        }
    }
    for b in &bindings {
        for i in b.after..=hi {
            if !owns(i) {
                continue;
            }
            let t = &sf.toks[i];
            if t.in_test || t.kind != TokKind::Ident || !is_punct(sf, i + 1, "(") {
                continue;
            }
            if !(IO_PRIMITIVES.contains(&t.text.as_str()) || io_fns.contains(&t.text)) {
                continue;
            }
            if sf.has_allow(CHECK, t.line)
                || sf.has_allow(CHECK, b.line)
                || sf.has_allow(CHECK, f.header_line)
            {
                break;
            }
            diags.push(Diagnostic {
                file: sf.rel.clone(),
                line: t.line,
                check: CHECK,
                message: format!(
                    "guard `{}` (locked at line {}) is still held across I/O call `{}()`; \
                     drop the guard first or annotate `// lint: allow(lock_across_io)`",
                    b.name, b.line, t.text
                ),
            });
            break;
        }
    }
}

/// If the `.lock()` at token `i` is the tail of a `let` statement whose
/// chain only re-shapes the guard, returns the binding. `None` when the
/// statement consumes the guard or there is no `let`.
fn persisted_binding(sf: &SourceFile, i: usize) -> Option<GuardBinding> {
    let start = stmt_start(sf, i);
    let let_idx = (start..i).find(|&k| {
        let t = &sf.toks[k];
        t.kind == TokKind::Keyword && t.text == "let"
    })?;
    // Binding name: first identifier after `let` (skipping `mut`).
    let name = sf.toks[let_idx + 1..i]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())?;
    // Walk the chain after `.lock()`'s closing paren.
    let mut k = i + 2; // index of `)`
    loop {
        k += 1;
        let t = sf.toks.get(k)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" => {
                    return Some(GuardBinding {
                        name,
                        line: sf.toks[i].line,
                        after: k + 1,
                    })
                }
                "?" => continue,
                "." => {
                    let m = sf.toks.get(k + 1)?;
                    if m.kind != TokKind::Ident || !GUARD_CHAIN.contains(&m.text.as_str()) {
                        return None;
                    }
                    // Skip the method's balanced argument list.
                    if !is_punct(sf, k + 2, "(") {
                        return None;
                    }
                    let mut depth = 0usize;
                    let mut j = k + 2;
                    loop {
                        let p = sf.toks.get(j)?;
                        if p.kind == TokKind::Punct {
                            match p.text.as_str() {
                                "(" => depth += 1,
                                ")" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    k = j;
                }
                _ => return None,
            }
        } else {
            return None;
        }
    }
}
