//! **doc-drift** — the protocol and metrics documentation are contracts
//! other tools build against, so they are checked mechanically:
//!
//! * every `REQ_*`/`RESP_*` opcode constant in
//!   `crates/server/src/wire.rs` must appear (as `` `0xNN` `` in a
//!   table row) in `docs/wire-protocol.md`, and every opcode the doc
//!   tables list must exist in the code;
//! * the doc must state the current `PROTOCOL_VERSION` (the literal
//!   phrase `currently N`);
//! * every metric family registered in production code
//!   (`counter("psketch_…")` / `gauge(…)` / `histogram(…)`) must appear
//!   in the `docs/observability.md` catalog table, and vice versa.

use std::collections::BTreeMap;
use std::path::Path;

use crate::checks::is_punct;
use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::Diagnostic;

pub const CHECK: &str = "doc-drift";

const WIRE_RS: &str = "crates/server/src/wire.rs";
const WIRE_DOC: &str = "docs/wire-protocol.md";
const OBS_DOC: &str = "docs/observability.md";

pub fn run(root: &Path, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    if let Some(wire) = files.iter().find(|f| f.rel.ends_with(WIRE_RS)) {
        check_opcodes(root, wire, diags);
    }
    check_metrics(root, files, diags);
}

/// An opcode constant: name, value, defining line.
type Opcode = (String, u8, u32);

/// `REQ_*`/`RESP_*` u8 constants and `PROTOCOL_VERSION` from wire.rs.
fn wire_constants(wire: &SourceFile) -> (Vec<Opcode>, Option<(u8, u32)>) {
    let mut opcodes = Vec::new();
    let mut version = None;
    for i in 0..wire.toks.len() {
        let t = &wire.toks[i];
        if t.in_test || !(t.kind == TokKind::Keyword && t.text == "const") {
            continue;
        }
        let Some(name) = wire.toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident {
            continue;
        }
        // const NAME : u8 = <int> ;
        let val = wire
            .toks
            .get(i + 2..i + 6)
            .and_then(|w| {
                (w[0].text == ":" && w[1].text == "u8" && w[2].text == "=").then(|| &w[3])
            })
            .and_then(|v| parse_int(&v.text));
        let Some(val) = val else { continue };
        if name.text.starts_with("REQ_") || name.text.starts_with("RESP_") {
            opcodes.push((name.text.clone(), val, name.line));
        } else if name.text == "PROTOCOL_VERSION" {
            version = Some((val, name.line));
        }
    }
    (opcodes, version)
}

fn parse_int(text: &str) -> Option<u8> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x") {
        u8::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

fn check_opcodes(root: &Path, wire: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let (opcodes, version) = wire_constants(wire);
    let doc_path = root.join(WIRE_DOC);
    let Ok(doc) = std::fs::read_to_string(&doc_path) else {
        diags.push(Diagnostic {
            file: WIRE_DOC.into(),
            line: 1,
            check: CHECK,
            message: format!("{WIRE_DOC} is missing but {WIRE_RS} defines the wire protocol"),
        });
        return;
    };
    // Doc side: backticked two-digit opcodes in table rows.
    let mut doc_codes: BTreeMap<u8, u32> = BTreeMap::new();
    for (n, line) in doc.lines().enumerate() {
        let lineno = n as u32 + 1;
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for code in backticked_opcodes(line) {
            doc_codes.entry(code).or_insert(lineno);
        }
    }
    for (name, val, line) in &opcodes {
        if !doc_codes.contains_key(val) {
            diags.push(Diagnostic {
                file: wire.rel.clone(),
                line: *line,
                check: CHECK,
                message: format!(
                    "opcode {name} = {val:#04x} is not listed in the {WIRE_DOC} tables"
                ),
            });
        }
    }
    for (code, lineno) in &doc_codes {
        if !opcodes.iter().any(|(_, v, _)| v == code) {
            diags.push(Diagnostic {
                file: WIRE_DOC.into(),
                line: *lineno,
                check: CHECK,
                message: format!(
                    "documented opcode {code:#04x} has no REQ_*/RESP_* constant in {WIRE_RS}"
                ),
            });
        }
    }
    if let Some((v, line)) = version {
        if !doc.contains(&format!("currently {v}")) {
            diags.push(Diagnostic {
                file: wire.rel.clone(),
                line,
                check: CHECK,
                message: format!(
                    "PROTOCOL_VERSION is {v} but {WIRE_DOC} does not say `currently {v}`"
                ),
            });
        }
    }
}

/// Two-hex-digit `` `0xNN` `` codes inside one doc line.
fn backticked_opcodes(line: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for cell in line.split('`') {
        if let Some(hex) = cell.strip_prefix("0x") {
            if hex.len() == 2 {
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                }
            }
        }
    }
    out
}

fn check_metrics(root: &Path, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    // Code side: first registration site per family name.
    let mut registered: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for sf in files {
        for i in 0..sf.toks.len() {
            let t = &sf.toks[i];
            if t.in_test
                || t.kind != TokKind::Ident
                || !matches!(t.text.as_str(), "counter" | "gauge" | "histogram")
                || !is_punct(sf, i + 1, "(")
            {
                continue;
            }
            let Some(name) = sf.toks.get(i + 2) else {
                continue;
            };
            if name.kind == TokKind::Str && name.text.starts_with("psketch_") {
                registered
                    .entry(name.text.clone())
                    .or_insert((sf.rel.clone(), name.line));
            }
        }
    }
    if registered.is_empty() {
        return;
    }
    let doc_path = root.join(OBS_DOC);
    let Ok(doc) = std::fs::read_to_string(&doc_path) else {
        diags.push(Diagnostic {
            file: OBS_DOC.into(),
            line: 1,
            check: CHECK,
            message: format!("{OBS_DOC} is missing but the workspace registers metrics"),
        });
        return;
    };
    let mut documented: BTreeMap<String, u32> = BTreeMap::new();
    for (n, line) in doc.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for cell in line.split('`') {
            if cell.starts_with("psketch_") && cell.chars().all(|c| c.is_alphanumeric() || c == '_')
            {
                documented.entry(cell.to_string()).or_insert(n as u32 + 1);
            }
        }
    }
    for (name, (file, line)) in &registered {
        if !documented.contains_key(name) {
            diags.push(Diagnostic {
                file: file.clone(),
                line: *line,
                check: CHECK,
                message: format!(
                    "metric `{name}` is registered here but absent from the {OBS_DOC} catalog"
                ),
            });
        }
    }
    for (name, line) in &documented {
        if !registered.contains_key(name) {
            diags.push(Diagnostic {
                file: OBS_DOC.into(),
                line: *line,
                check: CHECK,
                message: format!(
                    "documented metric `{name}` is not registered anywhere in the workspace"
                ),
            });
        }
    }
}
