//! The six project-specific checks. Each module exposes
//! `run(...)` pushing [`Diagnostic`](crate::Diagnostic)s; shared
//! token-navigation helpers live here.

pub mod atomics;
pub mod doc_drift;
pub mod floats;
pub mod lock_io;
pub mod panics;
pub mod unsafe_audit;

use std::path::Path;

use crate::model::SourceFile;
use crate::Diagnostic;

/// Runs every check over the loaded workspace rooted at `root`.
pub fn run_all(root: &Path, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    unsafe_audit::run(files, diags);
    atomics::run(files, diags);
    panics::run(files, diags);
    lock_io::run(files, diags);
    doc_drift::run(root, files, diags);
    floats::run(files, diags);
}

/// True when token `i` is punctuation spelled `p`.
pub(crate) fn is_punct(sf: &SourceFile, i: usize, p: &str) -> bool {
    sf.toks
        .get(i)
        .is_some_and(|t| t.kind == crate::lexer::TokKind::Punct && t.text == p)
}

/// True when token `i` is an identifier (never a keyword).
pub(crate) fn is_ident(sf: &SourceFile, i: usize) -> bool {
    sf.toks
        .get(i)
        .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
}

/// Index of the statement boundary before token `i`: the most recent
/// `;`, `{`, or `}` (exclusive). Returns the first token of the
/// statement containing `i`.
pub(crate) fn stmt_start(sf: &SourceFile, i: usize) -> usize {
    let mut k = i;
    while k > 0 {
        let t = &sf.toks[k - 1];
        if t.kind == crate::lexer::TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        k -= 1;
    }
    k
}
