//! **atomics-audit** — every atomic `Ordering::` use site carries a
//! `// ord:` comment saying why that ordering is sufficient, and
//! `Relaxed` on a *gate-named* atomic (`ENABLED`, `ACTIVE_*`, `*_READY`
//! ...) additionally needs a `gate:` marker asserting that no data is
//! published through the flag — the one situation where a relaxed load
//! is a real bug is a gate that readers trust to order a dependent
//! load, and that is exactly what gate-style names advertise.
//!
//! Only the five atomic orderings are matched, so `std::cmp::Ordering`
//! (`Less`/`Equal`/`Greater`) never trips the check.

use crate::checks::{is_punct, stmt_start};
use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::Diagnostic;

pub const CHECK: &str = "atomics-audit";

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Lines above the use site an `// ord:` comment may sit (the site is
/// often the last line of a multi-line method chain).
const ORD_LOOKBACK: u32 = 2;

fn is_gate_name(s: &str) -> bool {
    let upper_tail = |suf: &str| s.ends_with(suf) || s.ends_with(&suf.to_lowercase());
    s == "ENABLED"
        || s.starts_with("ACTIVE_")
        || upper_tail("_ENABLED")
        || upper_tail("_ACTIVE")
        || upper_tail("_READY")
        || upper_tail("_GATE")
}

pub fn run(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for sf in files {
        for i in 0..sf.toks.len() {
            let t = &sf.toks[i];
            if t.in_test || !(t.kind == TokKind::Ident && t.text == "Ordering") {
                continue;
            }
            if !(is_punct(sf, i + 1, ":") && is_punct(sf, i + 2, ":")) {
                continue;
            }
            let Some(ord) = sf.toks.get(i + 3) else {
                continue;
            };
            if ord.kind != TokKind::Ident || !ATOMIC_ORDERINGS.contains(&ord.text.as_str()) {
                continue;
            }
            if sf.has_allow(CHECK, ord.line) {
                continue;
            }
            let near = sf.comments_near(ord.line, ORD_LOOKBACK);
            if !near.contains("ord:") {
                diags.push(Diagnostic {
                    file: sf.rel.clone(),
                    line: ord.line,
                    check: CHECK,
                    message: format!(
                        "`Ordering::{}` without a `// ord:` justification comment",
                        ord.text
                    ),
                });
                continue;
            }
            if ord.text != "Relaxed" {
                continue;
            }
            // Relaxed on a gate-named atomic: the ord comment must make
            // the no-data-published claim explicit with a `gate:` marker.
            let start = stmt_start(sf, i);
            let gate = sf.toks[start..i]
                .iter()
                .find(|t| t.kind == TokKind::Ident && is_gate_name(&t.text));
            if let Some(gate) = gate {
                if !near.contains("gate:") {
                    diags.push(Diagnostic {
                        file: sf.rel.clone(),
                        line: ord.line,
                        check: CHECK,
                        message: format!(
                            "`Ordering::Relaxed` on gate-named atomic `{}`: either use a \
                             Release/Acquire pairing, or assert in the ord comment (with a \
                             `gate:` marker) that no data is published through this flag",
                            gate.text
                        ),
                    });
                }
            }
        }
    }
}
