//! `psketch-lint` — CLI for the workspace static-analysis pass.
//!
//! ```text
//! psketch-lint check --workspace          # lint the enclosing workspace
//! psketch-lint check --root <dir>         # lint an explicit tree (fixtures)
//! ```
//!
//! Prints one `file:line: [check] message` per finding and exits
//! non-zero when anything fires, so CI can gate on it directly.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut saw_check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" => saw_check = true,
            "--workspace" => {}
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !saw_check {
        return usage("expected the `check` subcommand");
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("psketch-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match psketch_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "psketch-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    match psketch_lint::run(&root) {
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            eprintln!(
                "psketch-lint: {} finding(s) in {} file(s) scanned under {}",
                report.diagnostics.len(),
                report.files_scanned,
                root.display()
            );
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("psketch-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: psketch-lint check [--workspace] [--root <dir>]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("psketch-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
