//! The analyzed-source model the checks run against: one [`SourceFile`]
//! per `.rs` file with its token stream, per-line comments, and the
//! extracted function spans, plus the workspace walk that collects the
//! files and the annotation-lookup helpers (`// lint: allow(...)`,
//! `// ord:`, `// SAFETY:`).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Tok, TokKind};

/// A function span in the token stream: `fn` keyword through the `}`
/// closing its body (or the `;` of a bodyless declaration).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the closing `}` / `;` (inclusive).
    pub end: usize,
    /// Line of the `fn` keyword, for function-level annotations.
    pub header_line: u32,
}

/// One lexed-and-indexed source file.
pub struct SourceFile {
    /// Path relative to the analysis root, with `/` separators.
    pub rel: String,
    pub toks: Vec<Tok>,
    /// All comment text per line (several comments on a line concatenate).
    pub comments: HashMap<u32, String>,
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    #[must_use]
    pub fn parse(rel: String, src: &str) -> Self {
        let lexed = lexer::lex(src);
        let mut comments: HashMap<u32, String> = HashMap::new();
        for c in &lexed.comments {
            let slot = comments.entry(c.line).or_default();
            if !slot.is_empty() {
                slot.push(' ');
            }
            slot.push_str(&c.text);
        }
        let fns = extract_fns(&lexed.toks);
        Self {
            rel,
            toks: lexed.toks,
            comments,
            fns,
        }
    }

    /// The innermost function containing token index `i`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= i && i <= f.end)
            .max_by_key(|f| f.start)
    }

    /// Concatenated comment text on `line` and the `lookback` lines
    /// above it (nearest-last ordering is irrelevant to the substring
    /// probes the checks do).
    #[must_use]
    pub fn comments_near(&self, line: u32, lookback: u32) -> String {
        let mut out = String::new();
        let lo = line.saturating_sub(lookback);
        for l in lo..=line {
            if let Some(c) = self.comments.get(&l) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(c);
            }
        }
        out
    }

    /// Whether a `// lint: allow(<check>)` annotation covers `line`
    /// (same line or the two lines above). Check names match with `-`
    /// and `_` interchangeable.
    #[must_use]
    pub fn has_allow(&self, check: &str, line: u32) -> bool {
        let near = self.comments_near(line, 2);
        allow_matches(&near, check)
    }

    /// Whether the function owning token `i` carries a file-adjacent
    /// allow: on the flagged line, the binding line, or the lines just
    /// above the function header.
    #[must_use]
    pub fn fn_has_allow(&self, check: &str, i: usize) -> bool {
        self.enclosing_fn(i)
            .is_some_and(|f| self.has_allow(check, f.header_line))
    }
}

fn allow_matches(comment: &str, check: &str) -> bool {
    let norm = |s: &str| s.replace('-', "_");
    let hay = norm(comment);
    let needle = format!("lint: allow({}", norm(check));
    hay.contains(&needle)
}

fn extract_fns(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Keyword && toks[i].text == "fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Find the body: first `{` (then match braces) or a `;` that
        // arrives first (trait method declaration).
        let mut depth = 0usize;
        let mut seen_brace = false;
        let mut end = toks.len() - 1;
        for (k, t) in toks.iter().enumerate().skip(i + 2) {
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    seen_brace = true;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if seen_brace && depth == 0 {
                        end = k;
                        break;
                    }
                }
                ";" if !seen_brace => {
                    end = k;
                    break;
                }
                _ => {}
            }
        }
        out.push(FnSpan {
            name: name_tok.text.clone(),
            start: i,
            end,
            header_line: toks[i].line,
        });
    }
    out
}

/// Directory names whose contents are never analyzed: test and fixture
/// code is allowed to panic, index, and seed violations on purpose.
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Collects every production `.rs` file under `<root>/crates`, sorted
/// for deterministic diagnostics. `vendor/` is out of scope: the shims
/// mimic external crates and are not this project's code.
///
/// # Errors
///
/// Propagates directory-walk I/O failures.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        walk(&crates, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads and parses every collected file.
///
/// # Errors
///
/// Propagates walk and read I/O failures.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for path in collect_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(rel, &src));
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_nest_and_innermost_wins() {
        let sf = SourceFile::parse(
            "x.rs".into(),
            "fn outer() { fn inner() { let a = 1; } let b = 2; }",
        );
        assert_eq!(sf.fns.len(), 2);
        let a_idx = sf.toks.iter().position(|t| t.text == "a").unwrap();
        let b_idx = sf.toks.iter().position(|t| t.text == "b").unwrap();
        assert_eq!(sf.enclosing_fn(a_idx).unwrap().name, "inner");
        assert_eq!(sf.enclosing_fn(b_idx).unwrap().name, "outer");
    }

    #[test]
    fn allow_annotations_match_hyphen_or_underscore() {
        let sf = SourceFile::parse(
            "x.rs".into(),
            "// lint: allow(lock_across_io) — deliberate\nfn f() {}\n",
        );
        assert!(sf.has_allow("lock-across-io", 1));
        assert!(sf.has_allow("lock_across_io", 2));
        assert!(!sf.has_allow("panic-freedom", 1));
    }
}
