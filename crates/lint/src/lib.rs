//! # psketch-lint — workspace static analysis
//!
//! A std-only, zero-dependency static-analysis pass enforcing the
//! invariants `cargo test` cannot see: `unsafe` confinement, justified
//! atomic orderings, panic-free hostile-input surfaces, locks never
//! held across blocking I/O, code↔doc agreement for the wire protocol
//! and the metric catalog, and the router's float-determinism contract.
//!
//! The analysis is a hand-rolled lexer ([`lexer`]) plus token-pattern
//! checks ([`checks`]) — deliberately not a parser: every rule here is
//! a local pattern with an annotation escape hatch, so false positives
//! cost one comment, and the whole tool builds before anything else in
//! the workspace does.
//!
//! See `docs/static-analysis.md` for the check catalog and annotation
//! grammar.

#![forbid(unsafe_code)]

pub mod checks;
pub mod lexer;
pub mod model;

use std::fmt;
use std::io;
use std::path::Path;

/// One finding, rendered as `file:line: [check] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub check: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.message
        )
    }
}

/// Outcome of one analysis run.
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs every check over the tree rooted at `root` (a workspace root or
/// a fixture tree mirroring the `crates/` + `docs/` layout).
///
/// # Errors
///
/// I/O failures while walking or reading source files.
pub fn run(root: &Path) -> io::Result<Report> {
    let files = model::load_workspace(root)?;
    let mut diagnostics = Vec::new();
    checks::run_all(root, &files, &mut diagnostics);
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check).cmp(&(b.file.as_str(), b.line, b.check))
    });
    Ok(Report {
        files_scanned: files.len(),
        diagnostics,
    })
}

/// Walks upward from `start` to the nearest directory whose
/// `Cargo.toml` declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
