//! A hand-rolled Rust lexer: just enough of the language to walk a
//! source file as a token stream without ever misreading a string,
//! comment, char literal, or lifetime as code.
//!
//! The checks in this crate are token-pattern matchers, so the lexer's
//! one job is fidelity on the constructs that fool naive `grep`-style
//! scanners:
//!
//! * raw strings (`r"…"`, `r#"…"#`, any number of `#`s) and byte/raw
//!   byte strings;
//! * nested block comments (`/* a /* b */ c */`);
//! * char literals vs lifetimes (`'"'` and `' '` are chars, `'a` is a
//!   lifetime, `'a'` is a char);
//! * `#[cfg(test)]` / `#[test]` items, whose tokens are kept but marked
//!   `in_test` so checks can skip them.
//!
//! Comments are not discarded: they carry the annotation grammar
//! (`// SAFETY:`, `// ord:`, `// lint: allow(...)`) that several checks
//! read, so every comment is recorded per source line.

/// Token classification. Just enough granularity for pattern matching;
/// e.g. all punctuation is single-character tokens (`::` is two `:`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier (including raw identifiers, with the `r#` stripped).
    Ident,
    /// A reserved word (`fn`, `unsafe`, `let`, ...).
    Keyword,
    /// One character of punctuation.
    Punct,
    /// Any string literal (plain, raw, byte, raw byte).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A lifetime (`'a`), text without the leading quote.
    Lifetime,
    /// An integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// A float literal: has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix.
    Float,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Source text. For `Str` this is the literal's body (delimiters
    /// and hashes stripped); for everything else the exact spelling.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// One comment (line or block), recorded per source line so annotation
/// lookups are a map probe. A block comment spanning three lines yields
/// three entries.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    /// Text with the `//` / `/*` machinery stripped, untrimmed interior.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src`, then marks test-only regions. Never fails: unknown
/// bytes become single-character `Punct` tokens, and an unterminated
/// literal simply runs to end of file.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    let mut lexed = lx.out;
    mark_test_regions(&mut lexed.toks);
    lexed
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while self.i < self.b.len() {
            let c = self.peek(0);
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(0),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' => self.maybe_prefixed(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => {
                    self.push(TokKind::Punct, (c as char).to_string(), self.line);
                    self.i += 1;
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.i + 2;
        let mut end = start;
        while end < self.b.len() && self.b[end] != b'\n' {
            end += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..end]).into_owned();
        self.out.comments.push(Comment {
            line: self.line,
            text,
        });
        self.i = end;
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1usize;
        let mut seg = String::new();
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                seg.push_str("/*");
                self.i += 2;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                if depth > 0 {
                    seg.push_str("*/");
                }
                self.i += 2;
            } else if self.peek(0) == b'\n' {
                self.out.comments.push(Comment {
                    line: self.line,
                    text: std::mem::take(&mut seg),
                });
                self.line += 1;
                self.i += 1;
            } else {
                seg.push(self.peek(0) as char);
                self.i += 1;
            }
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: seg,
        });
    }

    /// Plain or byte string; `self.i` at the opening `"`. `hashes` is
    /// zero (escapes honored) — raw strings go through `raw_string`.
    fn string(&mut self, _hashes: usize) {
        let line = self.line;
        self.i += 1;
        let mut body = String::new();
        while self.i < self.b.len() {
            match self.peek(0) {
                b'\\' => {
                    body.push('\\');
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    body.push(self.peek(1) as char);
                    self.i += 2;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    body.push('\n');
                    self.line += 1;
                    self.i += 1;
                }
                c => {
                    body.push(c as char);
                    self.i += 1;
                }
            }
        }
        self.push(TokKind::Str, body, line);
    }

    /// Raw string; `self.i` at the first `#` or the `"` after `r`/`br`.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.i += 1;
        }
        // Opening quote.
        self.i += 1;
        let start = self.i;
        loop {
            if self.i >= self.b.len() {
                break;
            }
            if self.peek(0) == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let body = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                    self.i += 1 + hashes;
                    self.push(TokKind::Str, body, line);
                    return;
                }
            }
            self.i += 1;
        }
        let body = String::from_utf8_lossy(&self.b[start..]).into_owned();
        self.push(TokKind::Str, body, line);
    }

    /// Distinguishes raw strings (`r"`, `r#"`), raw identifiers
    /// (`r#ident`), byte literals (`b"`, `b'`, `br"`) from plain
    /// identifiers that merely start with `r` or `b`.
    fn maybe_prefixed(&mut self) {
        let c0 = self.peek(0);
        // b'x' byte char.
        if c0 == b'b' && self.peek(1) == b'\'' {
            self.i += 1;
            self.char_or_lifetime();
            return;
        }
        // b"..." byte string.
        if c0 == b'b' && self.peek(1) == b'"' {
            self.i += 1;
            self.string(0);
            return;
        }
        // br"..." / br#"..."# raw byte string.
        if c0 == b'b' && self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') {
            self.i += 2;
            self.raw_string();
            return;
        }
        // r"..." / r#"..."# raw string.
        if c0 == b'r' && self.peek(1) == b'"' {
            self.i += 1;
            self.raw_string();
            return;
        }
        if c0 == b'r' && self.peek(1) == b'#' {
            if self.peek(2) == b'"' || self.peek(2) == b'#' {
                self.i += 1;
                self.raw_string();
                return;
            }
            if is_ident_start(self.peek(2)) {
                // Raw identifier: strip the r# and lex the name.
                self.i += 2;
                self.ident();
                return;
            }
        }
        self.ident();
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // self.i at the opening quote.
        let next = self.peek(1);
        if next == b'\\' {
            // Escaped char literal: consume to the closing quote.
            self.i += 2; // quote + backslash
            self.i += 1; // the escaped character itself
            while self.i < self.b.len() && self.peek(0) != b'\'' {
                self.i += 1;
            }
            self.i += 1;
            self.push(TokKind::Char, String::from("\\"), line);
            return;
        }
        if is_ident_continue(next) {
            // Could be 'a' (char) or 'a (lifetime): scan the ident run
            // and see whether a closing quote follows.
            let mut j = self.i + 1;
            while j < self.b.len() && is_ident_continue(self.b[j]) {
                j += 1;
            }
            if self.b.get(j) == Some(&b'\'') {
                let body = String::from_utf8_lossy(&self.b[self.i + 1..j]).into_owned();
                self.i = j + 1;
                self.push(TokKind::Char, body, line);
            } else {
                let name = String::from_utf8_lossy(&self.b[self.i + 1..j]).into_owned();
                self.i = j;
                self.push(TokKind::Lifetime, name, line);
            }
            return;
        }
        if next == b'\'' {
            // `''` never parses as Rust; consume defensively.
            self.i += 2;
            self.push(TokKind::Char, String::new(), line);
            return;
        }
        // A non-identifier single char: '"', ' ', '(' ...
        if self.peek(2) == b'\'' {
            self.push(TokKind::Char, (next as char).to_string(), line);
            self.i += 3;
        } else {
            // Stray quote; emit as punctuation and move on.
            self.push(TokKind::Punct, String::from("'"), line);
            self.i += 1;
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.i += 2;
            while is_ident_continue(self.peek(0)) {
                self.i += 1;
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.i += 1;
            }
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                float = true;
                self.i += 1;
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.i += 1;
                }
            }
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.i += 1;
                while self.peek(0).is_ascii_digit() || matches!(self.peek(0), b'+' | b'-') {
                    self.i += 1;
                }
            }
            // Suffix (u64, i32, f64, usize ...).
            while is_ident_continue(self.peek(0)) {
                self.i += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        if text.ends_with("f32") || text.ends_with("f64") {
            float = true;
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        let kind = if KEYWORDS.contains(&text.as_str()) {
            TokKind::Keyword
        } else {
            TokKind::Ident
        };
        self.push(kind, text, line);
    }
}

/// Marks tokens belonging to `#[cfg(test)]`/`#[test]` items (the
/// attribute, any stacked attributes after it, and the item body).
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if is_attr_open(toks, i) {
            if let Some(close) = attr_close(toks, i + 1) {
                let is_test = toks[i + 2..close]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "test");
                if is_test {
                    let end = item_end(toks, close + 1);
                    for t in toks.iter_mut().take(end + 1).skip(i) {
                        t.in_test = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

fn is_attr_open(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == TokKind::Punct
        && toks[i].text == "#"
        && toks
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == "[")
}

/// Index of the `]` matching the `[` at `open`, tracking nesting.
fn attr_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Index of the last token of the item starting at `from`: skips any
/// further stacked attributes, then runs to the matching `}` of the
/// item's first brace block, or to a `;` if one comes first (e.g.
/// `#[cfg(test)] use super::*;`).
fn item_end(toks: &[Tok], mut from: usize) -> usize {
    while from < toks.len() && is_attr_open(toks, from) {
        match attr_close(toks, from + 1) {
            Some(c) => from = c + 1,
            None => return toks.len() - 1,
        }
    }
    let mut depth = 0usize;
    let mut seen_brace = false;
    for (k, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    seen_brace = true;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if seen_brace && depth == 0 {
                        return k;
                    }
                }
                ";" if !seen_brace => return k,
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds(r###"let x = r#"unwrap() /* not a comment "quote" */"#;"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap()"));
        // Nothing inside the raw string surfaced as an identifier.
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokKind::Ident && t.1 == "unwrap"));
    }

    #[test]
    fn nested_block_comments_balance() {
        let lexed = lex("a /* x /* y */ z */ b");
        let idents: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(idents, ["a", "b"]);
        assert!(lexed.comments.iter().any(|c| c.text.contains("y")));
    }

    #[test]
    fn quote_char_literal_is_not_a_string_opener() {
        let toks = kinds(r#"let q = '"'; let s = "after";"#);
        assert!(toks.contains(&(TokKind::Char, "\"".into())));
        assert!(toks.contains(&(TokKind::Str, "after".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "a".into())));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n\
                   fn also_live() {}";
        let lexed = lex(src);
        let unwraps: Vec<_> = lexed.toks.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
        let live: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.text == "also_live")
            .collect();
        assert!(!live[0].in_test);
    }

    #[test]
    fn float_and_int_literals_are_distinguished() {
        let toks = kinds("let a = 1; let b = 1.5; let c = 1e9; let d = 2f64; let r = 0..3;");
        assert!(toks.contains(&(TokKind::Int, "1".into())));
        assert!(toks.contains(&(TokKind::Float, "1.5".into())));
        assert!(toks.contains(&(TokKind::Float, "1e9".into())));
        assert!(toks.contains(&(TokKind::Float, "2f64".into())));
        // `0..3` is two ints and a range, not a float.
        assert!(toks.contains(&(TokKind::Int, "0".into())));
        assert!(toks.contains(&(TokKind::Int, "3".into())));
    }
}
