//! End-to-end tests: loopback TCP service, WAL crash recovery, restart
//! fidelity, and protocol error handling.

use psketch_core::{BitString, BitSubset, ConjunctiveEstimator, Profile, UserId};
use psketch_prf::{GlobalKey, Prg};
use psketch_protocol::{Announcement, AnnouncementBuilder, Coordinator, Submission, UserAgent};
use psketch_server::wal::{Wal, WalConfig};
use psketch_server::{Client, ClientError, Server, ServerConfig};
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "psketch-server-test-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn announcement() -> Announcement {
    AnnouncementBuilder::new(77, 0.45, 10_000, 1e-6)
        .global_key(*GlobalKey::from_seed(5).as_bytes())
        .subset(BitSubset::range(0, 2))
        .subset(BitSubset::single(0))
        .subset(BitSubset::single(1))
        .build()
        .unwrap()
}

fn submissions(ann: &Announcement, ids: std::ops::Range<u64>, seed: u64) -> Vec<Submission> {
    let mut rng = Prg::seed_from_u64(seed);
    ids.map(|i| {
        let profile = Profile::from_bits(&[i % 4 == 0, i % 2 == 0]);
        let mut agent = UserAgent::new(UserId(i), profile, 0.45, 1e6);
        agent.participate(ann, &mut rng).unwrap()
    })
    .collect()
}

/// The in-process oracle: the same submissions ingested directly.
fn oracle(ann: &Announcement, subs: &[Submission]) -> Coordinator {
    let c = Coordinator::new(ann.clone());
    c.accept_batch(subs.iter());
    c
}

#[test]
fn loopback_concurrent_clients_match_oracle() {
    let ann = announcement();
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            workers: 6,
            wal: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Four concurrent submitters, disjoint user-id ranges, plus an
    // analyst hammering queries mid-ingest (answers may be partial but
    // must never error out the connection or crash the server).
    let n_clients = 4u64;
    let per_client = 250u64;
    let all_subs: Vec<Vec<Submission>> = (0..n_clients)
        .map(|c| submissions(&ann, c * per_client..(c + 1) * per_client, 100 + c))
        .collect();
    std::thread::scope(|scope| {
        for subs in &all_subs {
            scope.spawn(|| {
                let mut client = Client::connect(addr, TIMEOUT).unwrap();
                let ack = client.submit_chunked(subs, 64).unwrap();
                assert_eq!(ack.accepted, per_client);
                assert_eq!(ack.rejected, 0);
            });
        }
        scope.spawn(|| {
            let mut client = Client::connect(addr, TIMEOUT).unwrap();
            let subset = BitSubset::range(0, 2);
            for _ in 0..50 {
                match client.conjunctive(subset.clone(), BitString::from_bits(&[true, true])) {
                    Ok(e) => assert!(e.sample_size > 0),
                    // Empty pool before the first batch lands.
                    Err(ClientError::Server { .. }) => {}
                    Err(other) => panic!("analyst connection died: {other}"),
                }
            }
        });
    });

    let flat: Vec<Submission> = all_subs.into_iter().flatten().collect();
    let oracle = oracle(&ann, &flat);
    let params = ann.validate().unwrap();
    let estimator = ConjunctiveEstimator::new(params);

    let mut client = Client::connect(addr, TIMEOUT).unwrap();
    // Conjunctive and linear answers match the in-process estimator
    // bit-for-bit on every announced subset.
    for subset in [BitSubset::range(0, 2), BitSubset::single(0)] {
        let width = subset.len();
        for value in 0..(1u64 << width) {
            let value = BitString::from_u64(value, width);
            let served = client.conjunctive(subset.clone(), value.clone()).unwrap();
            let q = psketch_core::ConjunctiveQuery::new(subset.clone(), value).unwrap();
            let local = estimator.estimate(oracle.pool(), &q).unwrap();
            assert_eq!(served.fraction.to_bits(), local.fraction.to_bits());
            assert_eq!(served.sample_size, local.sample_size);
        }
    }
    // Distribution over the pair subset: 4 bit-identical estimates.
    let subset = BitSubset::range(0, 2);
    let served = client.distribution(subset.clone()).unwrap();
    let local = estimator
        .estimate_distribution(oracle.pool(), &subset)
        .unwrap();
    assert_eq!(served.len(), local.len());
    for (s, l) in served.iter().zip(&local) {
        assert_eq!(s.fraction.to_bits(), l.fraction.to_bits());
    }
    // A linear query (P[b0] + P[b1] − 1, say) travels as a plan and
    // matches the engine.
    let mut lq = psketch_queries::LinearQuery::new("service linear");
    lq.constant = -1.0;
    lq.push(
        1.0,
        psketch_core::ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true]))
            .unwrap(),
    );
    lq.push(
        1.0,
        psketch_core::ConjunctiveQuery::new(BitSubset::single(1), BitString::from_bits(&[true]))
            .unwrap(),
    );
    let answers = client
        .execute_plan(&psketch_queries::TermPlan::compile(&lq))
        .unwrap();
    let (value, used, min_n) = (
        answers[0].value,
        answers[0].queries_used,
        answers[0].min_sample_size,
    );
    assert_eq!(used, 2);
    assert_eq!(min_n, 1000);
    let e0 = client
        .conjunctive(BitSubset::single(0), BitString::from_bits(&[true]))
        .unwrap();
    let e1 = client
        .conjunctive(BitSubset::single(1), BitString::from_bits(&[true]))
        .unwrap();
    assert!((value - (e0.fraction + e1.fraction - 1.0)).abs() < 1e-12);

    // Stats reflect everything the four clients pushed.
    let stats = client.stats().unwrap();
    assert_eq!(stats.accepted, n_clients * per_client);
    assert_eq!(stats.rejected(), 0);
    assert_eq!(stats.records, n_clients * per_client * 3);

    server.shutdown();
}

#[test]
fn duplicate_submissions_rejected_across_clients() {
    let ann = announcement();
    let server = Server::start("127.0.0.1:0", ann.clone(), ServerConfig::default()).unwrap();
    let subs = submissions(&ann, 0..20, 7);
    let mut a = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    let mut b = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    assert_eq!(a.submit_batch(&subs).unwrap().accepted, 20);
    let ack = b.submit_batch(&subs).unwrap();
    assert_eq!(ack.accepted, 0);
    assert_eq!(ack.rejected, 20);
    let stats = b.stats().unwrap();
    assert_eq!(stats.duplicates, 20);
    server.shutdown();
}

#[test]
fn wal_replay_tolerates_torn_tail() {
    let dir = temp_dir("torn");
    let config = WalConfig::new(&dir);
    let ann = announcement();

    let batch_size = 10u64;
    {
        let (mut wal, recovered) = Wal::open(&config).unwrap();
        assert!(recovered.is_none());
        wal.record_announcement(&ann).unwrap();
        for b in 0..5u64 {
            let subs = submissions(&ann, b * batch_size..(b + 1) * batch_size, 200 + b);
            wal.record_batch(&subs).unwrap();
        }
    }

    // Tear the final record: the crash happened mid-append.
    let log_path = dir.join("wal.log");
    let bytes = std::fs::read(&log_path).unwrap();
    std::fs::write(&log_path, &bytes[..bytes.len() - 7]).unwrap();

    let (mut wal, recovered) = Wal::open(&config).unwrap();
    let coordinator = recovered.expect("announcement + batches recovered");
    // Batches 0..4 were committed whole; the torn batch 4 is dropped.
    assert_eq!(coordinator.participants(), 4 * batch_size as usize);
    // The log was truncated back to a record boundary: appending and
    // reopening recovers the new batch on top.
    let extra = submissions(&ann, 100..110, 300);
    wal.record_batch(&extra).unwrap();
    drop(wal);
    let (_, recovered) = Wal::open(&config).unwrap();
    assert_eq!(recovered.unwrap().participants(), 5 * batch_size as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_rejects_corruption_before_the_tail() {
    let dir = temp_dir("corrupt");
    let config = WalConfig::new(&dir);
    let ann = announcement();
    {
        let (mut wal, _) = Wal::open(&config).unwrap();
        wal.record_announcement(&ann).unwrap();
        wal.record_batch(&submissions(&ann, 0..10, 1)).unwrap();
        wal.record_batch(&submissions(&ann, 10..20, 2)).unwrap();
    }
    // Flip a payload byte inside the FIRST record: CRC fails there, but
    // intact committed records follow, so this is mid-log corruption —
    // open() must refuse to load rather than silently truncating away
    // the committed batches behind the damage.
    let log_path = dir.join("wal.log");
    let mut bytes = std::fs::read(&log_path).unwrap();
    bytes[10] ^= 0xFF;
    std::fs::write(&log_path, &bytes).unwrap();
    match Wal::open(&config) {
        Err(psketch_server::WalError::Corrupt(reason)) => {
            assert!(reason.contains("refusing to truncate"), "{reason}");
        }
        other => panic!("expected corruption refusal, got {other:?}"),
    }
    // The damaged file was left untouched for inspection.
    assert_eq!(std::fs::read(&log_path).unwrap(), bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_log_after_compaction_crash_is_harmless() {
    // Simulate a crash in compact() between the snapshot rename and the
    // log truncation: the new snapshot and the full pre-compaction log
    // coexist. Replay must treat the stale records (announcement
    // included) as no-ops, not corruption.
    let dir = temp_dir("stale");
    let config = WalConfig::new(&dir);
    let ann = announcement();
    {
        let (mut wal, _) = Wal::open(&config).unwrap();
        wal.record_announcement(&ann).unwrap();
        for b in 0..3u64 {
            wal.record_batch(&submissions(&ann, b * 10..(b + 1) * 10, 400 + b))
                .unwrap();
        }
    }
    let stale_log = std::fs::read(dir.join("wal.log")).unwrap();
    let (mut wal, recovered) = Wal::open(&config).unwrap();
    let coordinator = recovered.unwrap();
    wal.compact(&coordinator).unwrap();
    drop(wal);
    // The crash: the truncation never happened.
    std::fs::write(dir.join("wal.log"), &stale_log).unwrap();

    let (_, recovered) = Wal::open(&config).unwrap();
    let restored = recovered.expect("snapshot + stale log must load");
    assert_eq!(restored.participants(), 30);
    assert_eq!(restored.stats().accepted, 30);
    // The stale batches replayed as duplicates — the pool is unchanged.
    assert_eq!(restored.stats().duplicates, 30);
    for subset in coordinator.pool().subsets() {
        let mut a = coordinator.pool().records(&subset).unwrap();
        let mut b = restored.pool().records(&subset).unwrap();
        a.sort_by_key(|r| r.id);
        b.sort_by_key(|r| r.id);
        assert_eq!(a, b);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_restart_serves_identical_answers() {
    let dir = temp_dir("restart");
    let ann = announcement();
    let config = || ServerConfig {
        workers: 2,
        wal: Some(WalConfig::new(&dir)),
        ..ServerConfig::default()
    };
    let subset = BitSubset::range(0, 2);
    let value = BitString::from_bits(&[true, false]);

    let (before_conj, before_dist) = {
        let server = Server::start("127.0.0.1:0", ann.clone(), config()).unwrap();
        let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
        let subs = submissions(&ann, 0..300, 42);
        assert_eq!(client.submit_chunked(&subs, 50).unwrap().accepted, 300);
        let conj = client.conjunctive(subset.clone(), value.clone()).unwrap();
        let dist = client.distribution(subset.clone()).unwrap();
        server.shutdown();
        (conj, dist)
    };

    // Hard restart: a brand-new process image would see exactly these
    // files; replay must reproduce the pool bit-for-bit.
    let server = Server::start("127.0.0.1:0", ann.clone(), config()).unwrap();
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    let after_conj = client.conjunctive(subset.clone(), value.clone()).unwrap();
    let after_dist = client.distribution(subset.clone()).unwrap();
    assert_eq!(
        before_conj.fraction.to_bits(),
        after_conj.fraction.to_bits()
    );
    assert_eq!(before_conj.sample_size, after_conj.sample_size);
    assert_eq!(before_dist.len(), after_dist.len());
    for (b, a) in before_dist.iter().zip(&after_dist) {
        assert_eq!(b.fraction.to_bits(), a.fraction.to_bits());
    }
    // Replay restored the dedup set: resubmitting is rejected.
    let subs = submissions(&ann, 0..10, 42);
    let ack = client.submit_batch(&subs).unwrap();
    assert_eq!(ack.accepted, 0);
    assert_eq!(ack.rejected, 10);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_snapshot_restores_identically() {
    let dir = temp_dir("compact");
    let ann = announcement();
    let wal_config = WalConfig {
        dir: dir.clone(),
        compact_threshold_bytes: 512, // force compaction every few batches
    };
    let config = || ServerConfig {
        workers: 2,
        wal: Some(wal_config.clone()),
        ..ServerConfig::default()
    };
    let subset = BitSubset::range(0, 2);
    let value = BitString::from_bits(&[true, true]);

    let before = {
        let server = Server::start("127.0.0.1:0", ann.clone(), config()).unwrap();
        let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
        let subs = submissions(&ann, 0..200, 9);
        assert_eq!(client.submit_chunked(&subs, 20).unwrap().accepted, 200);
        let e = client.conjunctive(subset.clone(), value.clone()).unwrap();
        server.shutdown();
        e
    };
    assert!(
        dir.join("snapshot.bin").exists(),
        "threshold forces at least one compaction"
    );

    let server = Server::start("127.0.0.1:0", ann.clone(), config()).unwrap();
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    let after = client.conjunctive(subset, value).unwrap();
    assert_eq!(before.fraction.to_bits(), after.fraction.to_bits());
    assert_eq!(before.sample_size, after.sample_size);
    let stats = client.stats().unwrap();
    assert_eq!(stats.accepted, 200);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_with_different_announcement_is_refused() {
    let dir = temp_dir("mismatch");
    let ann = announcement();
    let config = || ServerConfig {
        workers: 1,
        wal: Some(WalConfig::new(&dir)),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", ann, config()).unwrap();
    server.shutdown();
    let other = AnnouncementBuilder::new(78, 0.45, 10_000, 1e-6)
        .subset(BitSubset::single(0))
        .build()
        .unwrap();
    match Server::start("127.0.0.1:0", other, config()) {
        Err(psketch_server::ServeError::AnnouncementMismatch) => {}
        other => panic!("expected announcement mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_frames_get_error_responses_and_connection_survives() {
    use psketch_server::wire;
    use std::io::Write;

    let ann = announcement();
    let server = Server::start("127.0.0.1:0", ann, ServerConfig::default()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Future protocol version.
    wire::write_frame(&mut stream, &[99, 0x07]).unwrap();
    let payload = wire::read_frame(&mut stream).unwrap().unwrap();
    match wire::Response::decode(&payload).unwrap() {
        wire::Response::Error { code, .. } => {
            assert_eq!(code, wire::codes::UNSUPPORTED_VERSION);
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    // Unknown kind.
    wire::write_frame(&mut stream, &[wire::PROTOCOL_VERSION, 0x6F]).unwrap();
    let payload = wire::read_frame(&mut stream).unwrap().unwrap();
    match wire::Response::decode(&payload).unwrap() {
        wire::Response::Error { code, .. } => assert_eq!(code, wire::codes::MALFORMED),
        other => panic!("expected error frame, got {other:?}"),
    }
    // Truncated body for a known kind.
    let mut garbled = wire::Request::Distribution {
        subset: BitSubset::range(0, 4),
        nonce: 0,
        profile: false,
    }
    .encode();
    garbled.truncate(garbled.len() - 2);
    wire::write_frame(&mut stream, &garbled).unwrap();
    let payload = wire::read_frame(&mut stream).unwrap().unwrap();
    match wire::Response::decode(&payload).unwrap() {
        wire::Response::Error { code, .. } => assert_eq!(code, wire::codes::MALFORMED),
        other => panic!("expected error frame, got {other:?}"),
    }
    // The same connection still answers a proper request afterwards.
    wire::write_frame(&mut stream, &wire::Request::Ping.encode()).unwrap();
    let payload = wire::read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(
        wire::Response::decode(&payload).unwrap(),
        wire::Response::Pong
    );
    // An over-limit length prefix is answered then the server hangs up.
    stream.write_all(&(u32::MAX).to_le_bytes()).unwrap();
    let payload = wire::read_frame(&mut stream).unwrap().unwrap();
    match wire::Response::decode(&payload).unwrap() {
        wire::Response::Error { code, .. } => assert_eq!(code, wire::codes::MALFORMED),
        other => panic!("expected error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn query_errors_are_frames_not_hangups() {
    let ann = announcement();
    let server = Server::start("127.0.0.1:0", ann, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    // Unknown subset: the pool has nothing for positions {5}.
    match client.conjunctive(BitSubset::single(5), BitString::from_bits(&[true])) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, psketch_server::wire::codes::QUERY);
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // Width mismatch caught server-side.
    match client.conjunctive(BitSubset::range(0, 2), BitString::from_bits(&[true])) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, psketch_server::wire::codes::QUERY);
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // Distribution wider than the server cap.
    match client.distribution(BitSubset::range(0, 17)) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, psketch_server::wire::codes::BAD_REQUEST);
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // Connection still alive.
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_is_prompt_with_idle_connections() {
    let ann = announcement();
    let server = Server::start("127.0.0.1:0", ann, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr, TIMEOUT).unwrap();
    client.ping().unwrap();
    let start = std::time::Instant::now();
    server.shutdown(); // must not hang on the idle connection
    assert!(start.elapsed() < Duration::from_secs(5));
    assert!(client.ping().is_err());
}

#[test]
fn hello_handshake_reports_shard_identity_and_partials_match_counts() {
    use psketch_protocol::ShardIdentity;
    let ann = announcement();
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            shard: Some(ShardIdentity {
                shard_id: 1,
                shard_count: 3,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let subs = submissions(&ann, 0..300, 42);
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    assert_eq!(
        client.hello(7).unwrap(),
        Some(ShardIdentity {
            shard_id: 1,
            shard_count: 3
        })
    );
    client.submit_batch(&subs).unwrap();

    // Partial term counts invert to exactly the served estimate.
    let subset = BitSubset::range(0, 2);
    let value = BitString::from_bits(&[true, false]);
    let term = psketch_core::ConjunctiveQuery::new(subset.clone(), value.clone()).unwrap();
    let counts = client.partial_term_counts(&[term]).unwrap();
    assert_eq!(counts.len(), 1);
    assert_eq!(counts[0].population, 300);
    let served = client.conjunctive(subset.clone(), value).unwrap();
    let inverted = psketch_core::Estimate::from_counts(counts[0].ones, counts[0].population, ann.p);
    assert_eq!(inverted.fraction.to_bits(), served.fraction.to_bits());

    // A distribution plan's term counts invert to the served
    // distribution (the generic frame covers what the retired
    // PartialDistribution frame did).
    let dist_plan = psketch_queries::TermPlan::for_distribution(&subset);
    let partial = client.partial_term_counts(dist_plan.terms()).unwrap();
    assert_eq!(partial.len(), 4);
    let served = client.distribution(subset.clone()).unwrap();
    for (c, s) in partial.iter().zip(&served) {
        assert_eq!(c.population, 300);
        let e = psketch_core::Estimate::from_counts(c.ones, c.population, ann.p);
        assert_eq!(e.fraction.to_bits(), s.fraction.to_bits());
    }

    // An unknown subset is an *empty share*, not an error, on the
    // partial path (a shard may simply hold none of those records).
    let unknown = BitSubset::new(vec![40, 41]).unwrap();
    let term =
        psketch_core::ConjunctiveQuery::new(unknown, BitString::from_bits(&[true, true])).unwrap();
    let counts = client.partial_term_counts(&[term]).unwrap();
    assert_eq!((counts[0].ones, counts[0].population), (0, 0));
    server.shutdown();
}

#[test]
fn standalone_server_reports_no_shard() {
    let ann = announcement();
    let server = Server::start("127.0.0.1:0", ann, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    assert_eq!(client.hello(0).unwrap(), None);
    server.shutdown();
}

#[test]
fn analyst_budget_is_enforced_with_a_dedicated_error_frame() {
    use psketch_server::wire::codes;
    let ann = announcement();
    // At p = 0.45 one estimate costs ε₁ = (11/9)⁴ − 1 ≈ 1.23 and two
    // compose to ε₂ = (11/9)⁸ − 1 ≈ 3.98, so a budget of 3.0 affords
    // exactly one conjunctive estimate per analyst.
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            analyst_budget: Some(3.0),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let subs = submissions(&ann, 0..100, 9);
    let mut ingest = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    ingest.submit_batch(&subs).unwrap();

    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);

    // Analyst 1: first query fine, second refused with the BUDGET code.
    let mut analyst = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    analyst.hello(1).unwrap();
    analyst.conjunctive(subset.clone(), value.clone()).unwrap();
    match analyst.conjunctive(subset.clone(), value.clone()) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, codes::BUDGET);
            assert!(message.contains("analyst 1"), "{message}");
        }
        other => panic!("expected budget refusal, got {other:?}"),
    }
    // The refusal is not a transport failure: the connection stays warm
    // and budget-free requests still work.
    analyst.ping().unwrap();
    assert_eq!(analyst.stats().unwrap().accepted, 100);

    // The ledger follows the analyst identity, not the connection: a
    // fresh connection declaring the same analyst is still exhausted...
    let mut same = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    same.hello(1).unwrap();
    assert!(matches!(
        same.conjunctive(subset.clone(), value.clone()),
        Err(ClientError::Server { code, .. }) if code == codes::BUDGET
    ));
    // ...while a different analyst has their own fresh budget.
    let mut other = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    other.hello(2).unwrap();
    other.conjunctive(subset.clone(), value.clone()).unwrap();

    // A 2-bit distribution charges 4 estimates at once: refused for a
    // fresh analyst whose budget affords only one.
    let mut wide = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    wide.hello(3).unwrap();
    assert!(matches!(
        wide.distribution(BitSubset::range(0, 2)),
        Err(ClientError::Server { code, .. }) if code == codes::BUDGET
    ));

    // An oversized term batch is refused (BAD_REQUEST) *before* the
    // charge: the analyst's budget still affords a valid query.
    let mut careless = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    careless.hello(4).unwrap();
    let term = psketch_core::ConjunctiveQuery::new(subset.clone(), value.clone()).unwrap();
    let huge = vec![term.clone(); psketch_server::wire::MAX_PLAN_TERMS + 1];
    assert!(matches!(
        careless.partial_term_counts(&huge),
        Err(ClientError::Server { code, .. }) if code == codes::BAD_REQUEST
    ));
    careless.partial_term_counts(&[term]).unwrap();

    // A compound plan is charged its *term count*: a 2-term plan is
    // refused outright for a fresh analyst whose budget affords one.
    let mut compound = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    compound.hello(5).unwrap();
    let mut lq = psketch_queries::LinearQuery::new("two terms");
    lq.push(
        1.0,
        psketch_core::ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true]))
            .unwrap(),
    );
    lq.push(
        1.0,
        psketch_core::ConjunctiveQuery::new(BitSubset::single(1), BitString::from_bits(&[true]))
            .unwrap(),
    );
    assert!(matches!(
        compound.execute_plan(&psketch_queries::TermPlan::compile(&lq)),
        Err(ClientError::Server { code, .. }) if code == codes::BUDGET
    ));
    // The same two terms *deduplicated to one* (a repeated-term plan)
    // cost a single estimate and fit the budget.
    let mut dup = psketch_queries::LinearQuery::new("dup term");
    let q = psketch_core::ConjunctiveQuery::new(subset.clone(), value.clone()).unwrap();
    dup.push(1.0, q.clone());
    dup.push(2.0, q);
    compound
        .execute_plan(&psketch_queries::TermPlan::compile(&dup))
        .unwrap();
    server.shutdown();
}

#[test]
fn server_stats_count_frames_by_kind() {
    let ann = announcement();
    let server = Server::start("127.0.0.1:0", ann.clone(), ServerConfig::default()).unwrap();
    let subs = submissions(&ann, 0..50, 11);
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    client.hello(0).unwrap();
    client.submit_batch(&subs).unwrap();
    client.ping().unwrap();
    client.ping().unwrap();
    client
        .conjunctive(BitSubset::single(0), BitString::from_bits(&[true]))
        .unwrap();
    let stats = client.server_stats().unwrap();
    // Kinds: hello 0x08 ×1, submit 0x02 ×1, ping 0x07 ×2, conjunctive
    // 0x03 ×1, server-stats 0x0B ×1 (this very request).
    assert_eq!(stats.count_for(0x08), 1);
    assert_eq!(stats.count_for(0x02), 1);
    assert_eq!(stats.count_for(0x07), 2);
    assert_eq!(stats.count_for(0x03), 1);
    assert_eq!(stats.count_for(0x0B), 1);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.total_requests(), 6);

    // A second snapshot sees a monotonically increasing counter and a
    // sane uptime.
    let again = client.server_stats().unwrap();
    assert_eq!(again.count_for(0x0B), 2);
    assert!(again.uptime_secs < 3600);
    server.shutdown();
}

#[test]
fn invalid_budget_and_shard_configs_are_rejected() {
    use psketch_protocol::ShardIdentity;
    let ann = announcement();
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(Server::start(
            "127.0.0.1:0",
            ann.clone(),
            ServerConfig {
                analyst_budget: Some(bad),
                ..ServerConfig::default()
            },
        )
        .is_err());
    }
    assert!(Server::start(
        "127.0.0.1:0",
        ann,
        ServerConfig {
            shard: Some(ShardIdentity {
                shard_id: 3,
                shard_count: 3
            }),
            ..ServerConfig::default()
        },
    )
    .is_err());
}

/// A `Client` must be sendable so connection pools (one worker thread
/// per shard, as the cluster router runs) can own clients.
#[test]
fn client_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Client>();
}

#[test]
fn killed_socket_mid_response_charges_the_ledger_exactly_once() {
    use psketch_server::{next_nonce, wire};
    let ann = announcement();
    // Generous budget: the point here is counting charges, not refusals.
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            analyst_budget: Some(1e6),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let subs = submissions(&ann, 0..200, 31);
    let mut ingest = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    ingest.submit_batch(&subs).unwrap();

    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);
    let nonce = next_nonce();

    // --- The injected transport kill. ---
    // Raw connection: handshake, send the nonce'd query, then kill the
    // socket *without reading the response*. The server receives the
    // frame, charges the analyst's ε-ledger, evaluates, and its answer
    // dies on the closed socket — exactly the failure mode that made
    // router retries double-charge before wire v4.
    {
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        wire::write_frame(&mut raw, &wire::Request::Hello { analyst: 7 }.encode()).unwrap();
        let hello = wire::read_frame(&mut raw).unwrap().unwrap();
        assert!(matches!(
            wire::Response::decode(&hello).unwrap(),
            wire::Response::Hello { .. }
        ));
        let req = wire::Request::Conjunctive {
            subset: subset.clone(),
            value: value.clone(),
            nonce,
            profile: false,
        };
        wire::write_frame(&mut raw, &req.encode()).unwrap();
        // Drop without reading: the socket dies mid-response.
    }

    // --- The retry, same nonce, fresh connection. ---
    // A RETRY_PENDING answer means the killed socket's frame is still
    // being evaluated; the cached answer is ready shortly after.
    let mut retry = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    retry.hello(7).unwrap();
    let answer = loop {
        match retry.conjunctive_nonced(nonce, subset.clone(), value.clone()) {
            Err(ClientError::Server { code, .. })
                if code == psketch_server::wire::codes::RETRY_PENDING =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            other => break other.unwrap(),
        }
    };

    // The retry's answer matches the in-process oracle.
    let oracle = oracle(&ann, &subs);
    let estimator = ConjunctiveEstimator::new(ann.validate().unwrap());
    let q = psketch_core::ConjunctiveQuery::new(subset.clone(), value.clone()).unwrap();
    let local = estimator.estimate(oracle.pool(), &q).unwrap();
    assert_eq!(answer.fraction.to_bits(), local.fraction.to_bits());

    // Wait until the server has processed *both* conjunctive frames
    // (the killed socket's frame was already in flight and races the
    // retry), then the ledger must have advanced exactly once.
    let stats = {
        let mut observed = retry.server_stats().unwrap();
        for _ in 0..100 {
            if observed.count_for(0x03) >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
            observed = retry.server_stats().unwrap();
        }
        observed
    };
    assert!(
        stats.count_for(0x03) >= 2,
        "server never saw both conjunctive frames: {stats:?}"
    );
    assert_eq!(
        stats.budget.charged_terms, 1,
        "the retry double-charged the ledger: {stats:?}"
    );
    assert_eq!(stats.budget.replays, 1, "{stats:?}");
    assert_eq!(stats.budget.denials, 0, "{stats:?}");

    // A *different* logical query (fresh nonce) is a real charge, not a
    // replay — dedup must not overreach.
    retry.conjunctive(subset, value).unwrap();
    let stats = retry.server_stats().unwrap();
    assert_eq!(stats.budget.charged_terms, 2, "{stats:?}");
    assert_eq!(stats.budget.replays, 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn plan_replays_with_the_same_nonce_charge_once() {
    use psketch_server::next_nonce;
    let ann = announcement();
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            analyst_budget: Some(1e6),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let subs = submissions(&ann, 0..50, 17);
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    client.hello(9).unwrap();
    client.submit_batch(&subs).unwrap();

    let mut lq = psketch_queries::LinearQuery::new("two terms");
    lq.push(
        1.0,
        psketch_core::ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true]))
            .unwrap(),
    );
    lq.push(
        -1.0,
        psketch_core::ConjunctiveQuery::new(BitSubset::single(1), BitString::from_bits(&[true]))
            .unwrap(),
    );
    let plan = psketch_queries::TermPlan::compile(&lq);
    let nonce = next_nonce();

    // Three replays of one logical plan (as a router retrying two
    // flapping shards would send): one charge of the plan's term count.
    let first = client.execute_plan_nonced(nonce, &plan).unwrap();
    let second = client.execute_plan_nonced(nonce, &plan).unwrap();
    let third = client.execute_plan_nonced(nonce, &plan).unwrap();
    assert_eq!(first[0].value.to_bits(), second[0].value.to_bits());
    assert_eq!(first[0].value.to_bits(), third[0].value.to_bits());
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.budget.charged_terms, 2, "{stats:?}"); // 2-term plan
    assert_eq!(stats.budget.replays, 2, "{stats:?}");

    // The partial-counts scatter frame dedupes identically.
    let nonce = next_nonce();
    let terms = plan.terms().to_vec();
    client.partial_term_counts_nonced(nonce, &terms).unwrap();
    client.partial_term_counts_nonced(nonce, &terms).unwrap();
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.budget.charged_terms, 4, "{stats:?}");
    assert_eq!(stats.budget.replays, 3, "{stats:?}");

    // Dedup is bound to the request *body*, not the nonce alone: a
    // reused nonce carrying a different query is a fresh charge (a new
    // query must never ride an old charge — the ledger would
    // under-count), and only the latest body then replays free.
    let nonce = next_nonce();
    let q0 = (BitSubset::single(0), BitString::from_bits(&[true]));
    let q1 = (BitSubset::single(1), BitString::from_bits(&[true]));
    client
        .conjunctive_nonced(nonce, q0.0.clone(), q0.1.clone())
        .unwrap();
    client
        .conjunctive_nonced(nonce, q1.0.clone(), q1.1.clone())
        .unwrap();
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.budget.charged_terms, 6, "{stats:?}");
    assert_eq!(stats.budget.replays, 3, "{stats:?}");
    client.conjunctive_nonced(nonce, q1.0, q1.1).unwrap();
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.budget.charged_terms, 6, "{stats:?}");
    assert_eq!(stats.budget.replays, 4, "{stats:?}");
    server.shutdown();
}

#[test]
fn replays_serve_the_cached_response_not_a_recomputation() {
    // One charge buys exactly one release: a replay after the pool has
    // grown must return the *original* answer verbatim, not a fresh
    // evaluation over the larger pool (that would be a second release
    // for one Corollary 3.4 charge).
    use psketch_server::next_nonce;
    let ann = announcement();
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            analyst_budget: Some(1e6),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), TIMEOUT).unwrap();
    client.hello(11).unwrap();
    client.submit_batch(&submissions(&ann, 0..100, 41)).unwrap();

    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);
    let nonce = next_nonce();
    let first = client
        .conjunctive_nonced(nonce, subset.clone(), value.clone())
        .unwrap();
    assert_eq!(first.sample_size, 100);

    // Grow the pool, then replay: same answer bytes, original n.
    client
        .submit_batch(&submissions(&ann, 100..150, 43))
        .unwrap();
    let replay = client
        .conjunctive_nonced(nonce, subset.clone(), value.clone())
        .unwrap();
    assert_eq!(replay.sample_size, 100, "replay re-evaluated the pool");
    assert_eq!(replay.fraction.to_bits(), first.fraction.to_bits());
    assert_eq!(replay.raw.to_bits(), first.raw.to_bits());

    // A fresh nonce sees the grown pool and is a fresh charge.
    let fresh = client.conjunctive(subset, value).unwrap();
    assert_eq!(fresh.sample_size, 150);
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.budget.charged_terms, 2, "{stats:?}");
    assert_eq!(stats.budget.replays, 1, "{stats:?}");
    server.shutdown();
}
