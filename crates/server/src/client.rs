//! The blocking client library.
//!
//! A [`Client`] owns one TCP connection and reuses it across requests —
//! the frame protocol is strictly request/response, so connection reuse
//! is just "write a frame, read a frame". User agents submit in batches
//! ([`Client::submit_batch`] / [`Client::submit_chunked`]); analysts
//! query with [`Client::conjunctive`], [`Client::distribution`] and
//! [`Client::execute_plan`].
//!
//! A `Client` is `Send`, so a connection pool (one long-lived worker
//! thread per shard, as the cluster router runs) can own and reuse
//! clients freely.
//!
//! # Request nonces
//!
//! Every charging request carries a nonce identifying the *logical*
//! query, so the server's ε-ledger charges it at most once even when a
//! transport failure forces a retry on a fresh connection. The plain
//! query methods mint a fresh nonce per call ([`next_nonce`]); retrying
//! callers (the cluster router) mint one nonce per logical query and
//! use the `*_nonced` variants so every retry replays the same nonce.

use crate::wire::{self, Request, Response, ServerStats};
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Estimate};
use psketch_obs::SpanNode;
use psketch_protocol::{Announcement, CoordinatorStats, QueryCounts, ShardIdentity, Submission};
use psketch_queries::{LinearAnswer, TermPlan};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Mints a request nonce: unique within this process, seeded with
/// per-process entropy so two processes acting for the same analyst are
/// overwhelmingly unlikely to collide. Never returns `0` (the wire's
/// "no replay identity" sentinel).
#[must_use]
pub fn next_nonce() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        use std::hash::{BuildHasher, Hasher};
        // RandomState draws fresh entropy per process.
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    });
    // ord: uniqueness only — fetch_add is atomic at every ordering
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // splitmix64 over the seeded counter: distinct inputs, distinct outputs.
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// Errors from the client side of the protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure.
    Io(io::Error),
    /// The server's bytes could not be decoded, or the response kind
    /// did not match the request.
    Protocol(String),
    /// The server answered with an error frame (see [`wire::codes`]).
    Server {
        /// Machine-readable error code.
        code: u16,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "connection error: {e}"),
            Self::Protocol(reason) => write!(f, "protocol error: {reason}"),
            Self::Server { code, message } => write!(f, "server error {code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// The outcome of a batch submission, as acknowledged by the server
/// *after* the batch is durable (when the server runs a WAL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitAck {
    /// Submissions accepted into the pool.
    pub accepted: u64,
    /// Submissions rejected (malformed or duplicate).
    pub rejected: u64,
}

/// A blocking connection to a sketch-pool server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Cleared after a transport/decode failure mid-exchange: the
    /// stream may hold a stale response, so request/response pairing
    /// can no longer be trusted and the connection refuses further use.
    healthy: bool,
}

impl Client {
    /// Connects with a timeout that also bounds each subsequent read
    /// and write.
    ///
    /// # Errors
    ///
    /// Address resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, ClientError> {
        let mut last_err: Option<io::Error> = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    return Ok(Self {
                        stream,
                        healthy: true,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// One request/response round trip on the shared connection.
    ///
    /// Any transport or decode failure poisons the connection: the
    /// server's response may still be in flight, so a retry on the same
    /// stream would read the *previous* exchange's answer. Callers must
    /// reconnect after such an error (server-side error frames are a
    /// completed exchange and do not poison).
    fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if !self.healthy {
            return Err(ClientError::Protocol(
                "connection poisoned by an earlier failed exchange; reconnect".into(),
            ));
        }
        self.healthy = false;
        let resp = self.exchange(req)?;
        self.healthy = true;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        Ok(resp)
    }

    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        let payload = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Protocol("server closed the connection mid request".into())
        })?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn unexpected<T>(resp: &Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!(
            "unexpected response kind: {resp:?}"
        )))
    }

    /// Fetches the coordinator's public announcement.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn announcement(&mut self) -> Result<Announcement, ClientError> {
        match self.request(&Request::FetchAnnouncement)? {
            Response::Announcement(ann) => Ok(ann),
            other => Self::unexpected(&other),
        }
    }

    /// Submits one batch and waits for the (durability-backed) ack.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn submit_batch(&mut self, subs: &[Submission]) -> Result<SubmitAck, ClientError> {
        match self.request(&Request::SubmitBatch(subs.to_vec()))? {
            Response::SubmitAck { accepted, rejected } => Ok(SubmitAck { accepted, rejected }),
            other => Self::unexpected(&other),
        }
    }

    /// Submits a large set in chunks of `batch_size`, summing the acks —
    /// keeps every frame under the wire limit regardless of input size.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors; already-acked chunks stay
    /// ingested (use [`Client::submit_chunked_partial`] to learn how
    /// many).
    pub fn submit_chunked(
        &mut self,
        subs: &[Submission],
        batch_size: usize,
    ) -> Result<SubmitAck, ClientError> {
        match self.submit_chunked_partial(subs, batch_size) {
            (total, None) => Ok(total),
            (_, Some(e)) => Err(e),
        }
    }

    /// As [`Client::submit_chunked`], but a mid-batch failure does not
    /// erase what already committed: returns the summed acks of the
    /// chunks the server durably acknowledged *before* the failure,
    /// alongside the error (if any) that stopped the remainder — so
    /// callers can report a partial ingest as exactly that.
    pub fn submit_chunked_partial(
        &mut self,
        subs: &[Submission],
        batch_size: usize,
    ) -> (SubmitAck, Option<ClientError>) {
        let mut total = SubmitAck::default();
        for chunk in subs.chunks(batch_size.max(1)) {
            match self.submit_batch(chunk) {
                Ok(ack) => {
                    total.accepted += ack.accepted;
                    total.rejected += ack.rejected;
                }
                Err(e) => return (total, Some(e)),
            }
        }
        (total, None)
    }

    /// Estimates one conjunctive frequency (fresh nonce: one charge).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors (e.g. unknown subset).
    pub fn conjunctive(
        &mut self,
        subset: BitSubset,
        value: BitString,
    ) -> Result<Estimate, ClientError> {
        self.conjunctive_nonced(next_nonce(), subset, value)
    }

    /// As [`Client::conjunctive`] with a caller-supplied nonce, for
    /// retries that must not re-charge the analyst's ledger.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors (e.g. unknown subset).
    pub fn conjunctive_nonced(
        &mut self,
        nonce: u64,
        subset: BitSubset,
        value: BitString,
    ) -> Result<Estimate, ClientError> {
        match self.request(&Request::Conjunctive {
            subset,
            value,
            nonce,
            profile: false,
        })? {
            Response::Estimate(e, _) => Ok(e.into()),
            other => Self::unexpected(&other),
        }
    }

    /// As [`Client::conjunctive_nonced`] with profiling requested: the
    /// server times its pipeline stages and attaches the span tree to
    /// the response (`None` if the server skipped profiling, e.g. for a
    /// replayed nonce). The estimate itself is bit-identical to the
    /// unprofiled answer.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors (e.g. unknown subset).
    pub fn conjunctive_traced(
        &mut self,
        nonce: u64,
        subset: BitSubset,
        value: BitString,
    ) -> Result<(Estimate, Option<SpanNode>), ClientError> {
        match self.request(&Request::Conjunctive {
            subset,
            value,
            nonce,
            profile: true,
        })? {
            Response::Estimate(e, trace) => Ok((e.into(), trace)),
            other => Self::unexpected(&other),
        }
    }

    /// Estimates the full `2^k` distribution over one subset, indexed
    /// by the LSB-first integer encoding of the value (fresh nonce).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn distribution(&mut self, subset: BitSubset) -> Result<Vec<Estimate>, ClientError> {
        self.distribution_nonced(next_nonce(), subset)
    }

    /// As [`Client::distribution`] with a caller-supplied nonce.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn distribution_nonced(
        &mut self,
        nonce: u64,
        subset: BitSubset,
    ) -> Result<Vec<Estimate>, ClientError> {
        match self.request(&Request::Distribution {
            subset,
            nonce,
            profile: false,
        })? {
            Response::Distribution(es, _) => Ok(es.into_iter().map(Into::into).collect()),
            other => Self::unexpected(&other),
        }
    }

    /// As [`Client::distribution_nonced`] with profiling requested; the
    /// answers are bit-identical to the unprofiled path.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn distribution_traced(
        &mut self,
        nonce: u64,
        subset: BitSubset,
    ) -> Result<(Vec<Estimate>, Option<SpanNode>), ClientError> {
        match self.request(&Request::Distribution {
            subset,
            nonce,
            profile: true,
        })? {
            Response::Distribution(es, trace) => {
                Ok((es.into_iter().map(Into::into).collect(), trace))
            }
            other => Self::unexpected(&other),
        }
    }

    /// Executes a compiled [`TermPlan`] server-side and returns one
    /// answer per plan output, in plan order. Every query family —
    /// linear combinations, DNF, intervals, means, moments, trees,
    /// histograms — travels through this one entry point; the server
    /// charges the analyst the plan's term count (fresh nonce).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn execute_plan(&mut self, plan: &TermPlan) -> Result<Vec<LinearAnswer>, ClientError> {
        self.execute_plan_nonced(next_nonce(), plan)
    }

    /// As [`Client::execute_plan`] with a caller-supplied nonce.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn execute_plan_nonced(
        &mut self,
        nonce: u64,
        plan: &TermPlan,
    ) -> Result<Vec<LinearAnswer>, ClientError> {
        match self.request(&Request::Plan {
            plan: plan.clone(),
            nonce,
            profile: false,
        })? {
            Response::PlanAnswers(answers, _) => {
                Ok(answers.into_iter().map(LinearAnswer::from).collect())
            }
            other => Self::unexpected(&other),
        }
    }

    /// As [`Client::execute_plan_nonced`] with profiling requested; the
    /// answers are bit-identical to the unprofiled path.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn execute_plan_traced(
        &mut self,
        nonce: u64,
        plan: &TermPlan,
    ) -> Result<(Vec<LinearAnswer>, Option<SpanNode>), ClientError> {
        match self.request(&Request::Plan {
            plan: plan.clone(),
            nonce,
            profile: true,
        })? {
            Response::PlanAnswers(answers, trace) => {
                Ok((answers.into_iter().map(LinearAnswer::from).collect(), trace))
            }
            other => Self::unexpected(&other),
        }
    }

    /// Fetches the coordinator's ingestion counters.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn stats(&mut self) -> Result<CoordinatorStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Self::unexpected(&other),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Self::unexpected(&other),
        }
    }

    /// Connection handshake: declares the analyst identity this
    /// connection acts for (budget accounting) and returns the server's
    /// shard identity (`None` for a standalone server).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn hello(&mut self, analyst: u64) -> Result<Option<ShardIdentity>, ClientError> {
        match self.request(&Request::Hello { analyst })? {
            Response::Hello { shard } => Ok(shard),
            other => Self::unexpected(&other),
        }
    }

    /// Fetches raw `(ones, population)` satisfying counts for a plan's
    /// deduplicated term list — the scatter half of a router's
    /// scatter-gather. A shard holding no sketches for a queried subset
    /// reports `(0, 0)` (fresh nonce).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn partial_term_counts(
        &mut self,
        terms: &[ConjunctiveQuery],
    ) -> Result<Vec<QueryCounts>, ClientError> {
        self.partial_term_counts_nonced(next_nonce(), terms)
    }

    /// As [`Client::partial_term_counts`] with a caller-supplied nonce.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn partial_term_counts_nonced(
        &mut self,
        nonce: u64,
        terms: &[ConjunctiveQuery],
    ) -> Result<Vec<QueryCounts>, ClientError> {
        match self.request(&Request::PartialTermCounts {
            terms: terms.to_vec(),
            nonce,
            profile: false,
        })? {
            Response::PartialTermCounts(counts, _) => Ok(counts),
            other => Self::unexpected(&other),
        }
    }

    /// As [`Client::partial_term_counts_nonced`] with profiling
    /// requested — the scatter half of a router's `EXPLAIN ANALYZE`.
    /// The counts are bit-identical to the unprofiled path.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn partial_term_counts_traced(
        &mut self,
        nonce: u64,
        terms: &[ConjunctiveQuery],
    ) -> Result<(Vec<QueryCounts>, Option<SpanNode>), ClientError> {
        match self.request(&Request::PartialTermCounts {
            terms: terms.to_vec(),
            nonce,
            profile: true,
        })? {
            Response::PartialTermCounts(counts, trace) => Ok((counts, trace)),
            other => Self::unexpected(&other),
        }
    }

    /// Fetches a recently completed span trace from the server's
    /// bounded trace ring by the nonce of the query that produced it.
    /// Returns `None` when the ring holds no trace for that nonce (it
    /// was never profiled, or has since been evicted). Uncharged: a
    /// trace is metadata about a query already paid for.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn trace(&mut self, nonce: u64) -> Result<Option<SpanNode>, ClientError> {
        match self.request(&Request::Trace { nonce })? {
            Response::Trace(tree) => Ok(tree),
            other => Self::unexpected(&other),
        }
    }

    /// Fetches server-level observability counters (uptime, per-frame
    /// request counts).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn server_stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::ServerStats)? {
            Response::ServerStats(stats) => Ok(stats),
            other => Self::unexpected(&other),
        }
    }

    /// Fetches the server's full metrics-registry snapshot (counters,
    /// gauges, latency histograms). Snapshots from several shards merge
    /// via [`psketch_obs::RegistrySnapshot::merge`].
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn metrics(&mut self) -> Result<psketch_obs::RegistrySnapshot, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            other => Self::unexpected(&other),
        }
    }
}
