//! # psketch-server — the networked sketch-pool service
//!
//! The paper's deployment story (§1, Appendix A) is a live three-actor
//! system: a coordinator publishes an announcement, millions of user
//! agents publish sketch bundles, analysts query the public pool. This
//! crate turns the in-process [`psketch_protocol`] layer into that
//! service, std-only (threads + blocking sockets, no async runtime):
//!
//! * [`wire`] — a length-prefixed, versioned binary frame protocol
//!   carrying the existing protocol messages plus query/response and
//!   error frames;
//! * [`server`] — a threaded TCP server with a fixed worker pool and
//!   graceful shutdown; ingestion routes through
//!   [`psketch_protocol::Coordinator::accept_batch`], queries run off
//!   `Arc` snapshots so analysts never block ingestion;
//! * [`client`] — a blocking client with connection reuse and chunked
//!   batch submission;
//! * [`wal`] — crash-safe durability: a CRC-framed write-ahead log,
//!   fsync'd before a batch is acknowledged, replayed on startup
//!   (tolerating a torn final record) and compacted into a bit-packed
//!   snapshot once it outgrows a threshold.
//!
//! The wire format and WAL record layout are specified in
//! `docs/wire-protocol.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wal;
pub mod wire;

pub use client::{next_nonce, Client, ClientError, SubmitAck};
pub use server::{ServeError, Server, ServerConfig};
pub use wal::{Wal, WalConfig, WalError};
pub use wire::{
    BudgetStats, PlanAnswerWire, PlanStats, Request, Response, ServerStats, MAX_FRAME_BYTES,
    MAX_PLAN_TERMS, PROTOCOL_VERSION,
};
