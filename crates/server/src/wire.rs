//! The framed binary wire protocol.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! u32 LE payload length  (≤ MAX_FRAME_BYTES)
//! payload:
//!     u8 protocol version (= PROTOCOL_VERSION)
//!     u8 message kind
//!     body…                (kind-specific)
//! ```
//!
//! The payload carries the existing [`psketch_protocol::messages`] types
//! in a compact hand-rolled binary encoding (the container has no serde
//! binary backend): integers little-endian, `f64` as IEEE-754 bits,
//! byte strings and lists length-prefixed with `u32`. Requests flow
//! client → server, responses flow back; a server that cannot parse or
//! serve a request answers with an [`Response::Error`] frame instead of
//! dropping the connection, so one bad query never costs a client its
//! warm connection.
//!
//! Versioning: the version byte sits *outside* the kind so a server can
//! reject a frame from the future (or the past) with
//! [`codes::UNSUPPORTED_VERSION`] without guessing at its body layout.

use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Error, Estimate, UserId};
use psketch_obs::span::MAX_SPAN_ATTRS;
use psketch_obs::{HistogramSnapshot, MetricId, RegistrySnapshot, SpanNode};
use psketch_protocol::{Announcement, CoordinatorStats, QueryCounts, ShardIdentity, Submission};
use psketch_queries::{LinearAnswer, TermPlan};
use std::io::{self, Read, Write};

/// Current protocol version.
///
/// Version history:
/// * 1 — the original single-node protocol (announcement, submit,
///   conjunctive/distribution/linear estimates, stats, ping).
/// * 2 — the cluster revision: hello handshake (analyst identity +
///   shard identity), per-kind partial-count query frames for
///   scatter-gather routers, server stats (uptime + per-frame-kind
///   counters), and the budget-exhausted error code.
/// * 3 — the query-plan revision: messages carry serialized
///   [`TermPlan`]s. The `Plan` frame executes a whole compiled plan
///   server-side (replacing the v2 `Linear` frame); the generic
///   `PartialTermCounts` frame scatters a plan's deduplicated term list
///   and replaces the v2 `PartialCounts`/`PartialDistribution` pair —
///   every query family shards through this one frame. Server stats
///   gained the engine's plan/memoization counters.
/// * 4 — the retry-correctness revision: every charging request
///   (`Conjunctive`, `Distribution`, `Plan`, `PartialTermCounts`)
///   carries a **request nonce** identifying the logical query, so a
///   client that lost the connection after the server charged its
///   ε-ledger can retry with the same nonce and be served without a
///   second charge (charge-once per nonce; `0` opts out). Server stats
///   gained the ε-ledger counters ([`BudgetStats`]).
/// * 5 — the observability revision: the v4 request nonce doubles as
///   the **trace correlation id** — routers and servers log it with
///   every record a query produces, so one analyst query greps
///   identically across all node logs. A new `Metrics` frame returns
///   the node's full [`psketch_obs`] registry snapshot (counters,
///   gauges, log₂ latency histograms) so `cluster status --metrics`
///   can merge histograms cluster-wide.
/// * 6 — the profiling revision: every charging query frame carries a
///   **profile flag**; when set, the server records its execution as a
///   span trace keyed by the request nonce, stores it in a bounded
///   recent-trace ring, and attaches the serialized span tree to the
///   response (the in-band half of `EXPLAIN ANALYZE`). A new `Trace`
///   frame fetches a recently completed trace from the ring by nonce.
pub const PROTOCOL_VERSION: u8 = 6;

/// Hard ceiling on the terms of one plan (or term-counts batch); larger
/// plans are refused as [`codes::BAD_REQUEST`] before any scan. A
/// 16-bit distribution compiles to exactly this many terms.
pub const MAX_PLAN_TERMS: usize = 1 << 16;

/// Hard ceiling on a frame payload; larger length prefixes are treated
/// as malformed (they are far more likely garbage or abuse than a real
/// message, and pre-allocating from an attacker-supplied length is a
/// classic memory DoS).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Hard ceiling on the nodes of one serialized span tree. A shard-local
/// trace caps at [`psketch_obs::span::MAX_TRACE_SPANS`] spans; a
/// router-stitched waterfall holds one such subtree per shard plus its
/// own scatter/merge spans, so this bound leaves room for wide clusters
/// while still refusing hostile counts before allocation.
pub const MAX_SPAN_NODES: usize = 1 << 14;

/// Error codes carried by [`Response::Error`] frames.
pub mod codes {
    /// The request frame declared a protocol version this server does
    /// not speak.
    pub const UNSUPPORTED_VERSION: u16 = 1;
    /// The request frame could not be decoded.
    pub const MALFORMED: u16 = 2;
    /// The query was well-formed but could not be answered (unknown
    /// subset, empty pool, width mismatch…).
    pub const QUERY: u16 = 3;
    /// The request was well-formed but invalid (e.g. wrong database id).
    pub const BAD_REQUEST: u16 = 4;
    /// The server failed internally.
    pub const INTERNAL: u16 = 5;
    /// The analyst's ε-budget is exhausted (Corollary 3.4 accounting at
    /// the service boundary); the query was refused before evaluation.
    pub const BUDGET: u16 = 6;
    /// The connection handshake declared a shard identity the server
    /// does not hold (a misrouted connection in a sharded deployment).
    pub const WRONG_SHARD: u16 = 7;
    /// A replay of a charged request nonce arrived while the original
    /// request is still being evaluated. The charge already happened
    /// and the original answer will be cached when it completes —
    /// retry shortly; this is the only **transient** error code
    /// (clients treat every other server error as deterministic).
    pub const RETRY_PENDING: u16 = 8;
}

// Message kind bytes. Requests use the low range, responses the high
// range, so a stray response can never parse as a request.
const REQ_ANNOUNCEMENT: u8 = 0x01;
const REQ_SUBMIT: u8 = 0x02;
const REQ_CONJUNCTIVE: u8 = 0x03;
const REQ_DISTRIBUTION: u8 = 0x04;
const REQ_PLAN: u8 = 0x05;
const REQ_STATS: u8 = 0x06;
const REQ_PING: u8 = 0x07;
const REQ_HELLO: u8 = 0x08;
const REQ_PLAN_COUNTS: u8 = 0x09;
const REQ_SERVER_STATS: u8 = 0x0B;
const REQ_METRICS: u8 = 0x0C;
const REQ_TRACE: u8 = 0x0D;
const RESP_ANNOUNCEMENT: u8 = 0x81;
const RESP_SUBMIT_ACK: u8 = 0x82;
const RESP_ESTIMATE: u8 = 0x83;
const RESP_DISTRIBUTION: u8 = 0x84;
const RESP_PLAN: u8 = 0x85;
const RESP_STATS: u8 = 0x86;
const RESP_PONG: u8 = 0x87;
const RESP_HELLO: u8 = 0x88;
const RESP_PLAN_COUNTS: u8 = 0x89;
const RESP_SERVER_STATS: u8 = 0x8B;
const RESP_METRICS: u8 = 0x8C;
const RESP_TRACE: u8 = 0x8D;
const RESP_ERROR: u8 = 0xFF;

/// Highest request kind byte (the server keeps one per-kind request
/// counter for each of `0x01..=MAX_REQUEST_KIND`; `0x0A` is a retired
/// v2 kind and stays unused).
pub const MAX_REQUEST_KIND: u8 = REQ_TRACE;

/// Human-readable name of a request kind byte (for stats display).
#[must_use]
pub fn request_kind_name(kind: u8) -> Option<&'static str> {
    Some(match kind {
        REQ_ANNOUNCEMENT => "announcement",
        REQ_SUBMIT => "submit",
        REQ_CONJUNCTIVE => "conjunctive",
        REQ_DISTRIBUTION => "distribution",
        REQ_PLAN => "plan",
        REQ_STATS => "stats",
        REQ_PING => "ping",
        REQ_HELLO => "hello",
        REQ_PLAN_COUNTS => "plan-counts",
        REQ_SERVER_STATS => "server-stats",
        REQ_METRICS => "metrics",
        REQ_TRACE => "trace",
        _ => return None,
    })
}

/// The engine-side plan/memoization counters a server reports (the
/// wire shape of [`psketch_queries::EngineStatsSnapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Plans executed through the engine (the `Plan` frame path).
    pub plans_executed: u64,
    /// Conjunctive terms actually scanned (memo/dedup misses).
    pub terms_scanned: u64,
    /// Term references served without a scan (memo hits plus
    /// compile-time plan deduplication).
    pub terms_reused: u64,
}

/// The ε-ledger counters a server reports (all zero when budget
/// accounting is disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetStats {
    /// Conjunctive estimates charged to analyst ledgers (ε units in
    /// release counts, summed over analysts).
    pub charged_terms: u64,
    /// Requests served *without* a charge because their nonce was
    /// already charged — each one is a retry that would have
    /// double-charged before v4.
    pub replays: u64,
    /// Requests refused with [`codes::BUDGET`].
    pub denials: u64,
}

/// Server-level observability counters: process uptime plus one request
/// counter per frame kind (malformed frames land in the dedicated
/// `malformed` bucket because they have no trustworthy kind byte), the
/// engine's plan-execution counters, and the ε-ledger counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// `(request kind byte, requests served)` pairs, ascending by kind,
    /// zero-count kinds omitted.
    pub frames: Vec<(u8, u64)>,
    /// Frames that could not be decoded (no kind attributable).
    pub malformed: u64,
    /// Plan-execution and term-memoization counters.
    pub plans: PlanStats,
    /// ε-ledger charge/replay/denial counters.
    pub budget: BudgetStats,
}

impl ServerStats {
    /// Total well-formed requests served across all kinds.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.frames.iter().map(|&(_, count)| count).sum()
    }

    /// The count for one request kind.
    #[must_use]
    pub fn count_for(&self, kind: u8) -> u64 {
        self.frames
            .iter()
            .find(|&&(k, _)| k == kind)
            .map_or(0, |&(_, count)| count)
    }

    /// Merges another node's stats into this one for a cluster-wide
    /// view. Counter-like fields (frames, malformed, plan and budget
    /// counters) **sum** — shards partition the traffic. Gauge-like
    /// fields do not: `uptime_secs` keeps the **maximum** (a 3-shard
    /// cluster has not been up three times as long; summing uptimes is
    /// the classic status-merge bug — per-shard values stay visible in
    /// the per-shard rows).
    pub fn merge(&mut self, other: &ServerStats) {
        self.uptime_secs = self.uptime_secs.max(other.uptime_secs);
        for &(kind, count) in &other.frames {
            match self.frames.binary_search_by_key(&kind, |&(k, _)| k) {
                Ok(at) => self.frames[at].1 += count,
                Err(at) => self.frames.insert(at, (kind, count)),
            }
        }
        self.malformed += other.malformed;
        self.plans.plans_executed += other.plans.plans_executed;
        self.plans.terms_scanned += other.plans.terms_scanned;
        self.plans.terms_reused += other.plans.terms_reused;
        self.budget.charged_terms += other.budget.charged_terms;
        self.budget.replays += other.budget.replays;
        self.budget.denials += other.budget.denials;
    }
}

/// A client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the coordinator's public announcement.
    FetchAnnouncement,
    /// Submit a batch of user submissions for ingestion.
    SubmitBatch(Vec<Submission>),
    /// Estimate one conjunctive frequency (the pre-plan direct path,
    /// kept as the single-query fast lane and the oracle the plan path
    /// is tested against).
    Conjunctive {
        /// The queried subset.
        subset: BitSubset,
        /// The queried value.
        value: BitString,
        /// Charge-once replay identity (`0` = no replay protection).
        nonce: u64,
        /// Record a span trace of this execution and attach it to the
        /// response.
        profile: bool,
    },
    /// Estimate the full `2^k` value distribution over one subset (the
    /// pre-plan direct path).
    Distribution {
        /// The queried subset.
        subset: BitSubset,
        /// Charge-once replay identity (`0` = no replay protection).
        nonce: u64,
        /// Record a span trace of this execution and attach it to the
        /// response.
        profile: bool,
    },
    /// Execute a compiled query plan server-side: every query family —
    /// linear combinations, DNF, intervals, means, moments, trees,
    /// histograms — travels as this one frame. The analyst is charged
    /// the plan's **term count** (its true Corollary 3.4 cost), never
    /// per-output.
    Plan {
        /// The compiled plan to execute.
        plan: TermPlan,
        /// Charge-once replay identity (`0` = no replay protection).
        nonce: u64,
        /// Record a span trace of this execution and attach it to the
        /// response.
        profile: bool,
    },
    /// Fetch the coordinator's ingestion counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Connection handshake: declares the analyst identity for budget
    /// accounting and asks the server for its shard identity.
    Hello {
        /// The analyst this connection acts for (0 = anonymous).
        analyst: u64,
    },
    /// Raw satisfying counts for a plan's deduplicated term list — the
    /// scatter half of a router's scatter-gather. One batch answers a
    /// whole plan's terms in one round trip; the router merges the
    /// integer counts and runs the inversion + post-combination once.
    PartialTermCounts {
        /// The terms to count, answered positionally.
        terms: Vec<ConjunctiveQuery>,
        /// Charge-once replay identity (`0` = no replay protection).
        nonce: u64,
        /// Record a span trace of this execution and attach it to the
        /// response.
        profile: bool,
    },
    /// Fetch server-level observability counters (uptime, per-frame-kind
    /// request counts, plan/memoization counters, ε-ledger counters).
    ServerStats,
    /// Fetch the node's full metrics-registry snapshot (counters,
    /// gauges, log₂ latency histograms) for cluster-wide merging.
    Metrics,
    /// Fetch a recently completed span trace from the server's bounded
    /// ring by its wire nonce (uncharged — profiles are metadata, not
    /// query answers).
    Trace {
        /// The nonce the trace was keyed by.
        nonce: u64,
    },
}

/// A wire-level estimate (mirrors [`psketch_core::Estimate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateWire {
    /// The unbiased estimate `r'`.
    pub fraction: f64,
    /// The raw one-fraction `r̃`.
    pub raw: f64,
    /// Number of sketches aggregated.
    pub sample_size: u64,
    /// The bias used for inversion.
    pub p: f64,
}

impl From<Estimate> for EstimateWire {
    fn from(e: Estimate) -> Self {
        Self {
            fraction: e.fraction,
            raw: e.raw,
            sample_size: e.sample_size as u64,
            p: e.p,
        }
    }
}

impl From<EstimateWire> for Estimate {
    fn from(e: EstimateWire) -> Self {
        Self {
            fraction: e.fraction,
            raw: e.raw,
            sample_size: usize::try_from(e.sample_size).unwrap_or(usize::MAX),
            p: e.p,
        }
    }
}

/// One plan output's answer (mirrors [`psketch_queries::LinearAnswer`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanAnswerWire {
    /// The estimated value of the output's combination.
    pub value: f64,
    /// Distinct conjunctive terms the output references.
    pub queries_used: u64,
    /// Smallest sample size among the underlying term estimates.
    pub min_sample_size: u64,
}

impl From<LinearAnswer> for PlanAnswerWire {
    fn from(a: LinearAnswer) -> Self {
        Self {
            value: a.value,
            queries_used: a.queries_used as u64,
            min_sample_size: a.min_sample_size as u64,
        }
    }
}

impl From<PlanAnswerWire> for LinearAnswer {
    fn from(a: PlanAnswerWire) -> Self {
        Self {
            value: a.value,
            queries_used: usize::try_from(a.queries_used).unwrap_or(usize::MAX),
            min_sample_size: usize::try_from(a.min_sample_size).unwrap_or(usize::MAX),
        }
    }
}

/// A server → client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The public announcement.
    Announcement(Announcement),
    /// Outcome of a [`Request::SubmitBatch`].
    SubmitAck {
        /// Submissions accepted into the pool.
        accepted: u64,
        /// Submissions rejected (malformed or duplicate).
        rejected: u64,
    },
    /// Answer to a [`Request::Conjunctive`]; the span-tree attachment
    /// is present iff the request asked to be profiled.
    Estimate(EstimateWire, Option<SpanNode>),
    /// Answer to a [`Request::Distribution`], indexed by the LSB-first
    /// integer encoding of the value, plus the optional profile.
    Distribution(Vec<EstimateWire>, Option<SpanNode>),
    /// Answer to a [`Request::Plan`]: one answer per plan output, in
    /// plan order, plus the optional profile.
    PlanAnswers(Vec<PlanAnswerWire>, Option<SpanNode>),
    /// Answer to a [`Request::Stats`].
    Stats(CoordinatorStats),
    /// Answer to a [`Request::Ping`].
    Pong,
    /// Answer to a [`Request::Hello`]: the server's shard identity, if
    /// it is part of a sharded deployment.
    Hello {
        /// `None` for a standalone (unsharded) server.
        shard: Option<ShardIdentity>,
    },
    /// Answer to a [`Request::PartialTermCounts`], aligned positionally
    /// with the request's terms, plus the optional profile.
    PartialTermCounts(Vec<QueryCounts>, Option<SpanNode>),
    /// Answer to a [`Request::ServerStats`].
    ServerStats(ServerStats),
    /// Answer to a [`Request::Metrics`]: the node's metrics-registry
    /// snapshot, mergeable across shards
    /// ([`psketch_obs::RegistrySnapshot::merge`]).
    Metrics(RegistrySnapshot),
    /// Answer to a [`Request::Trace`]: the stored span tree, or `None`
    /// if the nonce has aged out of the ring (or was never profiled).
    Trace(Option<SpanNode>),
    /// The request failed; see [`codes`].
    Error {
        /// Machine-readable error code.
        code: u16,
        /// Human-readable description.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Primitive encoding helpers.
// ---------------------------------------------------------------------

fn codec_err(reason: impl Into<String>) -> Error {
    Error::Codec {
        reason: reason.into(),
    }
}

/// Byte-slice cursor with length-checked little-endian reads.
struct Dec<'a> {
    data: &'a [u8],
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.data.len() < n {
            return Err(codec_err(format!(
                "truncated message: wanted {n} bytes, {} left",
                self.data.len()
            )));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    /// A fixed-size read. `take` already bounds-checked, so the copy
    /// can never fail — written without `try_into().unwrap()` so the
    /// decode path stays mechanically panic-free.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], Error> {
        let src = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, byte) in out.iter_mut().zip(src) {
            *dst = *byte;
        }
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, Error> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` meant to size an upcoming allocation; bounded by what the
    /// remaining input could possibly hold (each element ≥ `elem_bytes`).
    fn count(&mut self, elem_bytes: usize) -> Result<usize, Error> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes.max(1)) > self.data.len() {
            return Err(codec_err(format!(
                "declared count {n} exceeds remaining {} bytes",
                self.data.len()
            )));
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, Error> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, Error> {
        String::from_utf8(self.bytes()?).map_err(|_| codec_err("invalid utf-8 string"))
    }

    fn finish(self) -> Result<(), Error> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(codec_err(format!(
                "{} trailing bytes after message",
                self.data.len()
            )))
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_len(buf: &mut Vec<u8>, n: usize) {
    put_u32(buf, u32::try_from(n).expect("list longer than u32::MAX"));
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_len(buf, data.len());
    buf.extend_from_slice(data);
}

// ---------------------------------------------------------------------
// Domain-type encoding.
// ---------------------------------------------------------------------

fn put_subset(buf: &mut Vec<u8>, subset: &BitSubset) {
    put_len(buf, subset.len());
    for &pos in subset.positions() {
        put_u32(buf, pos);
    }
}

fn get_subset(dec: &mut Dec<'_>) -> Result<BitSubset, Error> {
    let n = dec.count(4)?;
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(dec.u32()?);
    }
    BitSubset::new(positions).map_err(Error::Subset)
}

fn put_bitstring(buf: &mut Vec<u8>, value: &BitString) {
    put_len(buf, value.len());
    let mut byte = 0u8;
    for i in 0..value.len() {
        if value.get(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !value.len().is_multiple_of(8) {
        buf.push(byte);
    }
}

fn get_bitstring(dec: &mut Dec<'_>) -> Result<BitString, Error> {
    let bits = dec.u32()? as usize;
    if bits > 1 << 20 {
        return Err(codec_err("bit string implausibly long"));
    }
    let bytes = dec.take(bits.div_ceil(8))?;
    let mut out = BitString::zeros(bits);
    for (byte_idx, byte) in bytes.iter().enumerate() {
        for bit in 0..8 {
            let i = byte_idx * 8 + bit;
            if i >= bits {
                break;
            }
            out.set(i, (byte >> bit) & 1 == 1);
        }
    }
    Ok(out)
}

/// Encodes an announcement body (shared by frames and WAL records).
pub(crate) fn put_announcement(buf: &mut Vec<u8>, ann: &Announcement) {
    put_u64(buf, ann.database_id);
    put_f64(buf, ann.p);
    buf.push(ann.sketch_bits);
    buf.extend_from_slice(&ann.global_key);
    put_len(buf, ann.subsets.len());
    for subset in &ann.subsets {
        put_subset(buf, subset);
    }
}

/// Decodes an announcement body.
fn get_announcement(dec: &mut Dec<'_>) -> Result<Announcement, Error> {
    let database_id = dec.u64()?;
    let p = dec.f64()?;
    let sketch_bits = dec.u8()?;
    let global_key: [u8; 32] = dec.array()?;
    let n = dec.count(4)?;
    let mut subsets = Vec::with_capacity(n);
    for _ in 0..n {
        subsets.push(get_subset(dec)?);
    }
    Ok(Announcement {
        database_id,
        p,
        sketch_bits,
        global_key,
        subsets,
    })
}

pub(crate) fn put_submission(buf: &mut Vec<u8>, sub: &Submission) {
    put_u64(buf, sub.user.0);
    put_u64(buf, sub.database_id);
    put_bytes(buf, &sub.bundle);
    put_len(buf, sub.skipped.len());
    for &i in &sub.skipped {
        put_u32(buf, i);
    }
}

fn get_submission(dec: &mut Dec<'_>) -> Result<Submission, Error> {
    let user = UserId(dec.u64()?);
    let database_id = dec.u64()?;
    let bundle = dec.bytes()?;
    let n = dec.count(4)?;
    let mut skipped = Vec::with_capacity(n);
    for _ in 0..n {
        skipped.push(dec.u32()?);
    }
    Ok(Submission {
        user,
        database_id,
        bundle,
        skipped,
    })
}

pub(crate) fn put_submissions(buf: &mut Vec<u8>, subs: &[Submission]) {
    put_len(buf, subs.len());
    for sub in subs {
        put_submission(buf, sub);
    }
}

fn get_submissions(dec: &mut Dec<'_>) -> Result<Vec<Submission>, Error> {
    let n = dec.count(8)?;
    let mut subs = Vec::with_capacity(n);
    for _ in 0..n {
        subs.push(get_submission(dec)?);
    }
    Ok(subs)
}

/// Encodes a term list with **subset interning**: distinct subsets
/// travel once in a table and each term references its subset by
/// index. A `2^k`-value distribution plan repeats one subset across
/// every term — interning keeps that frame a few dozen bytes per term
/// instead of re-encoding a potentially wide subset `2^k` times.
fn put_terms(buf: &mut Vec<u8>, terms: &[ConjunctiveQuery]) {
    let mut subsets: Vec<&BitSubset> = Vec::new();
    let mut indices = Vec::with_capacity(terms.len());
    for term in terms {
        // Terms are usually grouped by subset; check the most recent
        // entry before scanning the whole table.
        let index = match subsets.last() {
            Some(&last) if last == term.subset() => subsets.len() - 1,
            _ => match subsets.iter().position(|&s| s == term.subset()) {
                Some(i) => i,
                None => {
                    subsets.push(term.subset());
                    subsets.len() - 1
                }
            },
        };
        indices.push(index);
    }
    put_len(buf, subsets.len());
    for subset in subsets {
        put_subset(buf, subset);
    }
    put_len(buf, terms.len());
    for (term, index) in terms.iter().zip(indices) {
        put_u32(buf, u32::try_from(index).expect("index fits u32"));
        put_bitstring(buf, term.value());
    }
}

fn get_terms(dec: &mut Dec<'_>) -> Result<Vec<ConjunctiveQuery>, Error> {
    let n_subsets = dec.count(4)?;
    let mut subsets = Vec::with_capacity(n_subsets);
    for _ in 0..n_subsets {
        subsets.push(get_subset(dec)?);
    }
    let n = dec.count(8)?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        let index = dec.u32()? as usize;
        let subset = subsets.get(index).ok_or_else(|| {
            codec_err(format!(
                "term references subset {index} of {n_subsets} in the table"
            ))
        })?;
        let value = get_bitstring(dec)?;
        terms.push(ConjunctiveQuery::new(subset.clone(), value)?);
    }
    Ok(terms)
}

/// Encodes a serialized plan: description, deduplicated term list, then
/// per output `(label, constant, combination)` with term references by
/// slot index.
fn put_plan(buf: &mut Vec<u8>, plan: &TermPlan) {
    put_bytes(buf, plan.description().as_bytes());
    put_terms(buf, plan.terms());
    put_len(buf, plan.outputs().len());
    for output in plan.outputs() {
        put_bytes(buf, output.label.as_bytes());
        put_f64(buf, output.constant);
        put_len(buf, output.combination().len());
        for &(coeff, slot) in output.combination() {
            put_f64(buf, coeff);
            put_u32(buf, u32::try_from(slot).expect("slot fits u32"));
        }
    }
}

fn get_plan(dec: &mut Dec<'_>) -> Result<TermPlan, Error> {
    let description = dec.string()?;
    let terms = get_terms(dec)?;
    let n_outputs = dec.count(12)?;
    let mut outputs = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        let label = dec.string()?;
        let constant = dec.f64()?;
        let n_comb = dec.count(12)?;
        let mut combination = Vec::with_capacity(n_comb);
        for _ in 0..n_comb {
            let coeff = dec.f64()?;
            let slot = dec.u32()? as usize;
            combination.push((coeff, slot));
        }
        outputs.push((label, constant, combination));
    }
    TermPlan::from_parts(description, terms, outputs)
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn put_metric_id(buf: &mut Vec<u8>, id: &MetricId) {
    put_string(buf, &id.family);
    put_len(buf, id.labels.len());
    for (k, v) in &id.labels {
        put_string(buf, k);
        put_string(buf, v);
    }
}

fn get_metric_id(dec: &mut Dec<'_>) -> Result<MetricId, Error> {
    let family = dec.string()?;
    let n = dec.count(2)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push((dec.string()?, dec.string()?));
    }
    Ok(MetricId { family, labels })
}

/// Encodes a metrics-registry snapshot. Histogram buckets travel
/// sparsely (`(bucket index, count)` pairs) — latency histograms
/// occupy a handful of their 65 log₂ buckets.
fn put_registry_snapshot(buf: &mut Vec<u8>, snap: &RegistrySnapshot) {
    put_len(buf, snap.counters.len());
    for (id, value) in &snap.counters {
        put_metric_id(buf, id);
        put_u64(buf, *value);
    }
    put_len(buf, snap.gauges.len());
    for (id, value) in &snap.gauges {
        put_metric_id(buf, id);
        put_u64(buf, *value);
    }
    put_len(buf, snap.histograms.len());
    for (id, hist) in &snap.histograms {
        put_metric_id(buf, id);
        put_u64(buf, hist.sum);
        put_u64(buf, hist.max);
        let occupied: Vec<(u8, u64)> = hist
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (u8::try_from(i).expect("bucket index fits u8"), c))
            .collect();
        put_len(buf, occupied.len());
        for (index, count) in occupied {
            buf.push(index);
            put_u64(buf, count);
        }
    }
}

fn get_registry_snapshot(dec: &mut Dec<'_>) -> Result<RegistrySnapshot, Error> {
    let mut snap = RegistrySnapshot::default();
    let n = dec.count(13)?;
    for _ in 0..n {
        snap.counters.push((get_metric_id(dec)?, dec.u64()?));
    }
    let n = dec.count(13)?;
    for _ in 0..n {
        snap.gauges.push((get_metric_id(dec)?, dec.u64()?));
    }
    let n = dec.count(25)?;
    for _ in 0..n {
        let id = get_metric_id(dec)?;
        let mut hist = HistogramSnapshot {
            sum: dec.u64()?,
            max: dec.u64()?,
            ..HistogramSnapshot::default()
        };
        let pairs = dec.count(9)?;
        for _ in 0..pairs {
            let index = dec.u8()? as usize;
            let count = dec.u64()?;
            match hist.buckets.get_mut(index) {
                Some(slot) => *slot = count,
                None => {
                    return Err(codec_err(format!(
                        "histogram bucket index {index} out of range"
                    )))
                }
            }
        }
        snap.histograms.push((id, hist));
    }
    Ok(snap)
}

fn put_estimate(buf: &mut Vec<u8>, e: &EstimateWire) {
    put_f64(buf, e.fraction);
    put_f64(buf, e.raw);
    put_u64(buf, e.sample_size);
    put_f64(buf, e.p);
}

fn get_estimate(dec: &mut Dec<'_>) -> Result<EstimateWire, Error> {
    Ok(EstimateWire {
        fraction: dec.f64()?,
        raw: dec.f64()?,
        sample_size: dec.u64()?,
        p: dec.f64()?,
    })
}

/// Sentinel parent index marking the root node of a serialized span
/// tree.
const SPAN_NO_PARENT: u32 = u32::MAX;

/// Encodes a span tree **flat, in preorder**: `u32` node count, then
/// per node `u32` parent index ([`SPAN_NO_PARENT`] for the root) ‖
/// name ‖ `u64` start ‖ `u64` duration ‖ `u8` attr count ‖ attrs. The
/// flat shape keeps decoding non-recursive — a hostile deeply nested
/// tree cannot overflow the stack — and preorder guarantees every
/// parent index precedes its children, which the decoder checks.
fn put_span_tree(buf: &mut Vec<u8>, root: &SpanNode) {
    let mut flat: Vec<(&SpanNode, u32)> = Vec::new();
    let mut stack: Vec<(&SpanNode, u32)> = vec![(root, SPAN_NO_PARENT)];
    while let Some((node, parent)) = stack.pop() {
        let index = u32::try_from(flat.len()).expect("span count fits u32");
        flat.push((node, parent));
        // Reverse push keeps children in recording order in preorder.
        for child in node.children.iter().rev() {
            stack.push((child, index));
        }
    }
    put_len(buf, flat.len());
    for (node, parent) in flat {
        put_u32(buf, parent);
        put_string(buf, &node.name);
        put_u64(buf, node.start_ns);
        put_u64(buf, node.duration_ns);
        let attrs = &node.attrs[..node.attrs.len().min(MAX_SPAN_ATTRS)];
        buf.push(u8::try_from(attrs.len()).expect("attr cap fits u8"));
        for (key, value) in attrs {
            put_string(buf, key);
            put_u64(buf, *value);
        }
    }
}

fn get_span_tree(dec: &mut Dec<'_>) -> Result<SpanNode, Error> {
    // Minimal node: parent (4) + empty name (4) + start (8) +
    // duration (8) + attr count (1).
    let n = dec.count(25)?;
    if n == 0 {
        return Err(codec_err("span tree with zero nodes"));
    }
    if n > MAX_SPAN_NODES {
        return Err(codec_err(format!(
            "span tree declares {n} nodes (limit {MAX_SPAN_NODES})"
        )));
    }
    let mut parents = Vec::with_capacity(n);
    let mut slots: Vec<Option<SpanNode>> = Vec::with_capacity(n);
    for i in 0..n {
        let parent = dec.u32()?;
        if i == 0 {
            if parent != SPAN_NO_PARENT {
                return Err(codec_err("root span claims a parent"));
            }
        } else if parent as usize >= i {
            // Also rejects SPAN_NO_PARENT on non-roots: preorder means
            // a parent always precedes its children.
            return Err(codec_err(format!(
                "span {i} references parent {parent} at or after itself"
            )));
        }
        parents.push(parent as usize);
        let name = dec.string()?;
        let start_ns = dec.u64()?;
        let duration_ns = dec.u64()?;
        let n_attrs = dec.u8()? as usize;
        if n_attrs > MAX_SPAN_ATTRS {
            return Err(codec_err(format!(
                "span declares {n_attrs} attrs (limit {MAX_SPAN_ATTRS})"
            )));
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attrs.push((dec.string()?, dec.u64()?));
        }
        slots.push(Some(SpanNode {
            name,
            start_ns,
            duration_ns,
            attrs,
            children: Vec::new(),
        }));
    }
    // Assemble back to front: every node is attached after all of its
    // own children were (parents precede children in preorder). The
    // index checks above make the lookups infallible, but the decode
    // path maps every surprise to an error rather than a panic.
    for i in (1..n).rev() {
        let Some(mut node) = slots.get_mut(i).and_then(Option::take) else {
            return Err(codec_err("span tree slot vanished during assembly"));
        };
        node.children.reverse();
        let parent = parents.get(i).copied().unwrap_or(0);
        match slots.get_mut(parent).and_then(Option::as_mut) {
            Some(p) => p.children.push(node),
            None => return Err(codec_err("span tree parent slot vanished during assembly")),
        }
    }
    let Some(mut root) = slots.first_mut().and_then(Option::take) else {
        return Err(codec_err("span tree root slot vanished during assembly"));
    };
    root.children.reverse();
    Ok(root)
}

/// Encodes an optional span-tree attachment (presence byte + tree).
fn put_span_attachment(buf: &mut Vec<u8>, tree: Option<&SpanNode>) {
    match tree {
        None => buf.push(0),
        Some(root) => {
            buf.push(1);
            put_span_tree(buf, root);
        }
    }
}

fn get_span_attachment(dec: &mut Dec<'_>) -> Result<Option<SpanNode>, Error> {
    match dec.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_span_tree(dec)?)),
        other => Err(codec_err(format!("invalid span-presence byte {other}"))),
    }
}

/// Decodes a strict boolean byte (the profile flag).
fn get_bool(dec: &mut Dec<'_>) -> Result<bool, Error> {
    match dec.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(codec_err(format!("invalid boolean byte {other}"))),
    }
}

// ---------------------------------------------------------------------
// Message payloads.
// ---------------------------------------------------------------------

fn payload(kind: u8) -> Vec<u8> {
    vec![PROTOCOL_VERSION, kind]
}

/// Splits a frame payload into `(version, kind, body)`.
fn open_payload(payload: &[u8]) -> Result<(u8, u8, Dec<'_>), Error> {
    match payload {
        [version, kind, body @ ..] => Ok((*version, *kind, Dec::new(body))),
        _ => Err(codec_err("frame payload shorter than its header")),
    }
}

/// The protocol version a frame payload declares (for pre-dispatch
/// version checks without decoding the body).
pub fn frame_version(payload: &[u8]) -> Result<u8, Error> {
    payload
        .first()
        .copied()
        .ok_or_else(|| codec_err("empty frame payload"))
}

impl Request {
    /// Encodes the request as a frame payload (version + kind + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::FetchAnnouncement => payload(REQ_ANNOUNCEMENT),
            Self::SubmitBatch(subs) => {
                let mut buf = payload(REQ_SUBMIT);
                put_submissions(&mut buf, subs);
                buf
            }
            Self::Conjunctive {
                subset,
                value,
                nonce,
                profile,
            } => {
                let mut buf = payload(REQ_CONJUNCTIVE);
                put_u64(&mut buf, *nonce);
                buf.push(u8::from(*profile));
                put_subset(&mut buf, subset);
                put_bitstring(&mut buf, value);
                buf
            }
            Self::Distribution {
                subset,
                nonce,
                profile,
            } => {
                let mut buf = payload(REQ_DISTRIBUTION);
                put_u64(&mut buf, *nonce);
                buf.push(u8::from(*profile));
                put_subset(&mut buf, subset);
                buf
            }
            Self::Plan {
                plan,
                nonce,
                profile,
            } => {
                let mut buf = payload(REQ_PLAN);
                put_u64(&mut buf, *nonce);
                buf.push(u8::from(*profile));
                put_plan(&mut buf, plan);
                buf
            }
            Self::Stats => payload(REQ_STATS),
            Self::Ping => payload(REQ_PING),
            Self::Hello { analyst } => {
                let mut buf = payload(REQ_HELLO);
                put_u64(&mut buf, *analyst);
                buf
            }
            Self::PartialTermCounts {
                terms,
                nonce,
                profile,
            } => {
                let mut buf = payload(REQ_PLAN_COUNTS);
                put_u64(&mut buf, *nonce);
                buf.push(u8::from(*profile));
                put_terms(&mut buf, terms);
                buf
            }
            Self::ServerStats => payload(REQ_SERVER_STATS),
            Self::Metrics => payload(REQ_METRICS),
            Self::Trace { nonce } => {
                let mut buf = payload(REQ_TRACE);
                put_u64(&mut buf, *nonce);
                buf
            }
        }
    }

    /// Decodes a frame payload into a request.
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] on wrong version, unknown kind, truncation or
    /// trailing bytes.
    pub fn decode(data: &[u8]) -> Result<Self, Error> {
        let (version, kind, mut dec) = open_payload(data)?;
        if version != PROTOCOL_VERSION {
            return Err(codec_err(format!(
                "unsupported protocol version {version} (this side speaks {PROTOCOL_VERSION})"
            )));
        }
        let req = match kind {
            REQ_ANNOUNCEMENT => Self::FetchAnnouncement,
            REQ_SUBMIT => Self::SubmitBatch(get_submissions(&mut dec)?),
            REQ_CONJUNCTIVE => Self::Conjunctive {
                nonce: dec.u64()?,
                profile: get_bool(&mut dec)?,
                subset: get_subset(&mut dec)?,
                value: get_bitstring(&mut dec)?,
            },
            REQ_DISTRIBUTION => Self::Distribution {
                nonce: dec.u64()?,
                profile: get_bool(&mut dec)?,
                subset: get_subset(&mut dec)?,
            },
            REQ_PLAN => Self::Plan {
                nonce: dec.u64()?,
                profile: get_bool(&mut dec)?,
                plan: get_plan(&mut dec)?,
            },
            REQ_STATS => Self::Stats,
            REQ_PING => Self::Ping,
            REQ_HELLO => Self::Hello {
                analyst: dec.u64()?,
            },
            REQ_PLAN_COUNTS => Self::PartialTermCounts {
                nonce: dec.u64()?,
                profile: get_bool(&mut dec)?,
                terms: get_terms(&mut dec)?,
            },
            REQ_SERVER_STATS => Self::ServerStats,
            REQ_METRICS => Self::Metrics,
            REQ_TRACE => Self::Trace { nonce: dec.u64()? },
            other => return Err(codec_err(format!("unknown request kind {other:#04x}"))),
        };
        dec.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as a frame payload (version + kind + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::Announcement(ann) => {
                let mut buf = payload(RESP_ANNOUNCEMENT);
                put_announcement(&mut buf, ann);
                buf
            }
            Self::SubmitAck { accepted, rejected } => {
                let mut buf = payload(RESP_SUBMIT_ACK);
                put_u64(&mut buf, *accepted);
                put_u64(&mut buf, *rejected);
                buf
            }
            Self::Estimate(e, trace) => {
                let mut buf = payload(RESP_ESTIMATE);
                put_estimate(&mut buf, e);
                put_span_attachment(&mut buf, trace.as_ref());
                buf
            }
            Self::Distribution(es, trace) => {
                let mut buf = payload(RESP_DISTRIBUTION);
                put_len(&mut buf, es.len());
                for e in es {
                    put_estimate(&mut buf, e);
                }
                put_span_attachment(&mut buf, trace.as_ref());
                buf
            }
            Self::PlanAnswers(answers, trace) => {
                let mut buf = payload(RESP_PLAN);
                put_len(&mut buf, answers.len());
                for a in answers {
                    put_f64(&mut buf, a.value);
                    put_u64(&mut buf, a.queries_used);
                    put_u64(&mut buf, a.min_sample_size);
                }
                put_span_attachment(&mut buf, trace.as_ref());
                buf
            }
            Self::Stats(stats) => {
                let mut buf = payload(RESP_STATS);
                put_u64(&mut buf, stats.accepted);
                put_u64(&mut buf, stats.duplicates);
                put_u64(&mut buf, stats.malformed);
                put_u64(&mut buf, stats.records);
                buf
            }
            Self::Pong => payload(RESP_PONG),
            Self::Hello { shard } => {
                let mut buf = payload(RESP_HELLO);
                match shard {
                    None => buf.push(0),
                    Some(identity) => {
                        buf.push(1);
                        put_u32(&mut buf, identity.shard_id);
                        put_u32(&mut buf, identity.shard_count);
                    }
                }
                buf
            }
            Self::PartialTermCounts(counts, trace) => {
                let mut buf = payload(RESP_PLAN_COUNTS);
                put_len(&mut buf, counts.len());
                for c in counts {
                    put_u64(&mut buf, c.ones);
                    put_u64(&mut buf, c.population);
                }
                put_span_attachment(&mut buf, trace.as_ref());
                buf
            }
            Self::ServerStats(stats) => {
                let mut buf = payload(RESP_SERVER_STATS);
                put_u64(&mut buf, stats.uptime_secs);
                put_len(&mut buf, stats.frames.len());
                for &(kind, count) in &stats.frames {
                    buf.push(kind);
                    put_u64(&mut buf, count);
                }
                put_u64(&mut buf, stats.malformed);
                put_u64(&mut buf, stats.plans.plans_executed);
                put_u64(&mut buf, stats.plans.terms_scanned);
                put_u64(&mut buf, stats.plans.terms_reused);
                put_u64(&mut buf, stats.budget.charged_terms);
                put_u64(&mut buf, stats.budget.replays);
                put_u64(&mut buf, stats.budget.denials);
                buf
            }
            Self::Metrics(snap) => {
                let mut buf = payload(RESP_METRICS);
                put_registry_snapshot(&mut buf, snap);
                buf
            }
            Self::Trace(tree) => {
                let mut buf = payload(RESP_TRACE);
                put_span_attachment(&mut buf, tree.as_ref());
                buf
            }
            Self::Error { code, message } => {
                let mut buf = payload(RESP_ERROR);
                put_u16(&mut buf, *code);
                put_bytes(&mut buf, message.as_bytes());
                buf
            }
        }
    }

    /// Decodes a frame payload into a response.
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] on wrong version, unknown kind, truncation or
    /// trailing bytes.
    pub fn decode(data: &[u8]) -> Result<Self, Error> {
        let (version, kind, mut dec) = open_payload(data)?;
        if version != PROTOCOL_VERSION {
            return Err(codec_err(format!(
                "unsupported protocol version {version} (this side speaks {PROTOCOL_VERSION})"
            )));
        }
        let resp = match kind {
            RESP_ANNOUNCEMENT => Self::Announcement(get_announcement(&mut dec)?),
            RESP_SUBMIT_ACK => Self::SubmitAck {
                accepted: dec.u64()?,
                rejected: dec.u64()?,
            },
            RESP_ESTIMATE => {
                let e = get_estimate(&mut dec)?;
                Self::Estimate(e, get_span_attachment(&mut dec)?)
            }
            RESP_DISTRIBUTION => {
                let n = dec.count(32)?;
                let mut es = Vec::with_capacity(n);
                for _ in 0..n {
                    es.push(get_estimate(&mut dec)?);
                }
                Self::Distribution(es, get_span_attachment(&mut dec)?)
            }
            RESP_PLAN => {
                let n = dec.count(24)?;
                let mut answers = Vec::with_capacity(n);
                for _ in 0..n {
                    answers.push(PlanAnswerWire {
                        value: dec.f64()?,
                        queries_used: dec.u64()?,
                        min_sample_size: dec.u64()?,
                    });
                }
                Self::PlanAnswers(answers, get_span_attachment(&mut dec)?)
            }
            RESP_STATS => Self::Stats(CoordinatorStats {
                accepted: dec.u64()?,
                duplicates: dec.u64()?,
                malformed: dec.u64()?,
                records: dec.u64()?,
            }),
            RESP_PONG => Self::Pong,
            RESP_HELLO => {
                let shard = match dec.u8()? {
                    0 => None,
                    1 => Some(ShardIdentity {
                        shard_id: dec.u32()?,
                        shard_count: dec.u32()?,
                    }),
                    other => {
                        return Err(codec_err(format!("invalid shard-presence byte {other}")));
                    }
                };
                Self::Hello { shard }
            }
            RESP_PLAN_COUNTS => {
                let n = dec.count(16)?;
                let mut counts = Vec::with_capacity(n);
                for _ in 0..n {
                    counts.push(QueryCounts {
                        ones: dec.u64()?,
                        population: dec.u64()?,
                    });
                }
                Self::PartialTermCounts(counts, get_span_attachment(&mut dec)?)
            }
            RESP_SERVER_STATS => {
                let uptime_secs = dec.u64()?;
                let n = dec.count(9)?;
                let mut frames = Vec::with_capacity(n);
                for _ in 0..n {
                    let kind = dec.u8()?;
                    frames.push((kind, dec.u64()?));
                }
                Self::ServerStats(ServerStats {
                    uptime_secs,
                    frames,
                    malformed: dec.u64()?,
                    plans: PlanStats {
                        plans_executed: dec.u64()?,
                        terms_scanned: dec.u64()?,
                        terms_reused: dec.u64()?,
                    },
                    budget: BudgetStats {
                        charged_terms: dec.u64()?,
                        replays: dec.u64()?,
                        denials: dec.u64()?,
                    },
                })
            }
            RESP_METRICS => Self::Metrics(get_registry_snapshot(&mut dec)?),
            RESP_TRACE => Self::Trace(get_span_attachment(&mut dec)?),
            RESP_ERROR => Self::Error {
                code: dec.u16()?,
                message: dec.string()?,
            },
            other => return Err(codec_err(format!("unknown response kind {other:#04x}"))),
        };
        dec.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates write failures; rejects payloads over [`MAX_FRAME_BYTES`]
/// with [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds limit", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between messages). A length prefix over [`MAX_FRAME_BYTES`] or an
/// EOF mid-frame yields [`io::ErrorKind::InvalidData`].
///
/// # Errors
///
/// Propagates read failures.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while let Some(rest) = len_buf.get_mut(filled..).filter(|tail| !tail.is_empty()) {
        let n = r.read(rest)?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed mid length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::InvalidData, "connection closed mid frame")
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

/// Decodes an announcement from a standalone buffer (WAL use).
pub(crate) fn decode_announcement(data: &[u8]) -> Result<Announcement, Error> {
    let mut dec = Dec::new(data);
    let ann = get_announcement(&mut dec)?;
    dec.finish()?;
    Ok(ann)
}

/// Decodes an announcement from the *front* of a buffer, returning the
/// number of bytes consumed (snapshot use, where fields follow it).
pub(crate) fn decode_announcement_prefix(data: &[u8]) -> Result<(Announcement, usize), Error> {
    let mut dec = Dec::new(data);
    let ann = get_announcement(&mut dec)?;
    let consumed = data.len() - dec.data.len();
    Ok((ann, consumed))
}

/// Encodes one subset (snapshot use).
pub(crate) fn put_announcement_subset(buf: &mut Vec<u8>, subset: &BitSubset) {
    put_subset(buf, subset);
}

/// Decodes one subset from the front of a buffer, returning the number
/// of bytes consumed (snapshot use).
pub(crate) fn decode_subset_prefix(data: &[u8]) -> Result<(BitSubset, usize), Error> {
    let mut dec = Dec::new(data);
    let subset = get_subset(&mut dec)?;
    let consumed = data.len() - dec.data.len();
    Ok((subset, consumed))
}

/// Decodes a submission batch from a standalone buffer (WAL use).
pub(crate) fn decode_submissions(data: &[u8]) -> Result<Vec<Submission>, Error> {
    let mut dec = Dec::new(data);
    let subs = get_submissions(&mut dec)?;
    dec.finish()?;
    Ok(subs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn announcement(subsets: usize) -> Announcement {
        Announcement {
            database_id: 42,
            p: 0.3,
            sketch_bits: 10,
            global_key: [7; 32],
            subsets: (0..subsets as u32).map(BitSubset::single).collect(),
        }
    }

    /// A small span tree exercising nesting, attrs and empty names.
    fn deep_tree() -> SpanNode {
        let mut root = SpanNode::new("router:plan", 0, 9_000_000);
        root.attrs.push(("terms".into(), 16));
        root.attrs.push(("shards".into(), 3));
        let mut scatter = SpanNode::new("router:scatter", 1_000, 7_000_000);
        for shard in 0..3u64 {
            let mut wrapper = SpanNode::new(format!("shard:{shard}"), 2_000, 6_000_000);
            wrapper.attrs.push(("attempt".into(), 1));
            let mut local = SpanNode::new("shard:partial_counts", 0, 5_000_000);
            local.children.push(SpanNode::new("", 10, 20));
            wrapper.children.push(local);
            scatter.children.push(wrapper);
        }
        root.children.push(scatter);
        root.children
            .push(SpanNode::new("router:merge", 7_500_000, u64::MAX));
        root
    }

    fn roundtrip_request(req: &Request) {
        let payload = req.encode();
        assert_eq!(&Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_response(resp: &Response) {
        let payload = resp.encode();
        assert_eq!(&Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn all_request_kinds_roundtrip() {
        roundtrip_request(&Request::FetchAnnouncement);
        roundtrip_request(&Request::SubmitBatch(vec![Submission {
            user: UserId(9),
            database_id: 42,
            bundle: vec![1, 2, 3],
            skipped: vec![0, 2],
        }]));
        roundtrip_request(&Request::Conjunctive {
            subset: BitSubset::new(vec![0, 3]).unwrap(),
            value: BitString::from_bits(&[true, false]),
            nonce: 0xDEAD_BEEF,
            profile: false,
        });
        roundtrip_request(&Request::Conjunctive {
            subset: BitSubset::new(vec![0, 3]).unwrap(),
            value: BitString::from_bits(&[true, false]),
            nonce: 0xDEAD_BEEF,
            profile: true,
        });
        roundtrip_request(&Request::Distribution {
            subset: BitSubset::range(0, 4),
            nonce: 7,
            profile: true,
        });
        let mut lq = psketch_queries::LinearQuery::new("wire roundtrip");
        lq.constant = -0.5;
        lq.push(
            2.0,
            ConjunctiveQuery::new(BitSubset::single(1), BitString::from_bits(&[true])).unwrap(),
        );
        roundtrip_request(&Request::Plan {
            plan: TermPlan::compile(&lq),
            nonce: u64::MAX,
            profile: true,
        });
        roundtrip_request(&Request::Plan {
            plan: TermPlan::for_distribution(&BitSubset::range(0, 3)),
            nonce: 0,
            profile: false,
        });
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Ping);
        roundtrip_request(&Request::Hello { analyst: 99 });
        roundtrip_request(&Request::PartialTermCounts {
            terms: vec![
                ConjunctiveQuery::new(
                    BitSubset::new(vec![0, 3]).unwrap(),
                    BitString::from_bits(&[true, false]),
                )
                .unwrap(),
                ConjunctiveQuery::new(BitSubset::single(1), BitString::from_bits(&[true])).unwrap(),
            ],
            nonce: 42,
            profile: true,
        });
        roundtrip_request(&Request::ServerStats);
        roundtrip_request(&Request::Metrics);
        roundtrip_request(&Request::Trace { nonce: 0xFEED });
    }

    #[test]
    fn profile_flag_byte_is_strict() {
        // The profile byte sits right after the 8-byte nonce; anything
        // but 0/1 is malformed, not silently truthy.
        let mut payload = Request::Distribution {
            subset: BitSubset::range(0, 4),
            nonce: 7,
            profile: false,
        }
        .encode();
        payload[10] = 2;
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn term_lists_intern_subsets() {
        // A distribution plan repeats one subset across every term; the
        // interned encoding must not grow with the subset width per
        // term, and a corrupted subset index must be rejected.
        let subset = BitSubset::new((0..12u32).map(|i| i * 3).collect()).unwrap();
        let plan = TermPlan::for_distribution(&BitSubset::range(0, 4));
        let narrow = Request::PartialTermCounts {
            terms: plan.terms().to_vec(),
            nonce: 1,
            profile: false,
        }
        .encode();
        let wide_terms: Vec<ConjunctiveQuery> = (0..16u64)
            .map(|v| ConjunctiveQuery::new(subset.clone(), BitString::from_u64(v, 12)).unwrap())
            .collect();
        let wide = Request::PartialTermCounts {
            terms: wide_terms.clone(),
            nonce: 1,
            profile: false,
        }
        .encode();
        // 12-position subsets cost 52 bytes each; interned, the 16-term
        // batches differ by one subset table entry, not 16 of them.
        assert!(
            wide.len() < narrow.len() + 128,
            "wide batch {} vs narrow {} — subsets not interned?",
            wide.len(),
            narrow.len()
        );
        assert_eq!(
            Request::decode(&wide).unwrap(),
            Request::PartialTermCounts {
                terms: wide_terms,
                nonce: 1,
                profile: false
            }
        );
        // Corrupt the (single) subset-table index of the first term.
        let mut payload = Request::PartialTermCounts {
            terms: plan.terms()[..1].to_vec(),
            nonce: 1,
            profile: false,
        }
        .encode();
        let n = payload.len();
        // Layout tail: … ‖ u32 index ‖ u32 bitlen ‖ 1 value byte.
        payload[n - 9..n - 5].copy_from_slice(&9u32.to_le_bytes());
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn plan_slot_corruption_rejected() {
        // A plan whose output references a term beyond the term list
        // must fail to decode, not index out of bounds at execution.
        let plan = TermPlan::for_conjunctive(
            ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap(),
        );
        let mut payload = Request::Plan {
            plan,
            nonce: 3,
            profile: false,
        }
        .encode();
        // The slot is the last 4 bytes of the payload (one combination
        // entry of (f64 coeff, u32 slot)).
        let n = payload.len();
        payload[n - 4..].copy_from_slice(&7u32.to_le_bytes());
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn all_response_kinds_roundtrip() {
        roundtrip_response(&Response::Announcement(announcement(3)));
        roundtrip_response(&Response::SubmitAck {
            accepted: 10,
            rejected: 2,
        });
        let e = EstimateWire {
            fraction: 0.25,
            raw: 0.4,
            sample_size: 1000,
            p: 0.3,
        };
        roundtrip_response(&Response::Estimate(e, None));
        roundtrip_response(&Response::Estimate(e, Some(deep_tree())));
        roundtrip_response(&Response::Distribution(vec![e; 4], None));
        roundtrip_response(&Response::Distribution(vec![e; 4], Some(deep_tree())));
        roundtrip_response(&Response::PlanAnswers(
            vec![
                PlanAnswerWire {
                    value: 1.5,
                    queries_used: 3,
                    min_sample_size: 500,
                },
                PlanAnswerWire {
                    value: -0.25,
                    queries_used: 1,
                    min_sample_size: 10,
                },
            ],
            Some(deep_tree()),
        ));
        roundtrip_response(&Response::Stats(CoordinatorStats {
            accepted: 1,
            duplicates: 2,
            malformed: 3,
            records: 4,
        }));
        roundtrip_response(&Response::Pong);
        roundtrip_response(&Response::Hello { shard: None });
        roundtrip_response(&Response::Hello {
            shard: Some(ShardIdentity {
                shard_id: 2,
                shard_count: 5,
            }),
        });
        roundtrip_response(&Response::PartialTermCounts(
            vec![
                QueryCounts {
                    ones: 17,
                    population: 100,
                },
                QueryCounts {
                    ones: 0,
                    population: 0,
                },
            ],
            Some(deep_tree()),
        ));
        roundtrip_response(&Response::Trace(None));
        roundtrip_response(&Response::Trace(Some(deep_tree())));
        roundtrip_response(&Response::ServerStats(ServerStats {
            uptime_secs: 3600,
            frames: vec![(0x03, 12), (0x09, 4)],
            malformed: 2,
            plans: PlanStats {
                plans_executed: 5,
                terms_scanned: 40,
                terms_reused: 9,
            },
            budget: BudgetStats {
                charged_terms: 17,
                replays: 3,
                denials: 1,
            },
        }));
        roundtrip_response(&Response::Error {
            code: codes::QUERY,
            message: "no such subset".into(),
        });
    }

    #[test]
    fn metrics_response_roundtrips() {
        roundtrip_response(&Response::Metrics(RegistrySnapshot::default()));
        let reg = psketch_obs::MetricsRegistry::new();
        reg.counter("psketch_server_requests_total", &[("kind", "plan")])
            .add(12);
        reg.counter("psketch_server_requests_total", &[("kind", "ping")])
            .inc();
        reg.gauge("psketch_uptime_secs", &[]).set(77);
        let h = reg.histogram("psketch_server_request_nanos", &[("kind", "plan")]);
        for v in [0u64, 1, 900, 65_000, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        roundtrip_response(&Response::Metrics(snap.clone()));

        // Sparse bucket encoding survives a merge of decoded snapshots.
        let payload = Response::Metrics(snap.clone()).encode();
        let Response::Metrics(mut decoded) = Response::decode(&payload).unwrap() else {
            panic!("wrong response kind");
        };
        decoded.merge(&snap);
        let direct = {
            let mut s = snap.clone();
            s.merge(&snap);
            s
        };
        assert_eq!(decoded, direct);
    }

    #[test]
    fn server_stats_merge_maxes_uptime_and_sums_counters() {
        let mut left = ServerStats {
            uptime_secs: 3600,
            frames: vec![(0x03, 10), (0x07, 2)],
            malformed: 1,
            plans: PlanStats {
                plans_executed: 4,
                terms_scanned: 40,
                terms_reused: 8,
            },
            budget: BudgetStats {
                charged_terms: 30,
                replays: 1,
                denials: 0,
            },
        };
        let right = ServerStats {
            uptime_secs: 120, // a freshly restarted shard
            frames: vec![(0x03, 5), (0x05, 7)],
            malformed: 2,
            plans: PlanStats {
                plans_executed: 1,
                terms_scanned: 9,
                terms_reused: 0,
            },
            budget: BudgetStats {
                charged_terms: 9,
                replays: 0,
                denials: 3,
            },
        };
        left.merge(&right);
        // Uptime is gauge-like: a 3-shard cluster has not been up the
        // sum of its shards' uptimes. The merge keeps the maximum.
        assert_eq!(left.uptime_secs, 3600);
        assert_eq!(left.frames, vec![(0x03, 15), (0x05, 7), (0x07, 2)]);
        assert_eq!(left.malformed, 3);
        assert_eq!(left.plans.plans_executed, 5);
        assert_eq!(left.plans.terms_scanned, 49);
        assert_eq!(left.plans.terms_reused, 8);
        assert_eq!(left.budget.charged_terms, 39);
        assert_eq!(left.budget.replays, 1);
        assert_eq!(left.budget.denials, 3);
        assert_eq!(left.total_requests(), 24);
    }

    #[test]
    fn server_stats_accessors() {
        let stats = ServerStats {
            uptime_secs: 1,
            frames: vec![(0x03, 12), (0x09, 4)],
            malformed: 0,
            plans: PlanStats::default(),
            budget: BudgetStats::default(),
        };
        assert_eq!(stats.total_requests(), 16);
        assert_eq!(stats.count_for(0x09), 4);
        assert_eq!(stats.count_for(0x05), 0);
        assert_eq!(request_kind_name(0x09), Some("plan-counts"));
        assert_eq!(request_kind_name(0x0A), None);
        assert_eq!(request_kind_name(0x7F), None);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut payload = Request::Ping.encode();
        payload[0] = 99;
        assert!(Request::decode(&payload).is_err());
        assert_eq!(frame_version(&payload).unwrap(), 99);
        let mut payload = Response::Pong.encode();
        payload[0] = 0;
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_rejected() {
        assert!(Request::decode(&[PROTOCOL_VERSION, 0x7E]).is_err());
        assert!(Response::decode(&[PROTOCOL_VERSION, 0x01]).is_err());
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn frame_io_roundtrips() {
        let payload = Request::FetchAnnouncement.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut sink, &huge).is_err());

        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(wire);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_rejected() {
        let payload = Response::Pong.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Cut mid length prefix and mid payload.
        for cut in [1, 3, wire.len() - 1] {
            let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
            assert!(read_frame(&mut cursor).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // A submit frame declaring u32::MAX submissions but carrying no
        // bytes must fail fast instead of reserving gigabytes.
        let mut payload = vec![PROTOCOL_VERSION, 0x02];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&payload).is_err());
    }

    /// Encodes one flat span-tree node (hostile-input test helper).
    fn raw_span_node(buf: &mut Vec<u8>, parent: u32, name: &str, attrs: u8) {
        put_u32(buf, parent);
        put_bytes(buf, name.as_bytes());
        put_u64(buf, 1); // start_ns
        put_u64(buf, 2); // duration_ns
        buf.push(attrs);
    }

    #[test]
    fn hostile_span_trees_rejected() {
        let trace_payload = |body: &[u8]| {
            let mut payload = vec![PROTOCOL_VERSION, 0x8D, 1];
            payload.extend_from_slice(body);
            payload
        };

        // A declared node count exceeding the remaining bytes must fail
        // before allocation.
        let mut body = Vec::new();
        put_u32(&mut body, u32::MAX);
        assert!(Response::decode(&trace_payload(&body)).is_err());

        // Zero nodes is not a tree.
        let mut body = Vec::new();
        put_u32(&mut body, 0);
        assert!(Response::decode(&trace_payload(&body)).is_err());

        // The root must not claim a parent.
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        raw_span_node(&mut body, 0, "root", 0);
        assert!(Response::decode(&trace_payload(&body)).is_err());

        // A non-root node referencing itself (or any index at/after its
        // own) breaks preorder and must be rejected, not cycle.
        let mut body = Vec::new();
        put_u32(&mut body, 2);
        raw_span_node(&mut body, SPAN_NO_PARENT, "root", 0);
        raw_span_node(&mut body, 1, "self-parent", 0);
        assert!(Response::decode(&trace_payload(&body)).is_err());

        // Attr counts past the cap are refused.
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        raw_span_node(
            &mut body,
            SPAN_NO_PARENT,
            "root",
            u8::try_from(MAX_SPAN_ATTRS).unwrap() + 1,
        );
        assert!(Response::decode(&trace_payload(&body)).is_err());

        // The span-presence byte is strict.
        let payload = vec![PROTOCOL_VERSION, 0x8D, 7];
        assert!(Response::decode(&payload).is_err());

        // A well-formed single-node tree still decodes (the guards
        // above reject the corruption, not the shape).
        let mut body = Vec::new();
        put_u32(&mut body, 1);
        raw_span_node(&mut body, SPAN_NO_PARENT, "root", 0);
        let decoded = Response::decode(&trace_payload(&body)).unwrap();
        assert_eq!(decoded, Response::Trace(Some(SpanNode::new("root", 1, 2))));
    }

    #[test]
    fn span_tree_node_cap_enforced() {
        // A tree one node over MAX_SPAN_NODES is refused even when every
        // byte is present and well-formed.
        let mut root = SpanNode::new("root", 0, 1);
        root.children = (0..MAX_SPAN_NODES)
            .map(|i| SpanNode::new("c", i as u64, 1))
            .collect();
        let payload = Response::Trace(Some(root)).encode();
        assert!(Response::decode(&payload).is_err());
    }

    proptest! {
        #[test]
        fn request_submit_roundtrip_property(
            users in proptest::collection::vec(any::<u64>(), 0..20),
            bundle in proptest::collection::vec(any::<u8>(), 0..64),
            db_id in any::<u64>(),
        ) {
            let subs: Vec<Submission> = users
                .iter()
                .map(|&u| Submission {
                    user: UserId(u),
                    database_id: db_id,
                    bundle: bundle.clone(),
                    skipped: vec![u as u32 % 7],
                })
                .collect();
            let req = Request::SubmitBatch(subs);
            let payload = req.encode();
            prop_assert_eq!(Request::decode(&payload).unwrap(), req);
        }

        #[test]
        fn conjunctive_roundtrip_property(
            positions in proptest::collection::vec(0u32..4096, 1..24),
            value_bits in proptest::collection::vec(any::<u64>(), 1..2),
        ) {
            let mut sorted = positions.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let width = sorted.len();
            let subset = BitSubset::new(sorted).unwrap();
            let value = BitString::from_u64(value_bits[0], width);
            let req = Request::Conjunctive {
                subset,
                value,
                nonce: value_bits[0],
                profile: value_bits[0] & 1 == 1,
            };
            let payload = req.encode();
            prop_assert_eq!(Request::decode(&payload).unwrap(), req);
        }

        #[test]
        fn truncation_never_roundtrips_property(
            cut_frac in 0.0f64..1.0,
        ) {
            let resp = Response::Announcement(Announcement {
                database_id: 7,
                p: 0.25,
                sketch_bits: 12,
                global_key: [9; 32],
                subsets: vec![BitSubset::range(0, 8), BitSubset::single(3)],
            });
            let payload = resp.encode();
            let cut = ((payload.len() - 1) as f64 * cut_frac) as usize;
            // Any strict prefix must fail to decode (no silent truncation).
            prop_assert!(Response::decode(&payload[..cut]).is_err());
        }

        #[test]
        fn estimate_roundtrip_property(
            fraction_bits in any::<u64>(),
            sample in any::<u64>(),
        ) {
            // Estimates must survive bit-exactly, including weird floats.
            let e = EstimateWire {
                fraction: f64::from_bits(fraction_bits),
                raw: 0.5,
                sample_size: sample,
                p: 0.3,
            };
            let payload = Response::Estimate(e, None).encode();
            match Response::decode(&payload).unwrap() {
                Response::Estimate(d, trace) => {
                    prop_assert_eq!(d.fraction.to_bits(), e.fraction.to_bits());
                    prop_assert_eq!(d.sample_size, e.sample_size);
                    prop_assert!(trace.is_none());
                }
                other => prop_assert!(false, "wrong kind: {:?}", other),
            }
        }

        #[test]
        fn span_tree_roundtrip_property(
            nodes in proptest::collection::vec(
                (any::<u64>(), any::<u64>(), 0u8..5, 0u8..4),
                1..60,
            ),
        ) {
            // Build an arbitrary tree from primitive draws: each entry
            // (start, duration, hop, attrs) attaches a node `hop`
            // levels up from the previous one, so depth, branching and
            // attr counts all vary.
            const NAMES: [&str; 4] = ["scan", "merge", "compile", "wal"];
            let mut arena: Vec<SpanNode> = Vec::new();
            let mut parents: Vec<usize> = Vec::new();
            let mut path: Vec<usize> = Vec::new();
            for (i, &(start, duration, hop, attrs)) in nodes.iter().enumerate() {
                for _ in 0..hop {
                    if path.len() > 1 {
                        path.pop();
                    }
                }
                let mut node = SpanNode::new(NAMES[i % NAMES.len()], start, duration);
                for a in 0..attrs {
                    node.attrs.push((format!("attr{a}"), u64::from(a) ^ start));
                }
                parents.push(path.last().copied().unwrap_or(0));
                arena.push(node);
                path.push(i);
            }
            // Assemble children back-to-front (parents precede children).
            for i in (1..arena.len()).rev() {
                let node = arena[i].clone();
                arena[parents[i]].children.insert(0, node);
            }
            let root = arena[0].clone();

            let payload = Response::Trace(Some(root.clone())).encode();
            match Response::decode(&payload).unwrap() {
                Response::Trace(Some(decoded)) => {
                    prop_assert_eq!(&decoded, &root);
                    prop_assert_eq!(decoded.span_count(), nodes.len());
                }
                other => prop_assert!(false, "wrong kind: {:?}", other),
            }

            // Any strict prefix must fail to decode (no silent
            // truncation, exactly like every other codec in this file).
            let cut = payload.len() - 1;
            prop_assert!(Response::decode(&payload[..cut]).is_err());
        }
    }
}
