//! The threaded TCP sketch-pool server.
//!
//! Architecture: one accept thread hands connections to a **fixed pool
//! of worker threads** over a channel; each worker owns one connection
//! at a time and serves its frames until the peer hangs up. Ingestion
//! routes through [`Coordinator::accept_batch`] behind the WAL lock
//! (append → fsync → apply → ack), while queries run off
//! [`psketch_core::SketchDb`] `Arc` snapshots — readers never block
//! writers and a long analyst scan never stalls ingestion.
//!
//! Shutdown is graceful: in-flight requests complete, idle workers exit
//! at their next poll tick, and the accept thread is woken with a
//! loopback connection so nothing blocks forever.

use crate::wal::{Wal, WalConfig, WalError};
use crate::wire::{self, codes, EstimateWire, Request, Response, PROTOCOL_VERSION};
use parking_lot::Mutex;
use psketch_core::{ConjunctiveQuery, Error, PrivacyAccountant};
use psketch_obs::{self as obs, expose::MetricsExposer, Counter, Histogram, SpanNode};
use psketch_protocol::{Announcement, Coordinator, QueryCounts, ShardIdentity};
use psketch_queries::QueryEngine;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Distribution queries wider than this are refused: the response holds
/// `2^k` estimates and must fit comfortably in one frame.
const MAX_DISTRIBUTION_WIDTH: usize = 16;

/// How often an idle worker wakes up to check for shutdown.
const POLL_TICK: Duration = Duration::from_millis(200);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Durability: `Some` opens (or recovers) a WAL-backed store.
    pub wal: Option<WalConfig>,
    /// This node's place in a sharded deployment, reported in the hello
    /// handshake so routers can verify their shard map. `None` for a
    /// standalone server.
    pub shard: Option<ShardIdentity>,
    /// Per-analyst ε-budget enforced at the query boundary (Corollary
    /// 3.4 accounting): each conjunctive estimate served charges one
    /// release at the announcement's bias, and an analyst whose spend
    /// would exceed the budget gets a [`codes::BUDGET`] error frame.
    /// `None` disables accounting.
    pub analyst_budget: Option<f64>,
    /// `Some(addr)` starts a Prometheus-text scrape listener serving
    /// `GET /metrics` from the process-global [`psketch_obs`] registry.
    pub metrics_addr: Option<String>,
    /// `Some(ms)` emits one structured WARN record per request whose
    /// handling took at least this many milliseconds (`0` logs every
    /// request — the CI tracing mode).
    pub slow_query_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            wal: None,
            shard: None,
            analyst_budget: None,
            metrics_addr: None,
            slow_query_ms: None,
        }
    }
}

/// Errors from starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup failure.
    Io(io::Error),
    /// Durability layer failure.
    Wal(WalError),
    /// The announcement failed parameter validation.
    Params(Error),
    /// The WAL store was created under a different announcement than
    /// the one passed in (refusing to mix pools).
    AnnouncementMismatch,
    /// The configured analyst budget is not a positive finite ε.
    InvalidBudget(f64),
    /// The configured shard identity is not a valid `id < count`.
    InvalidShard(ShardIdentity),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "server i/o error: {e}"),
            Self::Wal(e) => write!(f, "{e}"),
            Self::Params(e) => write!(f, "invalid announcement: {e}"),
            Self::AnnouncementMismatch => write!(
                f,
                "store was initialized with a different announcement; \
                 refusing to mix sketch pools"
            ),
            Self::InvalidBudget(eps) => {
                write!(f, "analyst budget {eps} must be a positive finite epsilon")
            }
            Self::InvalidShard(identity) => {
                write!(f, "shard identity {identity} must satisfy id < count")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

/// How many charged nonces each analyst ledger remembers. A replay
/// older than this window is re-charged — the conservative direction:
/// the privacy accounting never under-counts, only a pathologically
/// slow retry pays twice.
const NONCE_WINDOW: usize = 4096;

/// Largest encoded response cached for replay; bigger answers are
/// marked evicted, and their replays re-charge (never under-counting).
const REPLAY_CACHE_ENTRY_BYTES: usize = 2 << 20;

/// Per-analyst ceiling on total cached replay-response bytes; the
/// oldest cached bodies are dropped first (their digests stay, so a
/// late replay re-charges rather than re-executing for free).
const REPLAY_CACHE_TOTAL_BYTES: usize = 16 << 20;

/// Server-wide ceiling on cached replay-response bytes across **all**
/// analysts. Analyst ids are self-declared (no authentication), so
/// without a global cap a client cycling fresh ids could pin a
/// per-analyst cache each and amplify memory without bound. At the
/// cap, new responses are simply not cached (their replays re-charge).
const REPLAY_CACHE_GLOBAL_BYTES: usize = 64 << 20;

/// The response side of a charged nonce.
enum ReplayState {
    /// Charged; the evaluation has not finished (or not yet attached
    /// its response). A replay arriving now is answered with the
    /// transient [`codes::RETRY_PENDING`] error — the charge happened
    /// (so charging again would double-charge) but evaluating again
    /// would release a second, possibly different answer for one
    /// charge. The client retries and finds the cached response.
    Pending,
    /// The charged exchange's encoded response, replayed verbatim
    /// (shared, so serving a replay never copies the body).
    Ready(Arc<[u8]>),
    /// The response was too large, crowded out, or dropped to make
    /// room: a replay now re-charges (never under-counts).
    Evicted,
}

/// One charged nonce: the digest of the exact request bytes it paid
/// for, plus the state of the response that charge bought.
struct NonceEntry {
    digest: u64,
    response: ReplayState,
}

/// What a nonce lookup found.
enum ReplayLookup {
    /// Unknown nonce, digest mismatch, or evicted cache: fresh charge.
    Miss,
    /// Charged, evaluation still in flight: answer `RETRY_PENDING`.
    Pending,
    /// Charged and cached: serve these bytes verbatim.
    Ready(Arc<[u8]>),
}

/// A bounded FIFO map of the nonces an analyst has already been charged
/// for. Each nonce is bound to a digest of the exact request body it
/// paid for **and** to the response that charge produced: a replay is
/// answered from the cache, never by re-executing against a pool that
/// may have grown since — one charge buys exactly one release. The
/// nonce counts as charged from the moment of the charge (not from
/// response completion), so a timeout retry racing the original
/// evaluation can never double-charge; and any digest or cache miss
/// falls back to a fresh charge, so the ledger can never under-count.
#[derive(Default)]
struct NonceWindow {
    seen: HashMap<u64, NonceEntry>,
    order: VecDeque<u64>,
    cached_bytes: usize,
}

impl NonceWindow {
    fn lookup(&self, nonce: u64, digest: u64) -> ReplayLookup {
        match self.seen.get(&nonce) {
            Some(entry) if entry.digest == digest => match &entry.response {
                ReplayState::Pending => ReplayLookup::Pending,
                ReplayState::Ready(bytes) => ReplayLookup::Ready(Arc::clone(bytes)),
                ReplayState::Evicted => ReplayLookup::Miss,
            },
            _ => ReplayLookup::Miss,
        }
    }

    fn release(entry: NonceEntry, global: &AtomicU64) -> usize {
        if let ReplayState::Ready(bytes) = entry.response {
            // ord: advisory byte budget; enforcement is under the per-
            // analyst mutex, the global word only approximates totals
            global.fetch_sub(bytes.len() as u64, Ordering::Relaxed);
            bytes.len()
        } else {
            0
        }
    }

    fn record(&mut self, nonce: u64, digest: u64, global: &AtomicU64) {
        if let Some(old) = self.seen.insert(
            nonce,
            NonceEntry {
                digest,
                response: ReplayState::Pending,
            },
        ) {
            // Nonce reused for a different (re-charged) body: rebound
            // in place, FIFO position unchanged, old cache released.
            self.cached_bytes -= Self::release(old, global);
            return;
        }
        self.order.push_back(nonce);
        if self.order.len() > NONCE_WINDOW {
            if let Some(evicted) = self.order.pop_front() {
                if let Some(old) = self.seen.remove(&evicted) {
                    self.cached_bytes -= Self::release(old, global);
                }
            }
        }
    }

    /// Attaches the encoded response a fresh charge produced, within
    /// the per-entry, per-analyst and server-wide byte budgets; when a
    /// budget refuses, the entry is marked evicted so later replays
    /// re-charge instead of riding free forever.
    fn attach_response(
        &mut self,
        nonce: u64,
        digest: u64,
        encoded: &Arc<[u8]>,
        global: &AtomicU64,
    ) {
        let fits_entry = encoded.len() <= REPLAY_CACHE_ENTRY_BYTES;
        // Make room within the per-analyst budget by dropping the
        // oldest cached bodies (their digests stay).
        while fits_entry && self.cached_bytes + encoded.len() > REPLAY_CACHE_TOTAL_BYTES {
            let Some(&victim) = self.order.iter().find(|n| {
                self.seen
                    .get(n)
                    .is_some_and(|e| matches!(e.response, ReplayState::Ready(_)))
            }) else {
                break;
            };
            if let Some(entry) = self.seen.get_mut(&victim) {
                let old = std::mem::replace(&mut entry.response, ReplayState::Evicted);
                if let ReplayState::Ready(bytes) = old {
                    // ord: advisory byte budget (see `release`)
                    global.fetch_sub(bytes.len() as u64, Ordering::Relaxed);
                    self.cached_bytes -= bytes.len();
                }
            }
        }
        let fits_analyst = self.cached_bytes + encoded.len() <= REPLAY_CACHE_TOTAL_BYTES;
        // ord: advisory byte budget (see `release`)
        let fits_global = global.load(Ordering::Relaxed) + encoded.len() as u64
            <= REPLAY_CACHE_GLOBAL_BYTES as u64;
        if let Some(entry) = self.seen.get_mut(&nonce) {
            if entry.digest == digest && matches!(entry.response, ReplayState::Pending) {
                if fits_entry && fits_analyst && fits_global {
                    // ord: advisory byte budget (see `release`)
                    global.fetch_add(encoded.len() as u64, Ordering::Relaxed);
                    self.cached_bytes += encoded.len();
                    entry.response = ReplayState::Ready(Arc::clone(encoded));
                } else {
                    entry.response = ReplayState::Evicted;
                }
            }
        }
    }
}

/// One analyst's account: the ε accountant plus the nonces it has been
/// charged for.
struct AnalystLedger {
    accountant: PrivacyAccountant,
    nonces: NonceWindow,
}

/// Per-analyst ε ledgers (Corollary 3.4 accounting at the service
/// boundary). Every conjunctive estimate the server computes on an
/// analyst's behalf is one "release" at the announcement's bias; the
/// multiplicative ratio bound is tracked by [`PrivacyAccountant`] and a
/// charge that would exceed the budget is refused *before* the scan.
///
/// Charges are **idempotent per request nonce**: a client that lost its
/// connection after the server charged (but before it read the answer)
/// retries with the same nonce — and the same bytes — and is served the
/// **cached original response** without a second charge or a second
/// evaluation. The nonce is bound to a keyed digest of the request
/// payload, so only a byte-identical replay rides free; a reused nonce
/// carrying a different query is a fresh charge. Nonce `0` is the "no
/// replay identity" sentinel and always charges.
struct BudgetBook {
    epsilon: f64,
    p: f64,
    ledgers: Mutex<HashMap<u64, AnalystLedger>>,
    /// Keys the payload digest (SipHash with per-process random keys):
    /// an analyst cannot construct offline collisions to ride a paid
    /// nonce with a different query body.
    hasher: std::collections::hash_map::RandomState,
    /// Cached replay-response bytes across all analysts (global cap).
    cached_bytes: AtomicU64,
    /// Estimates charged across all analysts (ServerStats surface).
    charged_terms: AtomicU64,
    /// Requests served without a fresh charge (replayed or in-flight
    /// nonces).
    replays: AtomicU64,
    /// Requests refused over budget.
    denials: AtomicU64,
    /// Registry mirrors of the three counters above, cached at
    /// construction so the charge path never takes a registry lock —
    /// budget exhaustion becomes visible on `/metrics` before analysts
    /// start hitting `BUDGET` errors.
    obs_charged_terms: Arc<Counter>,
    obs_replays: Arc<Counter>,
    obs_denials: Arc<Counter>,
}

/// Outcome of a budget gate check, before any evaluation.
enum Charge {
    /// A fresh charge was recorded: evaluate, then hand the encoded
    /// response to [`BudgetBook::attach_response`].
    Evaluate,
    /// Byte-identical replay of a paid request: serve these cached
    /// encoded response bytes verbatim, nothing to evaluate.
    Replay(Arc<[u8]>),
    /// Byte-identical replay of a paid request whose original
    /// evaluation is still in flight: answer the transient
    /// [`codes::RETRY_PENDING`] error (no charge, no evaluation).
    Pending,
}

impl BudgetBook {
    fn new(epsilon: f64, p: f64) -> Self {
        // The per-analyst ε ceiling is a configuration gauge, exported
        // once in micro-ε so the text format stays integral.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        obs::gauge("psketch_budget_epsilon_per_analyst_micro", &[])
            .set((epsilon * 1e6).round().max(0.0) as u64);
        Self {
            epsilon,
            p,
            ledgers: Mutex::new(HashMap::new()),
            hasher: std::collections::hash_map::RandomState::new(),
            cached_bytes: AtomicU64::new(0),
            charged_terms: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            obs_charged_terms: obs::counter("psketch_budget_charged_terms_total", &[]),
            obs_replays: obs::counter("psketch_budget_replays_total", &[]),
            obs_denials: obs::counter("psketch_budget_denials_total", &[]),
        }
    }

    /// The keyed fingerprint binding a request nonce to its exact
    /// payload bytes.
    fn digest(&self, payload: &[u8]) -> u64 {
        use std::hash::{BuildHasher, Hasher};
        let mut h = self.hasher.build_hasher();
        h.write(payload);
        h.finish()
    }

    fn charge(
        &self,
        analyst: u64,
        estimates: u32,
        nonce: u64,
        digest: u64,
    ) -> Result<Charge, Error> {
        let mut ledgers = self.ledgers.lock();
        let ledger = ledgers.entry(analyst).or_insert_with(|| AnalystLedger {
            accountant: PrivacyAccountant::new(self.p, self.epsilon),
            nonces: NonceWindow::default(),
        });
        if nonce != 0 {
            match ledger.nonces.lookup(nonce, digest) {
                // Already paid for, byte-identical, original response
                // cached: serve that exact response free.
                ReplayLookup::Ready(cached) => {
                    // ord: monotonic stat counter, eventual totals suffice
                    self.replays.fetch_add(1, Ordering::Relaxed);
                    self.obs_replays.inc();
                    return Ok(Charge::Replay(cached));
                }
                // Paid for, but the original evaluation hasn't finished
                // (a timeout retry racing it): charging again would be
                // the exact double-charge this machinery prevents, and
                // evaluating again for free would release a second
                // answer for one charge. Tell the client to retry; the
                // original's cached response will be waiting.
                ReplayLookup::Pending => return Ok(Charge::Pending),
                // Unknown nonce, digest mismatch, or evicted cache:
                // fall through to a fresh charge — dedup must never let
                // a new query, or a late re-evaluation over a grown
                // pool, ride an old charge.
                ReplayLookup::Miss => {}
            }
        }
        match ledger.accountant.charge(estimates) {
            Ok(()) => {
                if nonce != 0 {
                    ledger.nonces.record(nonce, digest, &self.cached_bytes);
                }
                self.charged_terms
                    // ord: monotonic stat counter, eventual totals suffice
                    .fetch_add(u64::from(estimates), Ordering::Relaxed);
                self.obs_charged_terms.add(u64::from(estimates));
                Ok(Charge::Evaluate)
            }
            Err(e) => {
                // ord: monotonic stat counter, eventual totals suffice
                self.denials.fetch_add(1, Ordering::Relaxed);
                self.obs_denials.inc();
                Err(e)
            }
        }
    }

    /// Caches the encoded response a fresh charge produced so replays
    /// of the same `(nonce, digest)` can be served verbatim.
    fn attach_response(&self, analyst: u64, nonce: u64, digest: u64, encoded: &Arc<[u8]>) {
        if nonce == 0 {
            return;
        }
        let mut ledgers = self.ledgers.lock();
        if let Some(ledger) = ledgers.get_mut(&analyst) {
            ledger
                .nonces
                .attach_response(nonce, digest, encoded, &self.cached_bytes);
        }
    }

    fn stats(&self) -> wire::BudgetStats {
        wire::BudgetStats {
            // ord: fuzzy stats snapshot; fields may tear across readers
            charged_terms: self.charged_terms.load(Ordering::Relaxed),
            // ord: fuzzy stats snapshot; fields may tear across readers
            replays: self.replays.load(Ordering::Relaxed),
            // ord: fuzzy stats snapshot; fields may tear across readers
            denials: self.denials.load(Ordering::Relaxed),
        }
    }
}

/// Lock-free per-request-kind counters (the `ServerStats` surface).
struct FrameCounters {
    /// Indexed by request kind byte − 1.
    kinds: [AtomicU64; wire::MAX_REQUEST_KIND as usize],
    /// Frames whose kind could not be trusted (decode failures).
    malformed: AtomicU64,
}

impl FrameCounters {
    fn new() -> Self {
        Self {
            kinds: std::array::from_fn(|_| AtomicU64::new(0)),
            malformed: AtomicU64::new(0),
        }
    }

    fn record(&self, kind: u8) {
        match self.kinds.get(kind.wrapping_sub(1) as usize) {
            // ord: monotonic stat counter; readers only need eventual totals
            Some(counter) if kind >= 1 => counter.fetch_add(1, Ordering::Relaxed),
            // ord: monotonic stat counter; readers only need eventual totals
            _ => self.malformed.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn record_malformed(&self) {
        // ord: monotonic stat counter, eventual totals suffice
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(
        &self,
        uptime: Duration,
        engine: &QueryEngine,
        budget: Option<&BudgetBook>,
    ) -> wire::ServerStats {
        let frames = self
            .kinds
            .iter()
            .enumerate()
            .filter_map(|(i, counter)| {
                // ord: fuzzy stats snapshot, exact counts not needed
                let count = counter.load(Ordering::Relaxed);
                (count > 0).then_some((i as u8 + 1, count))
            })
            .collect();
        let engine_stats = engine.stats();
        wire::ServerStats {
            uptime_secs: uptime.as_secs(),
            frames,
            // ord: fuzzy stats snapshot, exact counts not needed
            malformed: self.malformed.load(Ordering::Relaxed),
            plans: wire::PlanStats {
                plans_executed: engine_stats.plans_executed,
                terms_scanned: engine_stats.terms_scanned,
                terms_reused: engine_stats.terms_reused,
            },
            budget: budget.map(BudgetBook::stats).unwrap_or_default(),
        }
    }
}

/// Shared service state: the live pool plus the query engine and the
/// (optional) durability layer.
struct ServiceState {
    coordinator: Coordinator,
    engine: QueryEngine,
    /// Lock ordering the WAL append and the pool apply of each batch —
    /// a batch is acknowledged only after both. `None` (durability off)
    /// skips the lock entirely: `accept_batch` is internally
    /// synchronized, so concurrent batches then decode in parallel.
    wal: Option<Mutex<Wal>>,
    /// This node's shard identity (hello handshake).
    shard: Option<ShardIdentity>,
    /// Per-analyst ε accounting; `None` disables it.
    budget: Option<BudgetBook>,
    /// Server start time (uptime reporting).
    started: Instant,
    /// Per-frame-kind request counters.
    frames: FrameCounters,
    /// Cached per-kind request latency histograms (index = kind byte −
    /// 1; `None` for retired kind bytes). Registered once at startup so
    /// the hot path is a relaxed `fetch_add`, never a registry lock.
    obs_request_nanos: [Option<Arc<Histogram>>; wire::MAX_REQUEST_KIND as usize],
    /// Cached per-kind request counters, same indexing.
    obs_requests_total: [Option<Arc<Counter>>; wire::MAX_REQUEST_KIND as usize],
    /// Accept-thread-to-worker handoff wait.
    obs_queue_wait_nanos: Arc<Histogram>,
    /// Slow-request WARN threshold ([`ServerConfig::slow_query_ms`]).
    slow_query_ms: Option<u64>,
}

/// Per-connection protocol state, established by the hello handshake.
#[derive(Default)]
struct ConnState {
    /// The analyst this connection acts for; 0 (anonymous) until a
    /// [`Request::Hello`] declares otherwise.
    analyst: u64,
    /// Digest of the frame currently being served (binds its nonce to
    /// its exact body in the ε-ledger's replay window).
    request_digest: u64,
}

/// A running sketch-pool server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains in-flight requests and
/// joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<ServiceState>,
    /// The Prometheus scrape listener, when configured; its own Drop
    /// stops the accept loop.
    exposer: Option<MetricsExposer>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` and starts serving `announcement`'s pool.
    ///
    /// With a WAL configured, previously persisted state is recovered
    /// first: the snapshot is loaded, the log replayed (tolerating a
    /// torn final record), and the server resumes exactly where the
    /// last process stopped. A fresh store is initialized with the
    /// announcement (which becomes the store's identity: restarting
    /// with a different one is refused).
    ///
    /// # Errors
    ///
    /// Socket, WAL recovery, or announcement validation failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        announcement: Announcement,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let params = announcement.validate().map_err(ServeError::Params)?;
        let announcement_p = announcement.p;
        if let Some(eps) = config.analyst_budget {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(ServeError::InvalidBudget(eps));
            }
        }
        if let Some(identity) = config.shard {
            if identity.shard_id >= identity.shard_count {
                return Err(ServeError::InvalidShard(identity));
            }
        }
        let (wal, coordinator) = match &config.wal {
            Some(wal_config) => {
                let (mut wal, recovered) = Wal::open(wal_config)?;
                let coordinator = match recovered {
                    Some(c) => {
                        if c.announcement() != &announcement {
                            return Err(ServeError::AnnouncementMismatch);
                        }
                        c
                    }
                    None => {
                        wal.record_announcement(&announcement)?;
                        Coordinator::new(announcement)
                    }
                };
                (Some(wal), coordinator)
            }
            None => (None, Coordinator::new(announcement)),
        };
        let kind_label = |i: usize| wire::request_kind_name(u8::try_from(i).unwrap_or(0) + 1);
        let state = Arc::new(ServiceState {
            coordinator,
            engine: QueryEngine::new(params),
            wal: wal.map(Mutex::new),
            shard: config.shard,
            budget: config
                .analyst_budget
                .map(|epsilon| BudgetBook::new(epsilon, announcement_p)),
            started: Instant::now(),
            frames: FrameCounters::new(),
            obs_request_nanos: std::array::from_fn(|i| {
                kind_label(i)
                    .map(|name| obs::histogram("psketch_server_request_nanos", &[("kind", name)]))
            }),
            obs_requests_total: std::array::from_fn(|i| {
                kind_label(i)
                    .map(|name| obs::counter("psketch_server_requests_total", &[("kind", name)]))
            }),
            obs_queue_wait_nanos: obs::histogram("psketch_server_queue_wait_nanos", &[]),
            slow_query_ms: config.slow_query_ms,
        });

        let exposer = match &config.metrics_addr {
            Some(addr) => Some(MetricsExposer::start(addr)?),
            None => None,
        };

        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // Connections carry their enqueue instant so workers can report
        // how long accepted connections sat waiting for a free worker.
        let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || worker_loop(&rx, &state, &shutdown))
            })
            .collect();

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    // ord: pairs with the AcqRel swap in `shutdown_impl`;
                    // must observe writes that preceded the shutdown
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if tx.send((stream, Instant::now())).is_err() {
                        break;
                    }
                }
                // tx drops here: idle workers see a closed channel.
            })
        };

        if let Some(identity) = config.shard {
            obs::log::info("psketch::server")
                .field("addr", local_addr)
                .field("shard", identity)
                .emit("serving");
        } else {
            obs::log::info("psketch::server")
                .field("addr", local_addr)
                .emit("serving");
        }
        Ok(Self {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            state,
            exposer,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live pool's coordinator (for in-process inspection).
    #[must_use]
    pub fn coordinator(&self) -> &Coordinator {
        &self.state.coordinator
    }

    /// Stops accepting, lets in-flight requests finish, joins every
    /// thread. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        // ord: release publishes pre-shutdown writes to worker threads;
        // acquire makes the second caller see the first's cleanup
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(exposer) = self.exposer.take() {
            exposer.shutdown();
        }
        // Wake the accept thread: it blocks in accept(), so poke it with
        // a throwaway connection. An unspecified bind address (0.0.0.0,
        // ::) is not connectable everywhere — aim at loopback instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let woke = TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok();
        if let Some(t) = self.accept_thread.take() {
            if woke {
                let _ = t.join();
            }
            // If the wake connect failed, the accept thread may stay
            // parked in accept() until the process exits; detach it
            // rather than hanging shutdown. Workers still drain: they
            // poll the shutdown flag on their receive tick.
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<(TcpStream, Instant)>>,
    state: &ServiceState,
    shutdown: &AtomicBool,
) {
    loop {
        // Hold the receiver lock only for the poll itself, so workers
        // take turns pulling connections.
        let conn = rx.lock().recv_timeout(POLL_TICK);
        match conn {
            Ok((stream, enqueued)) => {
                state
                    .obs_queue_wait_nanos
                    .record_duration(enqueued.elapsed());
                let _ = serve_connection(stream, state, shutdown);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // ord: pairs with the AcqRel swap in `shutdown_impl`
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection until EOF, a fatal I/O error, or shutdown.
fn serve_connection(
    mut stream: TcpStream,
    state: &ServiceState,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    let mut conn = ConnState::default();
    loop {
        let Some(len) = read_len_prefix(&mut stream, shutdown)? else {
            return Ok(()); // peer hung up between frames, or shutdown
        };
        if len as usize > wire::MAX_FRAME_BYTES {
            // Unrecoverable: the stream position is ahead of a payload
            // we refuse to read, so answer and hang up.
            state.frames.record_malformed();
            let resp = Response::Error {
                code: codes::MALFORMED,
                message: format!("declared frame length {len} exceeds limit"),
            };
            let _ = wire::write_frame(&mut stream, &resp.encode());
            return Ok(());
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_patient(&mut stream, &mut payload, shutdown)?;
        let bytes: Arc<[u8]> = match handle_frame(state, &mut conn, &payload) {
            Served::Response(response) => response.encode().into(),
            Served::Raw(bytes) => bytes,
        };
        wire::write_frame(&mut stream, &bytes)?;
    }
}

/// Reads the 4-byte length prefix, waking every [`POLL_TICK`] to check
/// for shutdown. `Ok(None)` means clean EOF or shutdown — a peer that
/// stalled mid-prefix cannot wedge shutdown; its half-frame is dropped.
fn read_len_prefix(stream: &mut TcpStream, shutdown: &AtomicBool) -> io::Result<Option<u32>> {
    let mut buf = [0u8; 4];
    let mut filled = 0usize;
    loop {
        // ord: pairs with the AcqRel swap in `shutdown_impl`
        if shutdown.load(Ordering::Acquire) {
            return Ok(None);
        }
        let Some(rest) = buf.get_mut(filled..) else {
            return Err(io::Error::other("length-prefix cursor overran its buffer"));
        };
        match stream.read(rest) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "connection closed mid length prefix",
                    ))
                };
            }
            Ok(n) => {
                filled += n;
                if filled == 4 {
                    return Ok(Some(u32::from_le_bytes(buf)));
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// `read_exact` that tolerates the poll-tick read timeout mid-frame but
/// gives up on shutdown.
fn read_exact_patient(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut filled = 0usize;
    while let Some(rest) = buf.get_mut(filled..).filter(|tail| !tail.is_empty()) {
        match stream.read(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "connection closed mid frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // ord: pairs with the AcqRel swap in `shutdown_impl`
                if shutdown.load(Ordering::Acquire) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "server shutting down",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn query_error(e: &Error) -> Response {
    Response::Error {
        code: codes::QUERY,
        message: e.to_string(),
    }
}

/// What a frame handler hands back to the connection loop: a response
/// to encode, or pre-encoded bytes (the replay cache serves the charged
/// exchange's original encoding verbatim; shared so replays never copy
/// the body).
enum Served {
    Response(Response),
    Raw(Arc<[u8]>),
}

/// Outcome of the budget gate in front of a charging request.
enum Gate {
    /// Accounting off, or a fresh charge recorded: evaluate.
    Open,
    /// Byte-identical replay: serve the cached bytes, skip evaluation.
    Replay(Arc<[u8]>),
    /// Refuse before any scan (over budget, or a transient
    /// `RETRY_PENDING` while the nonce's original evaluation runs).
    Refuse(Response),
}

/// Runs the budget gate for a charging request. The `(nonce, payload
/// digest)` pair makes the charge idempotent across transport retries
/// of the identical request — replays are served from the response
/// cache, never re-evaluated.
fn charge_budget(state: &ServiceState, conn: &ConnState, estimates: u32, nonce: u64) -> Gate {
    let Some(book) = state.budget.as_ref() else {
        return Gate::Open;
    };
    match book.charge(conn.analyst, estimates, nonce, conn.request_digest) {
        Ok(Charge::Evaluate) => Gate::Open,
        Ok(Charge::Replay(bytes)) => Gate::Replay(bytes),
        Ok(Charge::Pending) => Gate::Refuse(Response::Error {
            code: codes::RETRY_PENDING,
            message: format!(
                "nonce {nonce}: the original request is still being evaluated; \
                 retry for its cached answer"
            ),
        }),
        Err(e) => Gate::Refuse(Response::Error {
            code: codes::BUDGET,
            message: format!("analyst {}: {e}", conn.analyst),
        }),
    }
}

/// Finishes a charged exchange: encodes the response once, caches the
/// encoding against the charge's `(nonce, digest)` so a replay can be
/// served verbatim, and hands the same bytes to the connection loop.
fn serve_charged(
    state: &ServiceState,
    conn: &ConnState,
    nonce: u64,
    response: &Response,
) -> Served {
    let encoded: Arc<[u8]> = response.encode().into();
    if nonce != 0 {
        if let Some(book) = state.budget.as_ref() {
            book.attach_response(conn.analyst, nonce, conn.request_digest, &encoded);
        }
    }
    Served::Raw(encoded)
}

/// Decodes and dispatches one frame. Never panics on client input; all
/// failures become error frames.
fn handle_frame(state: &ServiceState, conn: &mut ConnState, payload: &[u8]) -> Served {
    match wire::frame_version(payload) {
        Ok(v) if v != PROTOCOL_VERSION => {
            state.frames.record_malformed();
            return Served::Response(Response::Error {
                code: codes::UNSUPPORTED_VERSION,
                message: format!("server speaks protocol {PROTOCOL_VERSION}, frame declares {v}"),
            });
        }
        Err(e) => {
            state.frames.record_malformed();
            return Served::Response(Response::Error {
                code: codes::MALFORMED,
                message: e.to_string(),
            });
        }
        Ok(_) => {}
    }
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            state.frames.record_malformed();
            return Served::Response(Response::Error {
                code: codes::MALFORMED,
                message: e.to_string(),
            });
        }
    };
    // The kind byte is trusted only after a full decode succeeded.
    let kind = payload.get(1).copied().unwrap_or(0);
    state.frames.record(kind);
    // The replay digest is only needed for charging kinds, and only
    // when accounting is on — ingest frames (which can be megabytes)
    // never pay for a hash pass.
    conn.request_digest = match (&request, state.budget.as_ref()) {
        (
            Request::Conjunctive { .. }
            | Request::Distribution { .. }
            | Request::Plan { .. }
            | Request::PartialTermCounts { .. },
            Some(book),
        ) => book.digest(payload),
        _ => 0,
    };
    let trace = request_trace(&request);
    let started = Instant::now();
    let served = handle_request(state, conn, request);
    observe_request(state, conn, kind, trace, started.elapsed());
    served
}

/// The trace correlation id a request carries: its query nonce (`0`
/// means "no replay identity" and therefore no trace either).
fn request_trace(request: &Request) -> Option<u64> {
    match request {
        Request::Conjunctive { nonce, .. }
        | Request::Distribution { nonce, .. }
        | Request::Plan { nonce, .. }
        | Request::PartialTermCounts { nonce, .. } => (*nonce != 0).then_some(*nonce),
        _ => None,
    }
}

/// Records the request's latency metrics, its per-request DEBUG trace
/// record, and — past the configured threshold — the slow-query WARN.
fn observe_request(
    state: &ServiceState,
    conn: &ConnState,
    kind: u8,
    trace: Option<u64>,
    elapsed: Duration,
) {
    let slot = (kind as usize).saturating_sub(1);
    if let Some(Some(hist)) = state.obs_request_nanos.get(slot) {
        hist.record_duration(elapsed);
    }
    if let Some(Some(counter)) = state.obs_requests_total.get(slot) {
        counter.inc();
    }
    let kind_name = wire::request_kind_name(kind).unwrap_or("unknown");
    if obs::log::enabled(obs::log::Level::Debug, "psketch::server::request") {
        let mut event = obs::log::debug("psketch::server::request")
            .field("kind", kind_name)
            .field("analyst", conn.analyst)
            .field("elapsed_us", elapsed.as_micros());
        if let Some(trace) = trace {
            event = event.trace(trace);
        }
        event.emit("served");
    }
    if let Some(threshold_ms) = state.slow_query_ms {
        if elapsed.as_millis() >= u128::from(threshold_ms) {
            let mut event = obs::log::warn("psketch::server::slow_query")
                .field("kind", kind_name)
                .field("analyst", conn.analyst)
                .field("elapsed_us", elapsed.as_micros())
                .field("threshold_ms", threshold_ms);
            if let Some(trace) = trace {
                event = event.trace(trace);
            }
            event.emit("slow query");
        }
    }
}

/// Opens the shard-local span trace for a profiled charging request.
/// Called only after the budget gate opened — refused requests and
/// replays (served from cache, nothing re-executed) are never profiled.
/// Nonce `0` opts out: the ring is keyed by nonce, so a trace without
/// one could never be fetched back.
fn begin_trace(
    state: &ServiceState,
    profile: bool,
    nonce: u64,
    root: &'static str,
) -> Option<obs::Trace> {
    (profile && nonce != 0).then(|| {
        let trace = obs::Trace::begin(nonce, root);
        if let Some(identity) = state.shard {
            trace.root_attr("shard", u64::from(identity.shard_id));
        }
        trace
    })
}

/// Closes a profiled request's trace: stores the tree in the
/// recent-trace ring (the `Trace` frame and `/traces` surface) and
/// returns it for the in-band response attachment.
fn finish_trace(trace: Option<obs::Trace>, nonce: u64) -> Option<SpanNode> {
    trace.map(|t| {
        let tree = t.finish();
        obs::span::ring().store(nonce, tree.clone());
        tree
    })
}

#[allow(clippy::too_many_lines)]
fn handle_request(state: &ServiceState, conn: &mut ConnState, request: Request) -> Served {
    match request {
        Request::FetchAnnouncement => Served::Response(Response::Announcement(
            state.coordinator.announcement().clone(),
        )),
        Request::SubmitBatch(subs) => Served::Response(ingest(state, &subs)),
        Request::Conjunctive {
            subset,
            value,
            nonce,
            profile,
        } => {
            let query = match ConjunctiveQuery::new(subset, value) {
                Ok(q) => q,
                Err(e) => return Served::Response(query_error(&e)),
            };
            match charge_budget(state, conn, 1, nonce) {
                Gate::Open => {}
                Gate::Replay(bytes) => return Served::Raw(bytes),
                Gate::Refuse(refusal) => return Served::Response(refusal),
            }
            let trace = begin_trace(state, profile, nonce, "shard:conjunctive");
            let response = match state
                .engine
                .estimator()
                .estimate(state.coordinator.pool(), &query)
            {
                Ok(e) => Response::Estimate(EstimateWire::from(e), finish_trace(trace, nonce)),
                Err(e) => query_error(&e),
            };
            serve_charged(state, conn, nonce, &response)
        }
        Request::Distribution {
            subset,
            nonce,
            profile,
        } => {
            if subset.len() > MAX_DISTRIBUTION_WIDTH {
                return Served::Response(Response::Error {
                    code: codes::BAD_REQUEST,
                    message: format!(
                        "distribution width {} exceeds server cap {MAX_DISTRIBUTION_WIDTH}",
                        subset.len()
                    ),
                });
            }
            match charge_budget(state, conn, 1u32 << subset.len(), nonce) {
                Gate::Open => {}
                Gate::Replay(bytes) => return Served::Raw(bytes),
                Gate::Refuse(refusal) => return Served::Response(refusal),
            }
            let trace = begin_trace(state, profile, nonce, "shard:distribution");
            let response = match state
                .engine
                .estimator()
                .estimate_distribution(state.coordinator.pool(), &subset)
            {
                Ok(es) => Response::Distribution(
                    es.into_iter().map(EstimateWire::from).collect(),
                    finish_trace(trace, nonce),
                ),
                Err(e) => query_error(&e),
            };
            serve_charged(state, conn, nonce, &response)
        }
        Request::Plan {
            plan,
            nonce,
            profile,
        } => {
            if let Some(refusal) = check_plan_size(plan.cost()) {
                return Served::Response(refusal);
            }
            // The ε charge is the plan's *term count* — exactly the
            // conjunctive estimates computed (Corollary 3.4), whatever
            // the plan's output shape. Compile-time deduplication means
            // compound queries are never over-charged for repeated
            // terms, and multi-output plans never under-charge by
            // hiding work behind a single frame.
            let charge = u32::try_from(plan.cost()).unwrap_or(u32::MAX);
            match charge_budget(state, conn, charge, nonce) {
                Gate::Open => {}
                Gate::Replay(bytes) => return Served::Raw(bytes),
                Gate::Refuse(refusal) => return Served::Response(refusal),
            }
            let trace = begin_trace(state, profile, nonce, "shard:plan");
            let response = match state.engine.execute_plan(state.coordinator.pool(), &plan) {
                Ok(answers) => Response::PlanAnswers(
                    answers
                        .into_iter()
                        .map(wire::PlanAnswerWire::from)
                        .collect(),
                    finish_trace(trace, nonce),
                ),
                Err(e) => query_error(&e),
            };
            serve_charged(state, conn, nonce, &response)
        }
        Request::Stats => Served::Response(Response::Stats(state.coordinator.stats())),
        Request::Ping => Served::Response(Response::Pong),
        Request::Hello { analyst } => {
            conn.analyst = analyst;
            Served::Response(Response::Hello { shard: state.shard })
        }
        Request::PartialTermCounts {
            terms,
            nonce,
            profile,
        } => {
            if let Some(refusal) = check_plan_size(terms.len()) {
                return Served::Response(refusal);
            }
            let charge = u32::try_from(terms.len()).unwrap_or(u32::MAX);
            match charge_budget(state, conn, charge, nonce) {
                Gate::Open => {}
                Gate::Replay(bytes) => return Served::Raw(bytes),
                Gate::Refuse(refusal) => return Served::Response(refusal),
            }
            let trace = begin_trace(state, profile, nonce, "shard:partial_counts");
            if let Some(t) = trace.as_ref() {
                t.root_attr("term_count", terms.len() as u64);
            }
            // Shard semantics: a subset this node holds no records for
            // is an empty share `(0, 0)` that merges as a no-op, not an
            // error that fails the whole scatter.
            let counts = state
                .engine
                .count_terms_partial(state.coordinator.pool(), &terms);
            let response = Response::PartialTermCounts(
                counts
                    .into_iter()
                    .map(|(ones, population)| QueryCounts { ones, population })
                    .collect(),
                finish_trace(trace, nonce),
            );
            serve_charged(state, conn, nonce, &response)
        }
        Request::ServerStats => Served::Response(Response::ServerStats(state.frames.snapshot(
            state.started.elapsed(),
            &state.engine,
            state.budget.as_ref(),
        ))),
        Request::Metrics => Served::Response(Response::Metrics(obs::snapshot())),
        // Profiles are operational metadata, not query answers: fetching
        // one is uncharged (the release it describes was paid for when
        // the profiled query ran).
        Request::Trace { nonce } => {
            Served::Response(Response::Trace(obs::span::ring().fetch(nonce)))
        }
    }
}

/// Refuses oversized plans/term batches before any scan or charge.
fn check_plan_size(terms: usize) -> Option<Response> {
    (terms > wire::MAX_PLAN_TERMS).then(|| Response::Error {
        code: codes::BAD_REQUEST,
        message: format!(
            "plan holds {terms} terms, server cap is {}",
            wire::MAX_PLAN_TERMS
        ),
    })
}

/// Ingests one batch: WAL append + fsync first, then the pool apply,
/// then (still under the lock, so replay order matches apply order) a
/// compaction check. Only after all of that is the client acked. With
/// durability off there is no lock at all — batches from concurrent
/// clients decode and land in parallel.
// The WAL lock is *deliberately* held across append/fsync/compact:
// replay order must match apply order, and that serialization is
// exactly what the lock provides. lint: allow(lock_across_io)
fn ingest(state: &ServiceState, subs: &[psketch_protocol::Submission]) -> Response {
    let outcome = match &state.wal {
        None => {
            let _span = obs::span::enter("pool:apply");
            state.coordinator.accept_batch(subs.iter())
        }
        Some(wal_mutex) => {
            let mut wal = wal_mutex.lock();
            {
                let span = obs::span::enter("wal:commit");
                span.attr("batch", subs.len() as u64);
                if let Err(e) = wal.record_batch(subs) {
                    return Response::Error {
                        code: codes::INTERNAL,
                        message: format!("write-ahead log append failed: {e}"),
                    };
                }
            }
            let outcome = {
                let _span = obs::span::enter("pool:apply");
                state.coordinator.accept_batch(subs.iter())
            };
            if wal.should_compact() {
                if let Err(e) = wal.compact(&state.coordinator) {
                    // The log still holds everything; compaction failure
                    // is not a durability loss, so the batch is still
                    // acked.
                    obs::log::error("psketch::server::wal")
                        .field("error", e)
                        .emit("wal compaction failed (will retry)");
                }
            }
            outcome
        }
    };
    Response::SubmitAck {
        accepted: outcome.accepted as u64,
        rejected: outcome.rejected as u64,
    }
}
