//! The threaded TCP sketch-pool server.
//!
//! Architecture: one accept thread hands connections to a **fixed pool
//! of worker threads** over a channel; each worker owns one connection
//! at a time and serves its frames until the peer hangs up. Ingestion
//! routes through [`Coordinator::accept_batch`] behind the WAL lock
//! (append → fsync → apply → ack), while queries run off
//! [`psketch_core::SketchDb`] `Arc` snapshots — readers never block
//! writers and a long analyst scan never stalls ingestion.
//!
//! Shutdown is graceful: in-flight requests complete, idle workers exit
//! at their next poll tick, and the accept thread is woken with a
//! loopback connection so nothing blocks forever.

use crate::wal::{Wal, WalConfig, WalError};
use crate::wire::{self, codes, EstimateWire, Request, Response, PROTOCOL_VERSION};
use parking_lot::Mutex;
use psketch_core::{ConjunctiveQuery, Error};
use psketch_protocol::{Announcement, Coordinator};
use psketch_queries::{LinearQuery, QueryEngine};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Distribution queries wider than this are refused: the response holds
/// `2^k` estimates and must fit comfortably in one frame.
const MAX_DISTRIBUTION_WIDTH: usize = 16;

/// How often an idle worker wakes up to check for shutdown.
const POLL_TICK: Duration = Duration::from_millis(200);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Durability: `Some` opens (or recovers) a WAL-backed store.
    pub wal: Option<WalConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            wal: None,
        }
    }
}

/// Errors from starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup failure.
    Io(io::Error),
    /// Durability layer failure.
    Wal(WalError),
    /// The announcement failed parameter validation.
    Params(Error),
    /// The WAL store was created under a different announcement than
    /// the one passed in (refusing to mix pools).
    AnnouncementMismatch,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "server i/o error: {e}"),
            Self::Wal(e) => write!(f, "{e}"),
            Self::Params(e) => write!(f, "invalid announcement: {e}"),
            Self::AnnouncementMismatch => write!(
                f,
                "store was initialized with a different announcement; \
                 refusing to mix sketch pools"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

/// Shared service state: the live pool plus the query engine and the
/// (optional) durability layer.
struct ServiceState {
    coordinator: Coordinator,
    engine: QueryEngine,
    /// Lock ordering the WAL append and the pool apply of each batch —
    /// a batch is acknowledged only after both. `None` (durability off)
    /// skips the lock entirely: `accept_batch` is internally
    /// synchronized, so concurrent batches then decode in parallel.
    wal: Option<Mutex<Wal>>,
}

/// A running sketch-pool server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains in-flight requests and
/// joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<ServiceState>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` and starts serving `announcement`'s pool.
    ///
    /// With a WAL configured, previously persisted state is recovered
    /// first: the snapshot is loaded, the log replayed (tolerating a
    /// torn final record), and the server resumes exactly where the
    /// last process stopped. A fresh store is initialized with the
    /// announcement (which becomes the store's identity: restarting
    /// with a different one is refused).
    ///
    /// # Errors
    ///
    /// Socket, WAL recovery, or announcement validation failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        announcement: Announcement,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let params = announcement.validate().map_err(ServeError::Params)?;
        let (wal, coordinator) = match &config.wal {
            Some(wal_config) => {
                let (mut wal, recovered) = Wal::open(wal_config)?;
                let coordinator = match recovered {
                    Some(c) => {
                        if c.announcement() != &announcement {
                            return Err(ServeError::AnnouncementMismatch);
                        }
                        c
                    }
                    None => {
                        wal.record_announcement(&announcement)?;
                        Coordinator::new(announcement)
                    }
                };
                (Some(wal), coordinator)
            }
            None => (None, Coordinator::new(announcement)),
        };
        let state = Arc::new(ServiceState {
            coordinator,
            engine: QueryEngine::new(params),
            wal: wal.map(Mutex::new),
        });

        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || worker_loop(&rx, &state, &shutdown))
            })
            .collect();

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // tx drops here: idle workers see a closed channel.
            })
        };

        Ok(Self {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            state,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live pool's coordinator (for in-process inspection).
    #[must_use]
    pub fn coordinator(&self) -> &Coordinator {
        &self.state.coordinator
    }

    /// Stops accepting, lets in-flight requests finish, joins every
    /// thread. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept thread: it blocks in accept(), so poke it with
        // a throwaway connection. An unspecified bind address (0.0.0.0,
        // ::) is not connectable everywhere — aim at loopback instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let woke = TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok();
        if let Some(t) = self.accept_thread.take() {
            if woke {
                let _ = t.join();
            }
            // If the wake connect failed, the accept thread may stay
            // parked in accept() until the process exits; detach it
            // rather than hanging shutdown. Workers still drain: they
            // poll the shutdown flag on their receive tick.
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<TcpStream>>, state: &ServiceState, shutdown: &AtomicBool) {
    loop {
        // Hold the receiver lock only for the poll itself, so workers
        // take turns pulling connections.
        let conn = rx.lock().recv_timeout(POLL_TICK);
        match conn {
            Ok(stream) => {
                let _ = serve_connection(stream, state, shutdown);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection until EOF, a fatal I/O error, or shutdown.
fn serve_connection(
    mut stream: TcpStream,
    state: &ServiceState,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    loop {
        let Some(len) = read_len_prefix(&mut stream, shutdown)? else {
            return Ok(()); // peer hung up between frames, or shutdown
        };
        if len as usize > wire::MAX_FRAME_BYTES {
            // Unrecoverable: the stream position is ahead of a payload
            // we refuse to read, so answer and hang up.
            let resp = Response::Error {
                code: codes::MALFORMED,
                message: format!("declared frame length {len} exceeds limit"),
            };
            let _ = wire::write_frame(&mut stream, &resp.encode());
            return Ok(());
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_patient(&mut stream, &mut payload, shutdown)?;
        let response = handle_frame(state, &payload);
        wire::write_frame(&mut stream, &response.encode())?;
    }
}

/// Reads the 4-byte length prefix, waking every [`POLL_TICK`] to check
/// for shutdown. `Ok(None)` means clean EOF or shutdown — a peer that
/// stalled mid-prefix cannot wedge shutdown; its half-frame is dropped.
fn read_len_prefix(stream: &mut TcpStream, shutdown: &AtomicBool) -> io::Result<Option<u32>> {
    let mut buf = [0u8; 4];
    let mut filled = 0usize;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(None);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "connection closed mid length prefix",
                    ))
                };
            }
            Ok(n) => {
                filled += n;
                if filled == 4 {
                    return Ok(Some(u32::from_le_bytes(buf)));
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// `read_exact` that tolerates the poll-tick read timeout mid-frame but
/// gives up on shutdown.
fn read_exact_patient(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "connection closed mid frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "server shutting down",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn query_error(e: &Error) -> Response {
    Response::Error {
        code: codes::QUERY,
        message: e.to_string(),
    }
}

/// Decodes and dispatches one frame. Never panics on client input; all
/// failures become error frames.
fn handle_frame(state: &ServiceState, payload: &[u8]) -> Response {
    match wire::frame_version(payload) {
        Ok(v) if v != PROTOCOL_VERSION => {
            return Response::Error {
                code: codes::UNSUPPORTED_VERSION,
                message: format!("server speaks protocol {PROTOCOL_VERSION}, frame declares {v}"),
            };
        }
        Err(e) => {
            return Response::Error {
                code: codes::MALFORMED,
                message: e.to_string(),
            };
        }
        Ok(_) => {}
    }
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            return Response::Error {
                code: codes::MALFORMED,
                message: e.to_string(),
            };
        }
    };
    handle_request(state, request)
}

fn handle_request(state: &ServiceState, request: Request) -> Response {
    match request {
        Request::FetchAnnouncement => {
            Response::Announcement(state.coordinator.announcement().clone())
        }
        Request::SubmitBatch(subs) => ingest(state, &subs),
        Request::Conjunctive { subset, value } => {
            let query = match ConjunctiveQuery::new(subset, value) {
                Ok(q) => q,
                Err(e) => return query_error(&e),
            };
            match state
                .engine
                .estimator()
                .estimate(state.coordinator.pool(), &query)
            {
                Ok(e) => Response::Estimate(EstimateWire::from(e)),
                Err(e) => query_error(&e),
            }
        }
        Request::Distribution { subset } => {
            if subset.len() > MAX_DISTRIBUTION_WIDTH {
                return Response::Error {
                    code: codes::BAD_REQUEST,
                    message: format!(
                        "distribution width {} exceeds server cap {MAX_DISTRIBUTION_WIDTH}",
                        subset.len()
                    ),
                };
            }
            match state
                .engine
                .estimator()
                .estimate_distribution(state.coordinator.pool(), &subset)
            {
                Ok(es) => Response::Distribution(es.into_iter().map(EstimateWire::from).collect()),
                Err(e) => query_error(&e),
            }
        }
        Request::Linear { constant, terms } => {
            let mut lq = LinearQuery::new("wire linear query");
            lq.constant = constant;
            for term in terms {
                let query = match ConjunctiveQuery::new(term.subset, term.value) {
                    Ok(q) => q,
                    Err(e) => return query_error(&e),
                };
                lq.push(term.coeff, query);
            }
            match state.engine.linear(state.coordinator.pool(), &lq) {
                Ok(a) => Response::Linear {
                    value: a.value,
                    queries_used: a.queries_used as u64,
                    min_sample_size: a.min_sample_size as u64,
                },
                Err(e) => query_error(&e),
            }
        }
        Request::Stats => Response::Stats(state.coordinator.stats()),
        Request::Ping => Response::Pong,
    }
}

/// Ingests one batch: WAL append + fsync first, then the pool apply,
/// then (still under the lock, so replay order matches apply order) a
/// compaction check. Only after all of that is the client acked. With
/// durability off there is no lock at all — batches from concurrent
/// clients decode and land in parallel.
fn ingest(state: &ServiceState, subs: &[psketch_protocol::Submission]) -> Response {
    let outcome = match &state.wal {
        None => state.coordinator.accept_batch(subs.iter()),
        Some(wal_mutex) => {
            let mut wal = wal_mutex.lock();
            if let Err(e) = wal.record_batch(subs) {
                return Response::Error {
                    code: codes::INTERNAL,
                    message: format!("write-ahead log append failed: {e}"),
                };
            }
            let outcome = state.coordinator.accept_batch(subs.iter());
            if wal.should_compact() {
                if let Err(e) = wal.compact(&state.coordinator) {
                    // The log still holds everything; compaction failure
                    // is not a durability loss, so the batch is still
                    // acked.
                    eprintln!("wal compaction failed (will retry): {e}");
                }
            }
            outcome
        }
    };
    Response::SubmitAck {
        accepted: outcome.accepted as u64,
        rejected: outcome.rejected as u64,
    }
}
