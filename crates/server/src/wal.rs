//! Write-ahead log and snapshot store: crash-safe sketch-pool state.
//!
//! The pool is rebuilt from two files in the store directory:
//!
//! * `wal.log` — an append-only sequence of CRC-framed records, fsync'd
//!   before a batch is acknowledged. Record layout:
//!
//!   ```text
//!   u32 LE payload length ‖ u32 LE CRC-32 (IEEE, over payload) ‖ payload
//!   payload: u8 tag ‖ body
//!       tag 1 = announcement (body: wire announcement encoding)
//!       tag 2 = submission batch (body: wire submission-list encoding)
//!   ```
//!
//! * `snapshot.bin` — the compacted state: announcement, counters, the
//!   accepted-user set, and every shard's columns with the sketch-key
//!   column bit-packed through [`psketch_core::codec`] (each key costs
//!   `sketch_bits` bits on disk, same as on the wire).
//!
//! Replay loads the snapshot (if any), then applies log records through
//! [`Coordinator::accept_batch`] — the same code path live ingestion
//! takes, so a replayed pool is *identical* to the pre-crash pool. A
//! torn final record (the crash happened mid-append) is tolerated: the
//! log is truncated back to the last fully committed record. Anything
//! bad *before* that is real corruption and refuses to load.
//!
//! Compaction: once the log exceeds the configured threshold the whole
//! state is written to `snapshot.tmp`, fsync'd, renamed over
//! `snapshot.bin`, and the log is truncated. If the process dies between
//! the rename and the truncation, replaying the stale log records is
//! harmless — the restored user set rejects every one of them as a
//! duplicate (the duplicate counter inflates; the pool does not).

use crate::wire;
use psketch_core::codec::{decode_bundle, encode_bundle};
use psketch_core::{BitSubset, Sketch, SketchDb, UserId};
use psketch_obs::{self as obs};
use psketch_protocol::{Announcement, Coordinator, CoordinatorStats, Submission};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

const TAG_ANNOUNCEMENT: u8 = 1;
const TAG_BATCH: u8 = 2;

/// Magic prefix of `snapshot.bin`.
const SNAPSHOT_MAGIC: &[u8; 8] = b"PSKSNAP1";

/// Hard ceiling on one WAL record payload (matches the wire frame limit;
/// a batch that fits in a frame fits in a record).
const MAX_RECORD_BYTES: usize = wire::MAX_FRAME_BYTES;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(io::Error),
    /// Store contents invalid beyond the tolerated torn tail.
    Corrupt(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o error: {e}"),
            Self::Corrupt(reason) => write!(f, "wal corrupt: {reason}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

fn corrupt(reason: impl Into<String>) -> WalError {
    WalError::Corrupt(reason.into())
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, table-driven, built at compile time).
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------

/// Configuration of the durability layer.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding `wal.log` and `snapshot.bin` (created if absent).
    pub dir: PathBuf,
    /// Compact once the log exceeds this many bytes.
    pub compact_threshold_bytes: u64,
}

impl WalConfig {
    /// A config with the default 64 MiB compaction threshold.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            compact_threshold_bytes: 64 << 20,
        }
    }
}

/// The open write-ahead log (plus its snapshot sibling).
#[derive(Debug)]
pub struct Wal {
    log: File,
    log_path: PathBuf,
    snap_path: PathBuf,
    tmp_path: PathBuf,
    dir: PathBuf,
    log_bytes: u64,
    compact_threshold: u64,
    /// Set when a failed append could not be rolled back: the file may
    /// end in partial record bytes, so appending after them would bury
    /// durably-acked records behind garbage that replay refuses. A
    /// poisoned log rejects every further append.
    poisoned: bool,
}

impl Wal {
    /// Opens the store in `config.dir` (creating the directory if
    /// needed) and replays any persisted state.
    ///
    /// Returns the open log and the recovered coordinator, or `None`
    /// when the store is fresh (no snapshot, no announcement record).
    ///
    /// # Errors
    ///
    /// I/O failures, or [`WalError::Corrupt`] for damage beyond a torn
    /// final log record.
    pub fn open(config: &WalConfig) -> Result<(Self, Option<Coordinator>), WalError> {
        std::fs::create_dir_all(&config.dir)?;
        let log_path = config.dir.join("wal.log");
        let snap_path = config.dir.join("snapshot.bin");
        let tmp_path = config.dir.join("snapshot.tmp");
        // A leftover snapshot.tmp is an aborted compaction; the real
        // snapshot (if any) is intact, so just discard the partial file.
        let _ = std::fs::remove_file(&tmp_path);

        let mut coordinator = match std::fs::read(&snap_path) {
            Ok(bytes) => Some(decode_snapshot(&bytes)?),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        let mut log = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&log_path)?;
        let replay_started = Instant::now();
        let committed = replay_log(&mut log, &mut coordinator)?;
        obs::histogram("psketch_wal_replay_nanos", &[]).record_duration(replay_started.elapsed());
        obs::counter("psketch_wal_replay_bytes_total", &[]).add(committed);
        obs::log::info("psketch::wal")
            .field("log_bytes", committed)
            .field("elapsed_us", replay_started.elapsed().as_micros())
            .emit("replayed");
        // Drop a torn tail so the next append starts at a record
        // boundary.
        let len = log.metadata()?.len();
        if committed < len {
            log.set_len(committed)?;
            log.sync_data()?;
        }
        log.seek(SeekFrom::End(0))?;

        let wal = Self {
            log,
            log_path,
            snap_path,
            tmp_path,
            dir: config.dir.clone(),
            log_bytes: committed,
            compact_threshold: config.compact_threshold_bytes,
            poisoned: false,
        };
        Ok((wal, coordinator))
    }

    /// Bytes of committed log (diagnostics, compaction trigger).
    #[must_use]
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Whether the log has outgrown the compaction threshold.
    #[must_use]
    pub fn should_compact(&self) -> bool {
        self.log_bytes > self.compact_threshold
    }

    /// Appends and fsyncs the announcement record (once, when a fresh
    /// store is initialized).
    ///
    /// # Errors
    ///
    /// I/O failures; the record is not committed unless this returns
    /// `Ok`.
    pub fn record_announcement(&mut self, ann: &Announcement) -> Result<(), WalError> {
        let mut payload = vec![TAG_ANNOUNCEMENT];
        wire::put_announcement(&mut payload, ann);
        self.append(&payload)
    }

    /// Appends and fsyncs one submission batch. Call *before* applying
    /// the batch to the live pool and *before* acknowledging the client:
    /// once this returns, the batch survives a crash.
    ///
    /// # Errors
    ///
    /// I/O failures; the record is not committed unless this returns
    /// `Ok`.
    pub fn record_batch(&mut self, subs: &[Submission]) -> Result<(), WalError> {
        let mut payload = vec![TAG_BATCH];
        wire::put_submissions(&mut payload, subs);
        self.append(&payload)
    }

    fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(corrupt(
                "log poisoned by an earlier unrecoverable append failure",
            ));
        }
        if payload.len() > MAX_RECORD_BYTES {
            return Err(corrupt(format!(
                "record payload {} exceeds {MAX_RECORD_BYTES} bytes",
                payload.len()
            )));
        }
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        let started = Instant::now();
        let wrote = self.log.write_all(&framed);
        let write_elapsed = started.elapsed();
        let wrote = wrote.and_then(|()| self.log.sync_data());
        obs::histogram("psketch_wal_append_nanos", &[]).record_duration(started.elapsed());
        obs::histogram("psketch_wal_fsync_nanos", &[])
            .record_duration(started.elapsed().saturating_sub(write_elapsed));
        obs::histogram("psketch_wal_record_bytes", &[]).record(framed.len() as u64);
        if let Err(e) = wrote {
            // A failed write (ENOSPC, I/O error) may have landed some of
            // the record's bytes; roll the file back to the last record
            // boundary so a later successful append is still replayable.
            if self
                .log
                .set_len(self.log_bytes)
                .and_then(|()| self.log.sync_data())
                .is_err()
            {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.log_bytes += framed.len() as u64;
        Ok(())
    }

    /// Writes the full current state as a snapshot and truncates the
    /// log. Crash-safe: the new snapshot lands via `rename`, and the log
    /// is only truncated after the snapshot (and the directory entry)
    /// are durable.
    ///
    /// # Errors
    ///
    /// I/O failures. On error the store remains recoverable: either the
    /// old snapshot + full log, or the new snapshot + (possibly stale)
    /// log, both replay to the same pool.
    pub fn compact(&mut self, coordinator: &Coordinator) -> Result<(), WalError> {
        let started = Instant::now();
        let log_before = self.log_bytes;
        let bytes = encode_snapshot(coordinator)?;
        let mut tmp = File::create(&self.tmp_path)?;
        tmp.write_all(&bytes)?;
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&self.tmp_path, &self.snap_path)?;
        sync_dir(&self.dir)?;
        // Re-open rather than set_len(0) on the append handle: append
        // mode positions every write at EOF anyway, but a fresh handle
        // keeps the offset bookkeeping obvious.
        self.log = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(true)
            .open(&self.log_path)?;
        self.log.sync_data()?;
        self.log_bytes = 0;
        obs::histogram("psketch_wal_compact_nanos", &[]).record_duration(started.elapsed());
        obs::counter("psketch_wal_compactions_total", &[]).inc();
        obs::log::info("psketch::wal")
            .field("log_bytes_before", log_before)
            .field("snapshot_bytes", bytes.len())
            .field("elapsed_us", started.elapsed().as_micros())
            .emit("compacted");
        Ok(())
    }
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync is how a rename becomes durable on Linux; other
    // platforms may refuse to open a directory — best effort there.
    match File::open(dir) {
        Ok(d) => d.sync_all().or(Ok(())),
        Err(_) => Ok(()),
    }
}

/// Replays committed log records into `coordinator`, creating it from
/// an announcement record when the snapshot did not provide one.
/// Returns the byte offset of the end of the last fully committed
/// record.
///
/// A record that fails its length or CRC check is only a *torn tail*
/// if nothing after it looks like a committed record; if an intact
/// record follows the damage, this is mid-log corruption, and replay
/// refuses rather than silently truncating away committed batches.
fn replay_log(log: &mut File, coordinator: &mut Option<Coordinator>) -> Result<u64, WalError> {
    let mut data = Vec::new();
    log.seek(SeekFrom::Start(0))?;
    log.read_to_end(&mut data)?;
    let mut offset = 0usize;
    loop {
        let rest = &data[offset..];
        if rest.len() < 8 {
            break; // clean EOF or torn header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        // len == 0 is never written (payloads always carry a tag byte),
        // so it means a zero-filled torn region, not a record.
        let committed = len > 0
            && len <= MAX_RECORD_BYTES
            && rest
                .get(8..8 + len)
                .is_some_and(|payload| crc32(payload) == crc);
        if !committed {
            if contains_committed_record(&rest[1..]) {
                return Err(corrupt(format!(
                    "damaged record at byte {offset} is followed by intact records; \
                     refusing to truncate committed data (inspect or restore the log)"
                )));
            }
            break; // genuine torn tail: nothing valid follows
        }
        apply_record(&rest[8..8 + len], coordinator)?;
        offset += 8 + len;
    }
    Ok(offset as u64)
}

/// Whether some byte offset in `data` starts a chain of CRC-valid
/// records that runs exactly to EOF — the signature of intact committed
/// records stranded behind damage.
///
/// Requiring the chain to reach EOF (not just one valid-looking record
/// anywhere) keeps record *images embedded inside record payloads* —
/// submission bundles are attacker-controlled bytes — from masquerading
/// as committed records when they end up inside a torn tail: garbage
/// follows the embedded image, so its chain never reaches EOF. Only
/// runs on the already-damaged path, so the quadratic worst case on
/// pathological garbage is acceptable; a genuine torn tail is at most
/// one partial record and scans quickly.
fn contains_committed_record(data: &[u8]) -> bool {
    (0..data.len().saturating_sub(8)).any(|start| record_chain_reaches_eof(&data[start..]))
}

fn record_chain_reaches_eof(mut rest: &[u8]) -> bool {
    let mut records = 0usize;
    loop {
        if rest.is_empty() {
            return records > 0;
        }
        if rest.len() < 8 {
            return false;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_RECORD_BYTES {
            return false;
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let Some(payload) = rest.get(8..8 + len) else {
            return false;
        };
        if crc32(payload) != crc {
            return false;
        }
        records += 1;
        rest = &rest[8 + len..];
    }
}

fn apply_record(payload: &[u8], coordinator: &mut Option<Coordinator>) -> Result<(), WalError> {
    let (tag, body) = payload
        .split_first()
        .ok_or_else(|| corrupt("empty record payload"))?;
    match *tag {
        TAG_ANNOUNCEMENT => {
            let ann = wire::decode_announcement(body)
                .map_err(|e| corrupt(format!("bad announcement record: {e}")))?;
            match coordinator {
                None => *coordinator = Some(Coordinator::new(ann)),
                // A matching announcement record under a restored
                // snapshot is the stale log of a compaction that
                // crashed between the snapshot rename and the log
                // truncate — replaying it is a no-op, exactly like the
                // stale batch records that follow it.
                Some(c) if c.announcement() == &ann => {}
                Some(_) => {
                    return Err(corrupt("log announcement disagrees with the snapshot's"));
                }
            }
        }
        TAG_BATCH => {
            let subs = wire::decode_submissions(body)
                .map_err(|e| corrupt(format!("bad batch record: {e}")))?;
            let Some(c) = coordinator.as_ref() else {
                return Err(corrupt("batch record before any announcement"));
            };
            c.accept_batch(&subs);
        }
        other => return Err(corrupt(format!("unknown record tag {other}"))),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Snapshot encoding.
// ---------------------------------------------------------------------

fn encode_snapshot(coordinator: &Coordinator) -> Result<Vec<u8>, WalError> {
    let ann = coordinator.announcement();
    let stats = coordinator.stats();
    let mut payload = vec![1u8]; // snapshot format version
    wire::put_announcement(&mut payload, ann);
    for v in [
        stats.accepted,
        stats.duplicates,
        stats.malformed,
        stats.records,
    ] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let mut seen = coordinator.seen_users();
    seen.sort_unstable();
    payload.extend_from_slice(&(seen.len() as u64).to_le_bytes());
    for user in &seen {
        payload.extend_from_slice(&user.0.to_le_bytes());
    }
    let mut subsets = coordinator.pool().subsets();
    subsets.sort();
    payload.extend_from_slice(&(u32::try_from(subsets.len()).unwrap()).to_le_bytes());
    for subset in subsets {
        let snap = coordinator
            .pool()
            .snapshot(&subset)
            .map_err(|e| corrupt(format!("pool snapshot failed: {e}")))?;
        let mut sub_buf = Vec::new();
        wire::put_announcement_subset(&mut sub_buf, &subset);
        payload.extend_from_slice(&sub_buf);
        payload.extend_from_slice(&(snap.len() as u64).to_le_bytes());
        for &id in snap.ids() {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        let sketches: Vec<Sketch> = snap.keys().iter().map(|&key| Sketch { key }).collect();
        let bundle = encode_bundle(ann.sketch_bits, &sketches);
        payload.extend_from_slice(&(u32::try_from(bundle.len()).unwrap()).to_le_bytes());
        payload.extend_from_slice(&bundle);
    }

    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

fn decode_snapshot(bytes: &[u8]) -> Result<Coordinator, WalError> {
    let rest = bytes
        .strip_prefix(SNAPSHOT_MAGIC.as_slice())
        .ok_or_else(|| corrupt("snapshot magic mismatch"))?;
    if rest.len() < 8 {
        return Err(corrupt("snapshot header truncated"));
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let payload = rest
        .get(8..8 + len)
        .ok_or_else(|| corrupt("snapshot payload truncated"))?;
    if rest.len() != 8 + len {
        return Err(corrupt("trailing bytes after snapshot"));
    }
    if crc32(payload) != crc {
        return Err(corrupt("snapshot CRC mismatch"));
    }

    let mut r = SnapReader { data: payload };
    let version = r.u8()?;
    if version != 1 {
        return Err(corrupt(format!("unknown snapshot version {version}")));
    }
    let ann = r.announcement()?;
    let stats = CoordinatorStats {
        accepted: r.u64()?,
        duplicates: r.u64()?,
        malformed: r.u64()?,
        records: r.u64()?,
    };
    let n_seen = r.u64()? as usize;
    let mut seen = Vec::with_capacity(n_seen.min(1 << 20));
    for _ in 0..n_seen {
        seen.push(UserId(r.u64()?));
    }
    let n_shards = r.u32()? as usize;
    let mut shards: Vec<(BitSubset, Vec<u64>, Vec<u64>)> = Vec::with_capacity(n_shards.min(1024));
    for _ in 0..n_shards {
        let subset = r.subset()?;
        let n = r.u64()? as usize;
        if n.saturating_mul(8) > r.data.len() {
            return Err(corrupt("shard id column truncated"));
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(r.u64()?);
        }
        let bundle_len = r.u32()? as usize;
        let bundle = r.take(bundle_len)?;
        let (bits, sketches) =
            decode_bundle(bundle).map_err(|e| corrupt(format!("shard bundle: {e}")))?;
        if bits != ann.sketch_bits {
            return Err(corrupt(format!(
                "shard bundle uses {bits}-bit sketches, announcement says {}",
                ann.sketch_bits
            )));
        }
        if sketches.len() != ids.len() {
            return Err(corrupt("shard columns misaligned"));
        }
        let keys: Vec<u64> = sketches.into_iter().map(|s| s.key).collect();
        shards.push((subset, ids, keys));
    }
    if !r.data.is_empty() {
        return Err(corrupt("trailing bytes inside snapshot payload"));
    }
    let db = SketchDb::from_columns(shards);
    Ok(Coordinator::restore(ann, seen, db, stats))
}

/// Minimal reader for the snapshot payload (the wire module's decoder
/// is frame-oriented; this one is offset-oriented).
struct SnapReader<'a> {
    data: &'a [u8],
}

impl<'a> SnapReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.data.len() < n {
            return Err(corrupt("snapshot truncated"));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn announcement(&mut self) -> Result<Announcement, WalError> {
        // Announcements are length-delimited nowhere in the snapshot, so
        // decode in place by borrowing the wire decoder on the remaining
        // bytes and advancing by what it consumed.
        let before = self.data.len();
        let (ann, consumed) = wire::decode_announcement_prefix(self.data)
            .map_err(|e| corrupt(format!("snapshot announcement: {e}")))?;
        debug_assert!(consumed <= before);
        self.data = &self.data[consumed..];
        Ok(ann)
    }

    fn subset(&mut self) -> Result<BitSubset, WalError> {
        let (subset, consumed) = wire::decode_subset_prefix(self.data)
            .map_err(|e| corrupt(format!("snapshot subset: {e}")))?;
        self.data = &self.data[consumed..];
        Ok(subset)
    }
}
