//! DNF queries — disjunctions of conjunctions via inclusion–exclusion.
//!
//! Appendix F notes that the combining machinery "could be used to
//! estimate how many users satisfy a disjunction of conjunctions"; this
//! module provides the direct route for small DNFs over *sketched*
//! subsets: `freq(C₁ ∨ … ∨ C_t)` expands by inclusion–exclusion into
//! `2^t − 1` signed conjunction frequencies, where each intersection
//! `Cᵢ ∧ Cⱼ ∧ …` merges through [`crate::conjunction::merge_constraints`]
//! (contradictory intersections contribute exactly zero and cost no
//! query). Practical for the handfuls of clauses real predicates have;
//! for wide unions over shared subsets use
//! [`CombinedEstimator`](psketch_core::CombinedEstimator) instead.

use crate::conjunction::{merge_constraints, Constraint};
use crate::linear::LinearQuery;
use psketch_core::{ConjunctiveQuery, Error};

/// Maximum clause count (the expansion is `2^t − 1` terms).
pub const MAX_CLAUSES: usize = 12;

/// Compiles `freq(C₁ ∨ … ∨ C_t)` into a signed linear query by
/// inclusion–exclusion.
///
/// # Errors
///
/// Propagates constraint-width errors.
///
/// # Panics
///
/// Panics for an empty clause list or more than [`MAX_CLAUSES`] clauses.
pub fn dnf_query(clauses: &[ConjunctiveQuery]) -> Result<LinearQuery, Error> {
    assert!(!clauses.is_empty(), "DNF needs at least one clause");
    assert!(
        clauses.len() <= MAX_CLAUSES,
        "inclusion–exclusion over {} clauses is impractical",
        clauses.len()
    );
    let t = clauses.len();
    let mut lq = LinearQuery::new(format!("DNF of {t} clauses"));
    for mask in 1u32..(1 << t) {
        let sign = if mask.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        let constraints: Vec<Constraint> = (0..t)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| Constraint::new(clauses[i].subset().clone(), clauses[i].value().clone()))
            .collect::<Result<_, _>>()?;
        match merge_constraints(&constraints)? {
            Some(q) => {
                lq.push(sign, q);
            }
            None => {
                lq.push_zero(sign);
            }
        }
    }
    Ok(lq)
}

/// Compiles `freq(C₁ ∨ … ∨ C_t)` into a
/// [`TermPlan`](crate::plan::TermPlan) — the inclusion–exclusion
/// expansion with intersections deduplicated at compile time.
///
/// # Errors
///
/// As [`dnf_query`].
///
/// # Panics
///
/// As [`dnf_query`].
pub fn dnf_plan(clauses: &[ConjunctiveQuery]) -> Result<crate::plan::TermPlan, Error> {
    Ok(crate::plan::TermPlan::compile(&dnf_query(clauses)?))
}

/// Every subset the DNF evaluation needs sketched (the union subsets of
/// all non-contradictory intersections).
///
/// # Errors
///
/// As [`dnf_query`].
pub fn dnf_required_subsets(
    clauses: &[ConjunctiveQuery],
) -> Result<Vec<psketch_core::BitSubset>, Error> {
    Ok(dnf_query(clauses)?.required_subsets())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{BitString, BitSubset, Profile};
    use psketch_prf::Prg;
    use rand::{RngExt, SeedableRng};

    fn clause(positions: &[u32], bits: &[bool]) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            BitSubset::new(positions.to_vec()).unwrap(),
            BitString::from_bits(bits),
        )
        .unwrap()
    }

    fn exact_eval(lq: &LinearQuery, profiles: &[Profile]) -> f64 {
        lq.evaluate_with(|q| {
            Ok(profiles
                .iter()
                .filter(|p| p.satisfies(q.subset(), q.value()))
                .count() as f64
                / profiles.len() as f64)
        })
        .unwrap()
    }

    fn cube(bits: usize) -> Vec<Profile> {
        (0..1u64 << bits)
            .map(|v| Profile::from_bits(&(0..bits).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn single_clause_is_identity() {
        let c = clause(&[0, 1], &[true, false]);
        let profiles = cube(3);
        let got = exact_eval(&dnf_query(std::slice::from_ref(&c)).unwrap(), &profiles);
        let expected = profiles
            .iter()
            .filter(|p| p.satisfies(c.subset(), c.value()))
            .count() as f64
            / profiles.len() as f64;
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn disjunction_matches_brute_force_on_cube() {
        let clauses = vec![
            clause(&[0], &[true]),
            clause(&[1, 2], &[true, true]),
            clause(&[3], &[false]),
        ];
        let profiles = cube(4);
        let got = exact_eval(&dnf_query(&clauses).unwrap(), &profiles);
        let expected = profiles
            .iter()
            .filter(|p| clauses.iter().any(|c| p.satisfies(c.subset(), c.value())))
            .count() as f64
            / profiles.len() as f64;
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn contradictory_intersections_cost_no_queries() {
        // C1: x0 = 1; C2: x0 = 0 — their intersection is empty.
        let clauses = vec![clause(&[0], &[true]), clause(&[0], &[false])];
        let lq = dnf_query(&clauses).unwrap();
        // Terms: C1, C2 (queried) and C1∧C2 (zero term).
        assert_eq!(lq.num_queries(), 2);
        assert_eq!(lq.terms().len(), 3);
        let profiles = cube(2);
        // x0=1 ∨ x0=0 is a tautology.
        assert!((exact_eval(&lq, &profiles) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_dnfs_match_brute_force() {
        let mut rng = Prg::seed_from_u64(70);
        let profiles = cube(5);
        for _ in 0..30 {
            let t = rng.random_range(1..=4usize);
            let clauses: Vec<ConjunctiveQuery> = (0..t)
                .map(|_| {
                    let width = rng.random_range(1..=3usize);
                    let mut positions: Vec<u32> = Vec::new();
                    while positions.len() < width {
                        let p = rng.random_range(0..5u32);
                        if !positions.contains(&p) {
                            positions.push(p);
                        }
                    }
                    let bits: Vec<bool> = (0..width).map(|_| rng.random()).collect();
                    clause(&positions, &bits)
                })
                .collect();
            let got = exact_eval(&dnf_query(&clauses).unwrap(), &profiles);
            let expected = profiles
                .iter()
                .filter(|p| clauses.iter().any(|c| p.satisfies(c.subset(), c.value())))
                .count() as f64
                / profiles.len() as f64;
            assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
        }
    }

    #[test]
    fn required_subsets_cover_all_intersections() {
        let clauses = vec![clause(&[0], &[true]), clause(&[2], &[true])];
        let subs = dnf_required_subsets(&clauses).unwrap();
        // {0}, {2}, {0,2}.
        assert_eq!(subs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn too_many_clauses_rejected() {
        let clauses: Vec<ConjunctiveQuery> = (0..13u32).map(|i| clause(&[i], &[true])).collect();
        let _ = dnf_query(&clauses);
    }
}
