//! Non-binary attribute mining — §3's "mining non-binary data".
//!
//! "The sketching technique turns out to be very useful in mining
//! non-binary data where for each attribute there are only a few subsets
//! that need to be sketched." A categorical attribute with `n ≤ 2^w`
//! levels occupies one `w`-bit field; **one** sketch of that field per
//! user answers *all* `2^w` point queries (each sketch supports every
//! value query on its subset), from which histograms, modes, rare-level
//! counts and pairwise contingency tables follow.

use psketch_core::{
    ConjunctiveEstimator, ConjunctiveQuery, Error, IntField, SketchDb, SketchParams,
};

/// A categorical attribute: a bit field plus its number of live levels.
#[derive(Debug, Clone, Copy)]
pub struct CategoricalAttribute {
    field: IntField,
    levels: u64,
}

impl CategoricalAttribute {
    /// Declares a categorical attribute with `levels` levels stored in
    /// `field` (values `0..levels`).
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ levels ≤ field.max_value() + 1` and the field is
    /// at most 20 bits (full-histogram queries enumerate `2^w` values).
    #[must_use]
    pub fn new(field: IntField, levels: u64) -> Self {
        assert!(levels >= 2, "categorical attribute needs >= 2 levels");
        assert!(
            levels <= field.max_value() + 1,
            "levels {levels} exceed the {}-bit field",
            field.width()
        );
        assert!(field.width() <= 20, "field too wide for histogram queries");
        Self { field, levels }
    }

    /// The underlying bit field.
    #[must_use]
    pub fn field(&self) -> &IntField {
        &self.field
    }

    /// The number of levels.
    #[must_use]
    pub fn levels(&self) -> u64 {
        self.levels
    }

    /// The single subset users must sketch: the whole field.
    #[must_use]
    pub fn required_subset(&self) -> psketch_core::BitSubset {
        self.field.subset()
    }
}

/// An estimated histogram over a categorical attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-level estimated frequencies (unclamped, unbiased).
    pub frequencies: Vec<f64>,
    /// Number of sketches aggregated.
    pub sample_size: usize,
}

impl Histogram {
    /// The most frequent level (ties broken towards the smaller level).
    #[must_use]
    pub fn mode(&self) -> u64 {
        let mut best = 0usize;
        for (i, &f) in self.frequencies.iter().enumerate() {
            if f > self.frequencies[best] {
                best = i;
            }
        }
        best as u64
    }

    /// Frequencies clamped to `[0, 1]` and renormalized to sum to 1 — the
    /// usual post-processing when the histogram is consumed as a
    /// distribution. Returns the raw clamp if everything clamps to zero.
    #[must_use]
    pub fn normalized(&self) -> Vec<f64> {
        let clamped: Vec<f64> = self.frequencies.iter().map(|f| f.clamp(0.0, 1.0)).collect();
        let total: f64 = clamped.iter().sum();
        if total <= 0.0 {
            return clamped;
        }
        clamped.into_iter().map(|f| f / total).collect()
    }

    /// Total-variation distance to a reference distribution.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn total_variation(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.frequencies.len(), "length mismatch");
        0.5 * self
            .normalized()
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }
}

/// Compiles a full histogram over a categorical attribute into a
/// [`TermPlan`](crate::plan::TermPlan): one unit-weight output per
/// level, each a point query on the attribute's field subset. Output
/// `i` is level `i`'s estimated frequency — the plan-IR form of
/// [`CategoricalMiner::histogram`], executable against a cluster.
#[must_use]
pub fn histogram_plan(attr: &CategoricalAttribute) -> crate::plan::TermPlan {
    let mut plan = crate::plan::TermPlan::new(format!(
        "histogram over {}-level attribute @{}",
        attr.levels,
        attr.field.offset()
    ));
    for level in 0..attr.levels {
        let query = ConjunctiveQuery::new(attr.field.subset(), attr.field.full_value(level))
            .expect("field widths match by construction");
        plan.begin_output(format!("level {level}"), 0.0);
        plan.push_term(1.0, query);
    }
    plan
}

/// Compiles a two-attribute contingency cell
/// `freq(a = level_a ∧ b = level_b)` into a
/// [`TermPlan`](crate::plan::TermPlan) over the union subset.
///
/// # Panics
///
/// As [`CategoricalMiner::contingency_cell`].
#[must_use]
pub fn contingency_plan(
    a: &CategoricalAttribute,
    level_a: u64,
    b: &CategoricalAttribute,
    level_b: u64,
) -> crate::plan::TermPlan {
    assert!(
        level_a < a.levels && level_b < b.levels,
        "level out of range"
    );
    let merged = crate::conjunction::merge_constraints(&[
        crate::conjunction::Constraint::new(a.field.subset(), a.field.full_value(level_a))
            .expect("widths match"),
        crate::conjunction::Constraint::new(b.field.subset(), b.field.full_value(level_b))
            .expect("widths match"),
    ])
    .expect("non-empty")
    .expect("disjoint fields cannot contradict");
    crate::plan::TermPlan::for_conjunctive(merged)
}

/// Analyst-side categorical miner.
#[derive(Debug, Clone)]
pub struct CategoricalMiner {
    estimator: ConjunctiveEstimator,
}

impl CategoricalMiner {
    /// Builds a miner with the database parameters.
    #[must_use]
    pub fn new(params: SketchParams) -> Self {
        Self {
            estimator: ConjunctiveEstimator::new(params),
        }
    }

    /// Estimates the frequency of one level.
    ///
    /// # Errors
    ///
    /// As [`ConjunctiveEstimator::estimate`].
    ///
    /// # Panics
    ///
    /// Panics if `level ≥ levels`.
    pub fn level_frequency(
        &self,
        db: &SketchDb,
        attr: &CategoricalAttribute,
        level: u64,
    ) -> Result<f64, Error> {
        assert!(level < attr.levels, "level out of range");
        let q = ConjunctiveQuery::new(attr.field.subset(), attr.field.full_value(level))?;
        Ok(self.estimator.estimate(db, &q)?.fraction)
    }

    /// Estimates the full histogram (one pass over the sketches per level).
    ///
    /// # Errors
    ///
    /// As [`CategoricalMiner::level_frequency`].
    pub fn histogram(
        &self,
        db: &SketchDb,
        attr: &CategoricalAttribute,
    ) -> Result<Histogram, Error> {
        let mut frequencies = Vec::with_capacity(attr.levels as usize);
        let mut sample_size = 0;
        for level in 0..attr.levels {
            let q = ConjunctiveQuery::new(attr.field.subset(), attr.field.full_value(level))?;
            let est = self.estimator.estimate(db, &q)?;
            sample_size = est.sample_size;
            frequencies.push(est.fraction);
        }
        Ok(Histogram {
            frequencies,
            sample_size,
        })
    }

    /// Estimates a two-attribute contingency cell
    /// `freq(a = level_a ∧ b = level_b)` from a sketch of the *union*
    /// subset (the §3 "few subsets per attribute" pattern: sketch each
    /// attribute and each needed pair).
    ///
    /// # Errors
    ///
    /// As [`ConjunctiveEstimator::estimate`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range levels or overlapping fields.
    pub fn contingency_cell(
        &self,
        db: &SketchDb,
        a: &CategoricalAttribute,
        level_a: u64,
        b: &CategoricalAttribute,
        level_b: u64,
    ) -> Result<f64, Error> {
        assert!(
            level_a < a.levels && level_b < b.levels,
            "level out of range"
        );
        let merged = crate::conjunction::merge_constraints(&[
            crate::conjunction::Constraint::new(a.field.subset(), a.field.full_value(level_a))?,
            crate::conjunction::Constraint::new(b.field.subset(), b.field.full_value(level_b))?,
        ])?
        .expect("disjoint fields cannot contradict");
        Ok(self.estimator.estimate(db, &merged)?.fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{Profile, Sketcher, UserId};
    use psketch_prf::{GlobalKey, Prg};
    use rand::{RngExt, SeedableRng};

    fn setup(
        levels: u64,
        weights: &[f64],
    ) -> (SketchParams, SketchDb, CategoricalAttribute, Vec<f64>) {
        let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(61)).unwrap();
        let field = IntField::new(0, 3);
        let attr = CategoricalAttribute::new(field, levels);
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        let mut rng = Prg::seed_from_u64(62);
        let m = 30_000u64;
        let total: f64 = weights.iter().sum();
        let mut truth = vec![0u64; levels as usize];
        for i in 0..m {
            // Sample a level from the weights.
            let mut u = rng.random::<f64>() * total;
            let mut level = 0u64;
            for (j, &w) in weights.iter().enumerate() {
                if u < w {
                    level = j as u64;
                    break;
                }
                u -= w;
            }
            truth[level as usize] += 1;
            let mut profile = Profile::zeros(3);
            field.write(&mut profile, level);
            let s = sketcher
                .sketch(UserId(i), &profile, &attr.required_subset(), &mut rng)
                .unwrap();
            db.insert(attr.required_subset(), UserId(i), s);
        }
        let truth: Vec<f64> = truth.iter().map(|&c| c as f64 / m as f64).collect();
        (params, db, attr, truth)
    }

    #[test]
    fn histogram_recovers_planted_distribution() {
        let (params, db, attr, truth) = setup(5, &[0.4, 0.25, 0.2, 0.1, 0.05]);
        let miner = CategoricalMiner::new(params);
        let hist = miner.histogram(&db, &attr).unwrap();
        assert_eq!(hist.frequencies.len(), 5);
        let tv = hist.total_variation(&truth);
        assert!(tv < 0.05, "total variation {tv}");
        assert_eq!(hist.mode(), 0);
    }

    #[test]
    fn level_frequency_matches_histogram_entry() {
        let (params, db, attr, _) = setup(4, &[0.1, 0.2, 0.3, 0.4]);
        let miner = CategoricalMiner::new(params);
        let hist = miner.histogram(&db, &attr).unwrap();
        for level in 0..4u64 {
            let f = miner.level_frequency(&db, &attr, level).unwrap();
            assert!((f - hist.frequencies[level as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn contingency_cell_over_union_subset() {
        let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(63)).unwrap();
        let fa = IntField::new(0, 2);
        let fb = IntField::new(2, 2);
        let a = CategoricalAttribute::new(fa, 3);
        let b = CategoricalAttribute::new(fb, 4);
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        let mut rng = Prg::seed_from_u64(64);
        let union = fa.subset().union(&fb.subset());
        let m = 25_000u64;
        let mut hits = 0u64;
        for i in 0..m {
            let (va, vb) = ((i % 3), (i % 4));
            if va == 1 && vb == 2 {
                hits += 1;
            }
            let mut profile = Profile::zeros(4);
            fa.write(&mut profile, va);
            fb.write(&mut profile, vb);
            let s = sketcher
                .sketch(UserId(i), &profile, &union, &mut rng)
                .unwrap();
            db.insert(union.clone(), UserId(i), s);
        }
        let miner = CategoricalMiner::new(params);
        let cell = miner.contingency_cell(&db, &a, 1, &b, 2).unwrap();
        let truth = hits as f64 / m as f64;
        assert!((cell - truth).abs() < 0.02, "cell {cell} vs {truth}");
    }

    #[test]
    fn normalized_histogram_is_a_distribution() {
        let h = Histogram {
            frequencies: vec![0.5, -0.05, 0.6],
            sample_size: 100,
        };
        let n = h.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(n.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn too_many_levels_rejected() {
        let _ = CategoricalAttribute::new(IntField::new(0, 2), 5);
    }
}
