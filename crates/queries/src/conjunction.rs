//! Building conjunctive queries from heterogeneous constraints.
//!
//! The §4.1 compilers repeatedly form queries like
//! `I(A ∪ Bᵢ, c₁…c_k d₁…d_{i−1} 0)` — a conjunction whose subset is the
//! union of several attribute windows and whose value interleaves pieces
//! from each constraint. [`merge_constraints`] performs that union/align
//! step once, correctly, for everyone: it resolves the sorted position
//! order and detects contradictory overlaps (which make the conjunction
//! unsatisfiable).

use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Error};
use std::collections::BTreeMap;

/// One constraint: every position of `subset` must equal the aligned bit
/// of `value`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Constrained positions.
    pub subset: BitSubset,
    /// Required bits, aligned to `subset.positions()` order.
    pub value: BitString,
}

impl Constraint {
    /// Builds a constraint after width validation.
    ///
    /// # Errors
    ///
    /// [`Error::WidthMismatch`] unless widths agree.
    pub fn new(subset: BitSubset, value: BitString) -> Result<Self, Error> {
        if subset.len() != value.len() {
            return Err(Error::WidthMismatch {
                subset: subset.len(),
                value: value.len(),
            });
        }
        Ok(Self { subset, value })
    }
}

/// Merges constraints into a single conjunctive query on the union subset.
///
/// Returns `Ok(None)` when two constraints demand different values at the
/// same position — the conjunction is unsatisfiable and its frequency is
/// exactly zero, which callers encode without issuing any query.
///
/// # Errors
///
/// [`Error::WidthMismatch`] via [`Constraint::new`] misuse is prevented by
/// construction; the only error path is an empty input, reported as
/// [`Error::EmptyDatabase`]-free [`Error::Subset`] (empty subset).
pub fn merge_constraints(constraints: &[Constraint]) -> Result<Option<ConjunctiveQuery>, Error> {
    let mut required: BTreeMap<u32, bool> = BTreeMap::new();
    for c in constraints {
        for (j, &pos) in c.subset.positions().iter().enumerate() {
            let bit = c.value.get(j);
            if let Some(&existing) = required.get(&pos) {
                if existing != bit {
                    return Ok(None); // contradictory: frequency is 0
                }
            } else {
                required.insert(pos, bit);
            }
        }
    }
    let positions: Vec<u32> = required.keys().copied().collect();
    let bits: Vec<bool> = required.values().copied().collect();
    let subset = BitSubset::new(positions)?;
    let query = ConjunctiveQuery::new(subset, BitString::from_bits(&bits))?;
    Ok(Some(query))
}

/// Compiles a conjunction of heterogeneous constraints into a
/// [`TermPlan`](crate::plan::TermPlan): a single merged term, or a
/// constant-zero output when the constraints contradict (no query is
/// issued, and a serving node charges nothing for it).
///
/// # Errors
///
/// As [`merge_constraints`].
pub fn conjunction_plan(constraints: &[Constraint]) -> Result<crate::plan::TermPlan, Error> {
    let mut plan =
        crate::plan::TermPlan::new(format!("conjunction of {} constraints", constraints.len()));
    plan.begin_output("frequency", 0.0);
    if let Some(query) = merge_constraints(constraints)? {
        plan.push_term(1.0, query);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraint(positions: &[u32], bits: &[bool]) -> Constraint {
        Constraint::new(
            BitSubset::new(positions.to_vec()).unwrap(),
            BitString::from_bits(bits),
        )
        .unwrap()
    }

    #[test]
    fn merges_disjoint_windows() {
        let a = constraint(&[0, 1], &[true, false]);
        let b = constraint(&[4, 5], &[false, true]);
        let q = merge_constraints(&[a, b]).unwrap().unwrap();
        assert_eq!(q.subset().positions(), &[0, 1, 4, 5]);
        assert_eq!(q.value().to_bools(), [true, false, false, true]);
    }

    #[test]
    fn interleaved_positions_align_correctly() {
        let a = constraint(&[0, 4], &[true, true]);
        let b = constraint(&[2], &[false]);
        let q = merge_constraints(&[a, b]).unwrap().unwrap();
        assert_eq!(q.subset().positions(), &[0, 2, 4]);
        assert_eq!(q.value().to_bools(), [true, false, true]);
    }

    #[test]
    fn consistent_overlap_is_deduplicated() {
        let a = constraint(&[1, 2], &[true, true]);
        let b = constraint(&[2, 3], &[true, false]);
        let q = merge_constraints(&[a, b]).unwrap().unwrap();
        assert_eq!(q.subset().positions(), &[1, 2, 3]);
        assert_eq!(q.value().to_bools(), [true, true, false]);
    }

    #[test]
    fn contradictory_overlap_yields_none() {
        let a = constraint(&[2], &[true]);
        let b = constraint(&[2], &[false]);
        assert!(merge_constraints(&[a, b]).unwrap().is_none());
    }

    #[test]
    fn constraint_width_validated() {
        assert!(Constraint::new(
            BitSubset::new(vec![0, 1]).unwrap(),
            BitString::from_bits(&[true]),
        )
        .is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(merge_constraints(&[]).is_err());
    }
}
