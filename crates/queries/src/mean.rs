//! §4.1 "Computing Means/averages" — sums via bit decomposition.
//!
//! The paper expands a k-bit attribute as `a_u = Σᵢ a_{u,i}·2^{k−i}` and
//! rearranges the population sum into `S = Σᵢ 2^{k−i}·I(Aᵢ, 1)`: one
//! single-bit conjunctive query per bit of the attribute. "If each bit gets
//! released, it is sufficient to release the sketch of each bit in the
//! underlying binary representation."

use crate::linear::LinearQuery;
use psketch_core::{BitString, ConjunctiveQuery, IntField};

/// Compiles the *mean* of `field` (population sum divided by `M`) into a
/// linear query with one single-bit term per attribute bit.
///
/// The resulting value is `E[a] = Σᵢ 2^{k−i}·freq(aᵢ = 1)`.
#[must_use]
pub fn mean_query(field: &IntField) -> LinearQuery {
    let k = field.width();
    let mut lq = LinearQuery::new(format!("mean of {k}-bit field @{}", field.offset()));
    for i in 1..=k {
        let weight = (1u64 << (k - i)) as f64;
        let query = ConjunctiveQuery::new(field.bit_subset(i), BitString::from_bits(&[true]))
            .expect("single-bit widths always match");
        lq.push(weight, query);
    }
    lq
}

/// The subsets users must sketch for [`mean_query`]: each single bit of
/// the field.
#[must_use]
pub fn mean_required_subsets(field: &IntField) -> Vec<psketch_core::BitSubset> {
    (1..=field.width()).map(|i| field.bit_subset(i)).collect()
}

/// Compiles the mean into a [`TermPlan`](crate::plan::TermPlan): the
/// plan-IR form of [`mean_query`], executable in-process, on a server,
/// or across a sharded cluster.
#[must_use]
pub fn mean_plan(field: &IntField) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&mean_query(field))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::Profile;

    /// Ground-truth oracle over an explicit population of values.
    fn oracle_for<'a>(
        values: &'a [u64],
        field: &'a IntField,
    ) -> impl Fn(&ConjunctiveQuery) -> f64 + 'a {
        let width = field.end() as usize;
        move |q: &ConjunctiveQuery| {
            let hits = values
                .iter()
                .filter(|&&v| {
                    let mut p = Profile::zeros(width);
                    field.write(&mut p, v);
                    p.satisfies(q.subset(), q.value())
                })
                .count();
            hits as f64 / values.len() as f64
        }
    }

    #[test]
    fn mean_is_exact_under_exact_oracle() {
        let field = IntField::new(0, 5);
        let values = [0u64, 7, 31, 12, 12];
        let lq = mean_query(&field);
        let oracle = oracle_for(&values, &field);
        let mean = lq.evaluate_with(|q| Ok(oracle(q))).unwrap();
        let expected = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((mean - expected).abs() < 1e-9, "mean {mean} vs {expected}");
    }

    #[test]
    fn query_count_is_one_per_bit() {
        let field = IntField::new(3, 8);
        let lq = mean_query(&field);
        assert_eq!(lq.num_queries(), 8);
        assert_eq!(lq.required_subsets().len(), 8);
        assert_eq!(mean_required_subsets(&field).len(), 8);
    }

    #[test]
    fn weights_are_powers_of_two_msb_first() {
        let field = IntField::new(0, 4);
        let lq = mean_query(&field);
        let coeffs: Vec<f64> = lq.terms().iter().map(|t| t.coeff).collect();
        assert_eq!(coeffs, [8.0, 4.0, 2.0, 1.0]);
    }
}
