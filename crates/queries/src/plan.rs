//! The query-plan IR: every query family compiles to one [`TermPlan`].
//!
//! The paper's analyst side (Algorithm 2, Corollary 3.4) reduces *every*
//! derived query — conjunctions, DNF, intervals, means, moments,
//! decision-tree splits, histograms — to weighted combinations of
//! conjunctive term estimates. [`TermPlan`] is that reduction made
//! explicit and executable anywhere:
//!
//! * a **deduplicated term list**: the distinct conjunctive queries the
//!   plan needs counted (each term is one shard scan, and one ε charge
//!   under Corollary 3.4 accounting — [`TermPlan::cost`]);
//! * one or more **outputs**, each a linear post-combination
//!   `constant + Σ coeffⱼ · freq(termⱼ)` over the shared term list
//!   (a histogram is one output per level; a conditional mean is a
//!   numerator output and a denominator output sharing terms).
//!
//! Executors only ever need the term estimates; [`TermPlan::evaluate`]
//! runs the float combination identically everywhere, so a plan executed
//! against a local [`SketchDb`](psketch_core::SketchDb), through a
//! single server's `Plan` frame, or by a cluster router merging
//! per-shard integer counts ([`PlanAccumulator`]) produces
//! **bit-identical** answers: the counts behind each term estimate are
//! exact integers, the Algorithm 2 inversion runs once per term, and the
//! combination replays the compiler's term order exactly.

use crate::engine::LinearAnswer;
use crate::linear::LinearQuery;
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Error, Estimate};
use std::collections::HashMap;

fn plan_err(reason: impl Into<String>) -> Error {
    Error::Codec {
        reason: reason.into(),
    }
}

/// One output in raw-parts form: `(label, constant, combination)` —
/// the shape the wire decoder hands to [`TermPlan::from_parts`].
pub type RawOutput = (String, f64, Vec<(f64, usize)>);

/// One output of a plan: a linear combination over the plan's shared
/// term list, plus a constant.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutput {
    /// Human-readable label (reports, `--json` output).
    pub label: String,
    /// Constant offset added to the combination.
    pub constant: f64,
    /// `(coeff, term slot)` in original compiler order — the order
    /// matters for float bit-identity with the legacy evaluation.
    combination: Vec<(f64, usize)>,
}

impl PlanOutput {
    /// The weighted term references, in evaluation order.
    #[must_use]
    pub fn combination(&self) -> &[(f64, usize)] {
        &self.combination
    }

    /// Number of *distinct* terms this output references.
    #[must_use]
    pub fn distinct_terms(&self) -> usize {
        let mut slots: Vec<usize> = self.combination.iter().map(|&(_, s)| s).collect();
        slots.sort_unstable();
        slots.dedup();
        slots.len()
    }
}

/// A compiled query plan: deduplicated conjunctive terms plus linear
/// post-combinations. See the module docs.
#[derive(Debug, Clone)]
pub struct TermPlan {
    description: String,
    terms: Vec<ConjunctiveQuery>,
    outputs: Vec<PlanOutput>,
    /// Compile-time interning index over `terms` — constant-time
    /// deduplication during construction (a `2^16`-term distribution
    /// plan must not pay a quadratic scan). Not part of the plan's
    /// identity: equality and the wire encoding see only the fields
    /// above.
    index: HashMap<ConjunctiveQuery, usize>,
}

impl PartialEq for TermPlan {
    fn eq(&self, other: &Self) -> bool {
        self.description == other.description
            && self.terms == other.terms
            && self.outputs == other.outputs
    }
}

impl TermPlan {
    /// Creates an empty plan. Compilers then alternate
    /// [`TermPlan::begin_output`] and [`TermPlan::push_term`].
    #[must_use]
    pub fn new(description: impl Into<String>) -> Self {
        Self {
            description: description.into(),
            terms: Vec::new(),
            outputs: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Starts a new output with the given label and constant; subsequent
    /// [`TermPlan::push_term`] calls append to it.
    pub fn begin_output(&mut self, label: impl Into<String>, constant: f64) -> &mut Self {
        self.outputs.push(PlanOutput {
            label: label.into(),
            constant,
            combination: Vec::new(),
        });
        self
    }

    /// Appends a weighted conjunctive term to the current output,
    /// interning the query into the shared term list (a term already
    /// present — from this or any earlier output — is reused, which is
    /// exactly the engine's memoization moved to compile time).
    ///
    /// # Panics
    ///
    /// Panics if no output has been started.
    pub fn push_term(&mut self, coeff: f64, query: ConjunctiveQuery) -> &mut Self {
        let slot = match self.index.get(&query) {
            Some(&i) => i,
            None => {
                let slot = self.terms.len();
                self.index.insert(query.clone(), slot);
                self.terms.push(query);
                slot
            }
        };
        self.outputs
            .last_mut()
            .expect("begin_output before push_term")
            .combination
            .push((coeff, slot));
        self
    }

    /// Compiles a linear query into a single-output plan. Duplicate
    /// conjunctive terms share one slot; provably-zero terms
    /// ([`LinearQuery::push_zero`]) are dropped, exactly as the engine's
    /// memoized evaluation drops them.
    #[must_use]
    pub fn compile(lq: &LinearQuery) -> Self {
        Self::from_queries(lq.description.clone(), std::slice::from_ref(lq))
    }

    /// Compiles several linear queries into one multi-output plan with a
    /// shared term list: a conjunctive term appearing in any two of the
    /// queries is counted once.
    #[must_use]
    pub fn from_queries(description: impl Into<String>, lqs: &[LinearQuery]) -> Self {
        let started = psketch_obs::enabled().then(std::time::Instant::now);
        let mut plan = Self::new(description);
        for lq in lqs {
            plan.begin_output(lq.description.clone(), lq.constant);
            for term in lq.terms() {
                if let Some(query) = &term.query {
                    plan.push_term(term.coeff, query.clone());
                }
            }
        }
        if let Some(started) = started {
            psketch_obs::histogram("psketch_query_plan_compile_nanos", &[])
                .record_duration(started.elapsed());
            psketch_obs::counter("psketch_query_plans_compiled_total", &[]).inc();
        }
        plan
    }

    /// The trivial plan for one conjunctive frequency.
    #[must_use]
    pub fn for_conjunctive(query: ConjunctiveQuery) -> Self {
        let mut plan = Self::new(format!("freq({}-bit conjunction)", query.width()));
        plan.begin_output("frequency", 0.0);
        plan.push_term(1.0, query);
        plan
    }

    /// The plan for a full `2^k` distribution over one subset: one term
    /// and one unit-weight output per value, in LSB-first integer order
    /// (the same indexing the direct estimator uses).
    ///
    /// # Panics
    ///
    /// Panics for subsets wider than 16 bits — `2^16` terms is exactly
    /// the serving nodes' plan cap, so a wider plan could never execute
    /// remotely anyway (and would waste the whole compile first).
    #[must_use]
    pub fn for_distribution(subset: &BitSubset) -> Self {
        let k = subset.len();
        assert!(k <= 16, "distribution plans capped at 16-bit subsets");
        let mut plan = Self::new(format!("distribution over {k}-bit subset"));
        for value in 0..(1u64 << k) {
            let query = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(value, k))
                .expect("widths match by construction");
            plan.begin_output(format!("value {value}"), 0.0);
            plan.push_term(1.0, query);
        }
        plan
    }

    /// Rebuilds a plan from raw parts (wire decoding).
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] if any output references a term slot outside the
    /// term list.
    pub fn from_parts(
        description: String,
        terms: Vec<ConjunctiveQuery>,
        outputs: Vec<RawOutput>,
    ) -> Result<Self, Error> {
        let n = terms.len();
        let outputs: Vec<PlanOutput> = outputs
            .into_iter()
            .map(|(label, constant, combination)| {
                if let Some(&(_, slot)) = combination.iter().find(|&&(_, s)| s >= n) {
                    return Err(plan_err(format!(
                        "plan output references term {slot} of {n}"
                    )));
                }
                Ok(PlanOutput {
                    label,
                    constant,
                    combination,
                })
            })
            .collect::<Result<_, _>>()?;
        // Rebuild the interning index (first occurrence wins) so a
        // decoded plan can keep growing through `push_term`.
        let mut index = HashMap::with_capacity(terms.len());
        for (i, term) in terms.iter().enumerate() {
            index.entry(term.clone()).or_insert(i);
        }
        Ok(Self {
            description,
            terms,
            outputs,
            index,
        })
    }

    /// The plan's description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The deduplicated conjunctive terms — the exact list of counts an
    /// executor must obtain, in this order.
    #[must_use]
    pub fn terms(&self) -> &[ConjunctiveQuery] {
        &self.terms
    }

    /// The outputs.
    #[must_use]
    pub fn outputs(&self) -> &[PlanOutput] {
        &self.outputs
    }

    /// The plan's cost: the number of distinct conjunctive terms. This
    /// is both the scan count (each term is one pass over a shard's
    /// records) and the Corollary 3.4 ε charge a serving node levies —
    /// compound queries are charged for exactly the estimates computed,
    /// never per-output or per-wire-frame.
    #[must_use]
    pub fn cost(&self) -> usize {
        self.terms.len()
    }

    /// Every distinct subset the plan touches — the subsets users must
    /// have sketched for the plan to be answerable.
    #[must_use]
    pub fn required_subsets(&self) -> Vec<BitSubset> {
        let mut subsets: Vec<BitSubset> = self.terms.iter().map(|q| q.subset().clone()).collect();
        subsets.sort();
        subsets.dedup();
        subsets
    }

    /// Runs the post-combination over per-term estimates (aligned with
    /// [`TermPlan::terms`]). This is the **only** place plan outputs are
    /// computed — local engine, server, and cluster router all funnel
    /// through it, so the float operations and their order are identical
    /// everywhere.
    ///
    /// Per output, `queries_used` is the number of distinct terms the
    /// output references (the engine's memoized estimate count) and
    /// `min_sample_size` the smallest sample among them (0 for a
    /// constant-only output).
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] if the estimate count does not match the term
    /// count.
    pub fn evaluate(&self, estimates: &[Estimate]) -> Result<Vec<LinearAnswer>, Error> {
        if estimates.len() != self.terms.len() {
            return Err(plan_err(format!(
                "plan holds {} terms but {} estimates were supplied",
                self.terms.len(),
                estimates.len()
            )));
        }
        Ok(self
            .outputs
            .iter()
            .map(|out| {
                let mut value = out.constant;
                let mut min_sample = usize::MAX;
                let mut saw_term = false;
                for &(coeff, slot) in &out.combination {
                    value += coeff * estimates[slot].fraction;
                    min_sample = min_sample.min(estimates[slot].sample_size);
                    saw_term = true;
                }
                LinearAnswer {
                    value,
                    queries_used: out.distinct_terms(),
                    min_sample_size: if saw_term { min_sample } else { 0 },
                }
            })
            .collect())
    }
}

/// The merge side of distributed plan execution: per-term integer
/// `(ones, population)` counts summed over shards.
///
/// The conjunctive estimator is a pure counting scan, so counts taken
/// over disjoint partitions of a pool sum to exactly the whole-pool
/// counts, in any absorption order. One [`Estimate::from_counts`]
/// inversion per term on the merged sums then reproduces the single-node
/// term estimates **bit-for-bit**, and [`TermPlan::evaluate`] does the
/// rest. This single accumulator replaces the per-kind
/// `CountAccumulator`/`DistributionAccumulator`/`LinearAccumulator`
/// trio the cluster previously needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanAccumulator {
    ones: Vec<u64>,
    populations: Vec<u64>,
}

impl PlanAccumulator {
    /// An empty accumulator for a plan with `terms` terms.
    #[must_use]
    pub fn new(terms: usize) -> Self {
        Self {
            ones: vec![0; terms],
            populations: vec![0; terms],
        }
    }

    /// An empty accumulator sized for `plan`.
    #[must_use]
    pub fn for_plan(plan: &TermPlan) -> Self {
        Self::new(plan.cost())
    }

    /// Absorbs one shard's `(ones, population)` pairs, aligned with the
    /// plan's term list. A shard holding no sketches for a term's subset
    /// contributes `(0, 0)` — exactly its (empty) share of the pool.
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] if the shard reported the wrong number of pairs
    /// (a shard disagreeing about the plan must not be merged silently).
    pub fn absorb(&mut self, per_term: &[(u64, u64)]) -> Result<(), Error> {
        if per_term.len() != self.ones.len() {
            return Err(plan_err(format!(
                "shard reported {} term counts, expected {}",
                per_term.len(),
                self.ones.len()
            )));
        }
        for (i, &(ones, population)) in per_term.iter().enumerate() {
            self.ones[i] += ones;
            self.populations[i] += population;
        }
        Ok(())
    }

    /// The merged `(ones, population)` pairs so far.
    #[must_use]
    pub fn merged(&self) -> Vec<(u64, u64)> {
        self.ones
            .iter()
            .zip(&self.populations)
            .map(|(&o, &n)| (o, n))
            .collect()
    }

    /// The largest merged population among the terms (the widest shard
    /// coverage any term achieved; 0 for a term-free plan).
    #[must_use]
    pub fn max_population(&self) -> u64 {
        self.populations.iter().copied().max().unwrap_or(0)
    }

    /// The Algorithm 2 inversions over the merged counts, one per term.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] if any term's merged population is zero
    /// — a single node evaluating the same plan would have failed the
    /// same way (unknown subset or empty pool).
    pub fn finish(&self, p: f64) -> Result<Vec<Estimate>, Error> {
        if self.populations.contains(&0) {
            return Err(Error::EmptyDatabase);
        }
        Ok(self
            .ones
            .iter()
            .zip(&self.populations)
            .map(|(&ones, &n)| Estimate::from_counts(ones, n, p))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use psketch_core::{Profile, SketchDb, SketchParams, Sketcher, UserId};
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn params(p: f64) -> SketchParams {
        SketchParams::with_sip(p, 10, GlobalKey::from_seed(33)).unwrap()
    }

    fn query(positions: &[u32], bits: &[bool]) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            BitSubset::new(positions.to_vec()).unwrap(),
            BitString::from_bits(bits),
        )
        .unwrap()
    }

    /// One pool plus a 3-way partition of the same records.
    fn whole_and_shards(p: f64, m: u64) -> (SketchDb, Vec<SketchDb>, BitSubset) {
        let params = params(p);
        let sketcher = Sketcher::new(params);
        let subset = BitSubset::range(0, 3);
        let whole = SketchDb::new();
        let shards: Vec<SketchDb> = (0..3).map(|_| SketchDb::new()).collect();
        let mut rng = Prg::seed_from_u64(44);
        for i in 0..m {
            let profile = Profile::from_bits(&[i % 2 == 0, i % 3 == 0, i % 7 == 0]);
            let s = sketcher
                .sketch(UserId(i), &profile, &subset, &mut rng)
                .unwrap();
            whole.insert(subset.clone(), UserId(i), s);
            // Deliberately uneven split.
            shards[(i % 5).min(2) as usize].insert(subset.clone(), UserId(i), s);
        }
        (whole, shards, subset)
    }

    #[test]
    fn compile_dedupes_terms_and_preserves_order() {
        let q1 = query(&[0], &[true]);
        let q2 = query(&[1], &[false]);
        let mut lq = LinearQuery::new("dup");
        lq.constant = 0.5;
        lq.push(1.0, q1.clone());
        lq.push(2.0, q2);
        lq.push(-0.5, q1);
        lq.push_zero(9.0);
        let plan = TermPlan::compile(&lq);
        assert_eq!(plan.cost(), 2);
        assert_eq!(plan.outputs().len(), 1);
        let comb = plan.outputs()[0].combination();
        assert_eq!(comb, &[(1.0, 0), (2.0, 1), (-0.5, 0)]);
        assert_eq!(plan.outputs()[0].distinct_terms(), 2);
        assert_eq!(plan.required_subsets().len(), 2);
    }

    #[test]
    fn multi_output_plans_share_terms() {
        let q = query(&[0], &[true]);
        let mut a = LinearQuery::new("a");
        a.push(1.0, q.clone());
        let mut b = LinearQuery::new("b");
        b.push(2.0, q);
        let plan = TermPlan::from_queries("shared", &[a, b]);
        assert_eq!(plan.cost(), 1);
        assert_eq!(plan.outputs().len(), 2);
        assert_eq!(plan.outputs()[1].combination(), &[(2.0, 0)]);
    }

    #[test]
    fn distribution_plan_indexes_lsb_first() {
        let subset = BitSubset::range(0, 2);
        let plan = TermPlan::for_distribution(&subset);
        assert_eq!(plan.cost(), 4);
        assert_eq!(plan.outputs().len(), 4);
        // Value 2 (LSB-first) is bits [false, true].
        assert_eq!(plan.terms()[2].value().to_bools(), [false, true]);
    }

    #[test]
    fn maximal_distribution_plan_compiles_fast() {
        // The 16-bit plan is 65 536 terms — exactly the serving nodes'
        // cap. Hash interning keeps compilation linear; a quadratic
        // scan here took ~20 s and would time out this test.
        let start = std::time::Instant::now();
        let plan = TermPlan::for_distribution(&BitSubset::range(0, 16));
        assert_eq!(plan.cost(), 1 << 16);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "plan compilation took {:?}",
            start.elapsed()
        );
    }

    #[test]
    #[should_panic(expected = "capped at 16-bit")]
    fn overwide_distribution_plan_rejected() {
        let _ = TermPlan::for_distribution(&BitSubset::range(0, 17));
    }

    #[test]
    fn evaluate_matches_legacy_engine_bitwise() {
        let p = 0.3;
        let (db, _, subset) = whole_and_shards(p, 1_500);
        let engine = QueryEngine::new(params(p));
        let q1 = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(5, 3)).unwrap();
        let q2 = ConjunctiveQuery::new(subset, BitString::from_u64(2, 3)).unwrap();
        let mut lq = LinearQuery::new("plan vs engine");
        lq.constant = 0.75;
        lq.push(2.0, q1.clone());
        lq.push(-0.5, q2);
        lq.push(3.0, q1);
        let legacy = engine.linear(&db, &lq).unwrap();
        let plan = TermPlan::compile(&lq);
        let answers = engine.execute_plan(&db, &plan).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].value.to_bits(), legacy.value.to_bits());
        assert_eq!(answers[0].queries_used, legacy.queries_used);
        assert_eq!(answers[0].min_sample_size, legacy.min_sample_size);
    }

    #[test]
    fn merged_plan_matches_single_pool_bitwise() {
        let p = 0.3;
        let (whole, shards, subset) = whole_and_shards(p, 1_800);
        let est = psketch_core::ConjunctiveEstimator::new(params(p));
        let engine = QueryEngine::new(params(p));
        let q1 = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(5, 3)).unwrap();
        let q2 = ConjunctiveQuery::new(subset, BitString::from_u64(2, 3)).unwrap();
        let mut lq = LinearQuery::new("merged plan");
        lq.constant = -0.25;
        lq.push(2.0, q1.clone());
        lq.push(-0.5, q2);
        lq.push(3.0, q1);
        let plan = TermPlan::compile(&lq);

        let mut acc = PlanAccumulator::for_plan(&plan);
        for shard in &shards {
            let counts = est.count_terms_partial(shard, plan.terms());
            acc.absorb(&counts).unwrap();
        }
        let estimates = acc.finish(p).unwrap();
        let merged = plan.evaluate(&estimates).unwrap();
        let single = engine.linear(&whole, &lq).unwrap();
        assert_eq!(merged[0].value.to_bits(), single.value.to_bits());
        assert_eq!(merged[0].queries_used, single.queries_used);
        assert_eq!(merged[0].min_sample_size, single.min_sample_size);
        assert_eq!(acc.max_population(), 1_800);
    }

    #[test]
    fn zero_count_shards_merge_as_no_ops() {
        let p = 0.25;
        let (whole, shards, subset) = whole_and_shards(p, 600);
        let est = psketch_core::ConjunctiveEstimator::new(params(p));
        let q = ConjunctiveQuery::new(subset, BitString::from_u64(7, 3)).unwrap();
        let plan = TermPlan::for_conjunctive(q.clone());
        let mut acc = PlanAccumulator::for_plan(&plan);
        acc.absorb(&[(0, 0)]).unwrap();
        for shard in &shards {
            acc.absorb(&est.count_terms_partial(shard, plan.terms()))
                .unwrap();
        }
        acc.absorb(&[(0, 0)]).unwrap();
        let merged = plan.evaluate(&acc.finish(p).unwrap()).unwrap();
        let single = est.estimate(&whole, &q).unwrap();
        assert_eq!(merged[0].value.to_bits(), single.fraction.to_bits());
    }

    #[test]
    fn empty_merges_are_rejected() {
        let plan = TermPlan::for_conjunctive(query(&[0], &[true]));
        let acc = PlanAccumulator::for_plan(&plan);
        assert!(matches!(acc.finish(0.3), Err(Error::EmptyDatabase)));
        // A term-free plan (constant only) is fine.
        let mut lq = LinearQuery::new("constant");
        lq.constant = 2.5;
        let plan = TermPlan::compile(&lq);
        let acc = PlanAccumulator::for_plan(&plan);
        let answers = plan.evaluate(&acc.finish(0.3).unwrap()).unwrap();
        assert_eq!(answers[0].value, 2.5);
        assert_eq!(answers[0].min_sample_size, 0);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let plan = TermPlan::for_conjunctive(query(&[0], &[true]));
        let mut acc = PlanAccumulator::for_plan(&plan);
        assert!(acc.absorb(&[(1, 2), (3, 4)]).is_err());
        assert!(acc.absorb(&[(1, 2)]).is_ok());
        assert!(plan.evaluate(&[]).is_err());
    }

    #[test]
    fn from_parts_validates_slots() {
        let terms = vec![query(&[0], &[true])];
        assert!(TermPlan::from_parts(
            "bad".into(),
            terms.clone(),
            vec![("out".into(), 0.0, vec![(1.0, 1)])],
        )
        .is_err());
        let plan = TermPlan::from_parts(
            "good".into(),
            terms,
            vec![("out".into(), 0.5, vec![(1.0, 0)])],
        )
        .unwrap();
        assert_eq!(plan.cost(), 1);
    }
}
