//! §4.1 inner products — `Σ_u a_u·b_u` via k² two-bit queries.
//!
//! The paper: `S = Σᵢ Σⱼ 2^{2k−(i+j)}·I(Aᵢ ∪ Bⱼ, 11)` — the cross terms of
//! the bit decompositions, each a two-bit conjunctive query asking "how
//! many users have bits aᵢ and bⱼ both set". Optionally, terms whose
//! weight contributes less than the expected estimation noise can be
//! dropped (the paper's footnote 6).

use crate::conjunction::{merge_constraints, Constraint};
use crate::linear::LinearQuery;
use psketch_core::{BitString, IntField};

/// Compiles the mean inner product `E[a·b]` of two **disjoint** integer
/// fields into `k_a · k_b` two-bit conjunctive terms.
///
/// # Panics
///
/// Panics if the fields overlap (an inner product of an attribute with
/// itself needs the diagonal identity `aᵢ·aᵢ = aᵢ` instead; see
/// [`mean_square_query`]).
#[must_use]
pub fn inner_product_query(a: &IntField, b: &IntField) -> LinearQuery {
    assert!(
        a.end() <= b.offset() || b.end() <= a.offset(),
        "inner_product_query requires disjoint fields"
    );
    let (ka, kb) = (a.width(), b.width());
    let mut lq = LinearQuery::new(format!(
        "inner product of fields @{} and @{}",
        a.offset(),
        b.offset()
    ));
    for i in 1..=ka {
        for j in 1..=kb {
            let weight = (1u128 << ((ka - i) + (kb - j))) as f64;
            let query = merge_constraints(&[
                Constraint::new(a.bit_subset(i), BitString::from_bits(&[true])).expect("width 1"),
                Constraint::new(b.bit_subset(j), BitString::from_bits(&[true])).expect("width 1"),
            ])
            .expect("non-empty")
            .expect("disjoint fields cannot contradict");
            lq.push(weight, query);
        }
    }
    lq
}

/// Compiles the mean square `E[a²]` of one field.
///
/// Diagonal terms use `aᵢ² = aᵢ` (single-bit queries); off-diagonal terms
/// are two-bit queries within the field, counted once with doubled weight.
#[must_use]
pub fn mean_square_query(a: &IntField) -> LinearQuery {
    let k = a.width();
    let mut lq = LinearQuery::new(format!("mean square of field @{}", a.offset()));
    for i in 1..=k {
        for j in i..=k {
            let base_weight = (1u128 << ((k - i) + (k - j))) as f64;
            if i == j {
                let query = merge_constraints(&[Constraint::new(
                    a.bit_subset(i),
                    BitString::from_bits(&[true]),
                )
                .expect("width 1")])
                .expect("non-empty")
                .expect("single constraint cannot contradict");
                lq.push(base_weight, query);
            } else {
                let query = merge_constraints(&[
                    Constraint::new(a.bit_subset(i), BitString::from_bits(&[true]))
                        .expect("width 1"),
                    Constraint::new(a.bit_subset(j), BitString::from_bits(&[true]))
                        .expect("width 1"),
                ])
                .expect("non-empty")
                .expect("distinct bits cannot contradict");
                lq.push(2.0 * base_weight, query);
            }
        }
    }
    lq
}

/// Compiles the mean inner product into a
/// [`TermPlan`](crate::plan::TermPlan).
///
/// # Panics
///
/// As [`inner_product_query`].
#[must_use]
pub fn inner_product_plan(a: &IntField, b: &IntField) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&inner_product_query(a, b))
}

/// Compiles the mean square into a [`TermPlan`](crate::plan::TermPlan).
#[must_use]
pub fn mean_square_plan(a: &IntField) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&mean_square_query(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{ConjunctiveQuery, Profile};

    fn oracle_for<'a>(
        pairs: &'a [(u64, u64)],
        a: &'a IntField,
        b: &'a IntField,
    ) -> impl Fn(&ConjunctiveQuery) -> f64 + 'a {
        let width = a.end().max(b.end()) as usize;
        move |q: &ConjunctiveQuery| {
            let hits = pairs
                .iter()
                .filter(|&&(va, vb)| {
                    let mut p = Profile::zeros(width);
                    a.write(&mut p, va);
                    b.write(&mut p, vb);
                    p.satisfies(q.subset(), q.value())
                })
                .count();
            hits as f64 / pairs.len() as f64
        }
    }

    #[test]
    fn inner_product_exact_under_exact_oracle() {
        let a = IntField::new(0, 4);
        let b = IntField::new(4, 4);
        let pairs = [(3u64, 5u64), (15, 15), (0, 9), (7, 1)];
        let lq = inner_product_query(&a, &b);
        let oracle = oracle_for(&pairs, &a, &b);
        let got = lq.evaluate_with(|q| Ok(oracle(q))).unwrap();
        let expected = pairs.iter().map(|&(x, y)| (x * y) as f64).sum::<f64>() / pairs.len() as f64;
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn inner_product_query_count_is_k_squared() {
        let a = IntField::new(0, 5);
        let b = IntField::new(5, 3);
        assert_eq!(inner_product_query(&a, &b).num_queries(), 15);
    }

    #[test]
    fn mean_square_exact_under_exact_oracle() {
        let a = IntField::new(0, 4);
        let b = IntField::new(4, 4); // unused filler to satisfy the oracle
        let pairs = [(3u64, 0u64), (15, 0), (0, 0), (7, 0), (12, 0)];
        let lq = mean_square_query(&a);
        let oracle = oracle_for(&pairs, &a, &b);
        let got = lq.evaluate_with(|q| Ok(oracle(q))).unwrap();
        let expected = pairs.iter().map(|&(x, _)| (x * x) as f64).sum::<f64>() / pairs.len() as f64;
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_fields_rejected() {
        let a = IntField::new(0, 4);
        let b = IntField::new(2, 4);
        let _ = inner_product_query(&a, &b);
    }
}
