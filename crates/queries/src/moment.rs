//! Higher moments — §1 promises "means, higher moments and interval
//! queries" are all expressible as small collections of conjunctions.
//!
//! The r-th raw moment expands multinomially:
//! `E[aʳ] = Σ_{i₁…i_r} 2^{Σ(k−i_j)} · E[a_{i₁}·…·a_{i_r}]`, and since bits
//! are idempotent (`aᵢ² = aᵢ`) every term collapses to a conjunction over
//! the *distinct* bits involved. Collecting equal bit-sets gives at most
//! `C(k, 1) + … + C(k, r)` distinct conjunctions of width ≤ r, each
//! weighted by the sum of its multinomial coefficients — quadratic in `k`
//! for the second moment (the paper's `k²` inner-product count), cubic for
//! the third.

use crate::conjunction::{merge_constraints, Constraint};
use crate::linear::LinearQuery;
use psketch_core::{BitString, IntField};
use std::collections::BTreeMap;

/// Maximum supported moment order (terms grow like `k^r`).
pub const MAX_MOMENT: u32 = 4;

/// Compiles the r-th raw moment `E[aʳ]` of an integer field into
/// conjunctions of width ≤ r over the field's bits.
///
/// `r = 1` reduces to [`crate::mean::mean_query`]; `r = 2` to
/// [`crate::product::mean_square_query`] (verified by tests).
///
/// # Panics
///
/// Panics unless `1 ≤ r ≤ MAX_MOMENT`.
#[must_use]
pub fn moment_query(field: &IntField, r: u32) -> LinearQuery {
    assert!(
        (1..=MAX_MOMENT).contains(&r),
        "moment order must be in [1, {MAX_MOMENT}]"
    );
    let k = field.width();
    let total = (u64::from(k)).pow(r);
    assert!(
        total <= 2_000_000,
        "k^r = {total} tuples is too many; use a narrower field or lower r"
    );
    // Accumulate weights per distinct bit-index set by enumerating all
    // r-tuples (i₁…i_r) ∈ [1, k]^r as base-k numerals.
    let mut weights: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
    let mut tuple = vec![1u32; r as usize];
    for mut t in 0..total {
        for slot in tuple.iter_mut() {
            *slot = (t % u64::from(k)) as u32 + 1;
            t /= u64::from(k);
        }
        // Weight 2^{Σ (k − i_j)}.
        let exponent: u32 = tuple.iter().map(|&i| k - i).sum();
        let weight = if exponent <= 127 {
            (1u128 << exponent) as f64
        } else {
            2f64.powi(exponent as i32)
        };
        let mut distinct: Vec<u32> = tuple.clone();
        distinct.sort_unstable();
        distinct.dedup();
        *weights.entry(distinct).or_insert(0.0) += weight;
    }

    let mut lq = LinearQuery::new(format!("E[a^{r}] of field@{}", field.offset()));
    for (bits, weight) in weights {
        let constraints: Vec<Constraint> = bits
            .iter()
            .map(|&i| {
                Constraint::new(field.bit_subset(i), BitString::from_bits(&[true]))
                    .expect("width 1")
            })
            .collect();
        let query = merge_constraints(&constraints)
            .expect("non-empty")
            .expect("distinct single bits cannot contradict");
        lq.push(weight, query);
    }
    lq
}

/// The central second moment (variance) as a pair of linear queries:
/// `Var[a] = E[a²] − E[a]²`. Returns `(second_moment, mean)`; the caller
/// combines the two estimates (the combination is nonlinear, so it cannot
/// be a single [`LinearQuery`]).
#[must_use]
pub fn variance_queries(field: &IntField) -> (LinearQuery, LinearQuery) {
    (moment_query(field, 2), moment_query(field, 1))
}

/// Compiles the r-th raw moment into a
/// [`TermPlan`](crate::plan::TermPlan).
///
/// # Panics
///
/// As [`moment_query`].
#[must_use]
pub fn moment_plan(field: &IntField, r: u32) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&moment_query(field, r))
}

/// Compiles the variance's query pair into **one** two-output plan:
/// output 0 is `E[a²]`, output 1 is `E[a]`, and the `k` single-bit terms
/// the mean needs are shared with the second moment's diagonal — the
/// multi-output IR counts them once.
#[must_use]
pub fn variance_plan(field: &IntField) -> crate::plan::TermPlan {
    let (m2, m1) = variance_queries(field);
    crate::plan::TermPlan::from_queries(format!("variance of field@{}", field.offset()), &[m2, m1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{ConjunctiveQuery, Profile};

    fn oracle_for<'a>(
        values: &'a [u64],
        field: &'a IntField,
    ) -> impl Fn(&ConjunctiveQuery) -> f64 + 'a {
        let width = field.end() as usize;
        move |q: &ConjunctiveQuery| {
            values
                .iter()
                .filter(|&&v| {
                    let mut p = Profile::zeros(width);
                    field.write(&mut p, v);
                    p.satisfies(q.subset(), q.value())
                })
                .count() as f64
                / values.len() as f64
        }
    }

    #[test]
    fn moments_match_brute_force() {
        let field = IntField::new(0, 5);
        let values = [0u64, 3, 7, 12, 19, 31, 31, 8];
        let oracle = oracle_for(&values, &field);
        for r in 1..=4u32 {
            let got = moment_query(&field, r)
                .evaluate_with(|q| Ok(oracle(q)))
                .unwrap();
            let expected = values
                .iter()
                .map(|&v| (v as f64).powi(r as i32))
                .sum::<f64>()
                / values.len() as f64;
            assert!(
                (got - expected).abs() < expected.abs() * 1e-12 + 1e-9,
                "r={r}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn first_moment_equals_mean_query() {
        let field = IntField::new(2, 6);
        let values: Vec<u64> = (0..64).map(|v| (v * 7) % 64).collect();
        let oracle = oracle_for(&values, &field);
        let via_moment = moment_query(&field, 1)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        let via_mean = crate::mean::mean_query(&field)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        assert!((via_moment - via_mean).abs() < 1e-9);
        assert_eq!(moment_query(&field, 1).num_queries(), 6);
    }

    #[test]
    fn second_moment_equals_mean_square_query() {
        let field = IntField::new(0, 4);
        let values = [1u64, 5, 9, 15, 2];
        let oracle = oracle_for(&values, &field);
        let via_moment = moment_query(&field, 2)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        let via_sq = crate::product::mean_square_query(&field)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        assert!((via_moment - via_sq).abs() < 1e-9);
    }

    #[test]
    fn variance_via_query_pair() {
        let field = IntField::new(0, 4);
        let values = [2u64, 2, 8, 12];
        let oracle = oracle_for(&values, &field);
        let (m2, m1) = variance_queries(&field);
        let e2 = m2.evaluate_with(|q| Ok(oracle(q))).unwrap();
        let e1 = m1.evaluate_with(|q| Ok(oracle(q))).unwrap();
        let var = e2 - e1 * e1;
        let mean = values.iter().sum::<u64>() as f64 / 4.0;
        let expected = values
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / 4.0;
        assert!((var - expected).abs() < 1e-9, "{var} vs {expected}");
    }

    #[test]
    fn query_counts_are_polynomial_not_exponential() {
        let field = IntField::new(0, 8);
        // Width-≤r conjunctions over k bits: Σ_{j≤r} C(k, j).
        assert_eq!(moment_query(&field, 1).num_queries(), 8);
        assert_eq!(moment_query(&field, 2).num_queries(), 8 + 28);
        assert_eq!(moment_query(&field, 3).num_queries(), 8 + 28 + 56);
    }

    #[test]
    #[should_panic(expected = "moment order")]
    fn order_zero_rejected() {
        let _ = moment_query(&IntField::new(0, 2), 0);
    }
}
