//! # psketch-queries — the derived query layer (§4.1 + Appendix E)
//!
//! The paper's §4.1 shows that the basic conjunctive query is expressive:
//! means, inner products, interval queries, combined constraints,
//! conditional averages and decision trees all compile into *small*
//! collections of conjunctive queries. This crate is that compiler plus an
//! execution engine:
//!
//! * [`linear`] — the normal form: weighted sums of conjunctive
//!   frequencies ([`LinearQuery`]);
//! * [`conjunction`] — merging heterogeneous constraints into single
//!   conjunctions on union subsets (the `I(A ∪ Bᵢ, …)` constructions);
//! * [`mean`] — sums/means via bit decomposition (k single-bit queries);
//! * [`product`] — inner products (k² two-bit queries) and mean squares;
//! * [`interval`] — `a < c` / `a ≤ c` / ranges via popcount(c) prefix
//!   conjunctions;
//! * [`combined`] — `a = c ∧ b < d` and conditional sums;
//! * [`tree`] — decision trees as sums over accepting paths;
//! * [`bits`] — perturbed-bit tables and the unbiased product estimator
//!   (the machinery behind Appendix E and the randomized-response
//!   comparisons);
//! * [`categorical`] — §3's non-binary mining: histograms, modes and
//!   contingency cells over categorical attributes, one sketch per field;
//! * [`sumlt`] — Appendix E's `a + b < 2^r` via XOR virtual bits, `r+1`
//!   conjunctions instead of `2^{r+1} − 1`;
//! * [`plan`] — the query-plan IR every family compiles to: a
//!   deduplicated term list plus linear post-combinations, executable
//!   bit-identically by the in-process engine, a single server, or a
//!   sharded cluster router;
//! * [`engine`] — evaluation of all of the above against a
//!   [`SketchDb`](psketch_core::SketchDb).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod categorical;
pub mod combined;
pub mod conjunction;
pub mod dnf;
pub mod engine;
pub mod interval;
pub mod linear;
pub mod mean;
pub mod moment;
pub mod plan;
pub mod product;
pub mod sumlt;
pub mod tree;

pub use bits::{perturbed_conjunction_plan, PerturbedBitTable};
pub use categorical::{
    contingency_plan, histogram_plan, CategoricalAttribute, CategoricalMiner, Histogram,
};
pub use combined::{
    conditional_mean_plan, conditional_sum_query, conditional_sum_query_inclusive,
    eq_and_less_than, eq_and_less_than_plan,
};
pub use conjunction::{conjunction_plan, merge_constraints, Constraint};
pub use dnf::{dnf_plan, dnf_query, dnf_required_subsets};
pub use engine::{EngineStatsSnapshot, LinearAnswer, QueryEngine};
pub use interval::{
    interval_required_subsets, less_equal_plan, less_equal_query, less_than_plan, less_than_query,
    range_plan, range_query,
};
pub use linear::{LinearQuery, LinearTerm};
pub use mean::{mean_plan, mean_query, mean_required_subsets};
pub use moment::{moment_plan, moment_query, variance_plan, variance_queries};
pub use plan::{PlanAccumulator, PlanOutput, TermPlan};
pub use product::{inner_product_plan, inner_product_query, mean_square_plan, mean_square_query};
pub use sumlt::{
    naive_conjunction_count, sum_less_than_pow2, sum_lt_plan, sum_lt_truth, SumLtEstimate,
};
pub use tree::DecisionTree;
