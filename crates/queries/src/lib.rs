//! # psketch-queries — the derived query layer (§4.1 + Appendix E)
//!
//! The paper's §4.1 shows that the basic conjunctive query is expressive:
//! means, inner products, interval queries, combined constraints,
//! conditional averages and decision trees all compile into *small*
//! collections of conjunctive queries. This crate is that compiler plus an
//! execution engine:
//!
//! * [`linear`] — the normal form: weighted sums of conjunctive
//!   frequencies ([`LinearQuery`]);
//! * [`conjunction`] — merging heterogeneous constraints into single
//!   conjunctions on union subsets (the `I(A ∪ Bᵢ, …)` constructions);
//! * [`mean`] — sums/means via bit decomposition (k single-bit queries);
//! * [`product`] — inner products (k² two-bit queries) and mean squares;
//! * [`interval`] — `a < c` / `a ≤ c` / ranges via popcount(c) prefix
//!   conjunctions;
//! * [`combined`] — `a = c ∧ b < d` and conditional sums;
//! * [`tree`] — decision trees as sums over accepting paths;
//! * [`bits`] — perturbed-bit tables and the unbiased product estimator
//!   (the machinery behind Appendix E and the randomized-response
//!   comparisons);
//! * [`categorical`] — §3's non-binary mining: histograms, modes and
//!   contingency cells over categorical attributes, one sketch per field;
//! * [`sumlt`] — Appendix E's `a + b < 2^r` via XOR virtual bits, `r+1`
//!   conjunctions instead of `2^{r+1} − 1`;
//! * [`engine`] — evaluation of all of the above against a
//!   [`SketchDb`](psketch_core::SketchDb).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod categorical;
pub mod combined;
pub mod conjunction;
pub mod dnf;
pub mod engine;
pub mod interval;
pub mod linear;
pub mod mean;
pub mod moment;
pub mod partial;
pub mod product;
pub mod sumlt;
pub mod tree;

pub use bits::PerturbedBitTable;
pub use categorical::{CategoricalAttribute, CategoricalMiner, Histogram};
pub use combined::{conditional_sum_query, conditional_sum_query_inclusive, eq_and_less_than};
pub use conjunction::{merge_constraints, Constraint};
pub use dnf::{dnf_query, dnf_required_subsets};
pub use engine::{LinearAnswer, QueryEngine};
pub use interval::{interval_required_subsets, less_equal_query, less_than_query, range_query};
pub use linear::{LinearQuery, LinearTerm};
pub use mean::{mean_query, mean_required_subsets};
pub use moment::{moment_query, variance_queries};
pub use partial::{CountAccumulator, DistributionAccumulator, LinearAccumulator};
pub use product::{inner_product_query, mean_square_query};
pub use sumlt::{naive_conjunction_count, sum_less_than_pow2, sum_lt_truth, SumLtEstimate};
pub use tree::DecisionTree;
