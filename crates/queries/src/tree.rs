//! §4.1 decision-tree queries.
//!
//! "One can estimate the fraction of users that satisfy a given decision
//! tree. Each path in the decision tree corresponds to a single conjunctive
//! query and any user satisfies at most one path of the decision tree. Thus
//! the total fraction of users who satisfy a decision tree is simply the
//! sum of the fraction of users that satisfy each path."

use crate::conjunction::{merge_constraints, Constraint};
use crate::linear::LinearQuery;
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Profile};

/// A binary decision tree over profile attributes.
#[derive(Debug, Clone)]
pub enum DecisionTree {
    /// A leaf: accept (`true`) or reject (`false`).
    Leaf(bool),
    /// An internal split on one attribute.
    Split {
        /// The attribute position tested.
        attribute: u32,
        /// Subtree taken when the attribute is 0.
        if_zero: Box<DecisionTree>,
        /// Subtree taken when the attribute is 1.
        if_one: Box<DecisionTree>,
    },
}

impl DecisionTree {
    /// Convenience constructor for a split node.
    #[must_use]
    pub fn split(attribute: u32, if_zero: DecisionTree, if_one: DecisionTree) -> Self {
        Self::Split {
            attribute,
            if_zero: Box::new(if_zero),
            if_one: Box::new(if_one),
        }
    }

    /// Evaluates the tree on a profile (ground truth).
    ///
    /// # Panics
    ///
    /// Panics if a tested attribute exceeds the profile width.
    #[must_use]
    pub fn evaluate(&self, profile: &Profile) -> bool {
        match self {
            Self::Leaf(accept) => *accept,
            Self::Split {
                attribute,
                if_zero,
                if_one,
            } => {
                if profile.get(*attribute as usize) {
                    if_one.evaluate(profile)
                } else {
                    if_zero.evaluate(profile)
                }
            }
        }
    }

    /// Depth of the tree (leaf = 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Self::Leaf(_) => 0,
            Self::Split {
                if_zero, if_one, ..
            } => 1 + if_zero.depth().max(if_one.depth()),
        }
    }

    /// Enumerates accepting root-to-leaf paths as conjunctive queries.
    ///
    /// Paths that test the same attribute twice *consistently* are
    /// deduplicated by [`merge_constraints`]; paths testing it
    /// *contradictorily* are unreachable and dropped (their frequency is
    /// identically zero).
    #[must_use]
    pub fn accepting_paths(&self) -> Vec<ConjunctiveQuery> {
        let mut paths = Vec::new();
        let mut prefix: Vec<(u32, bool)> = Vec::new();
        self.walk(&mut prefix, &mut paths);
        paths
    }

    fn walk(&self, prefix: &mut Vec<(u32, bool)>, out: &mut Vec<ConjunctiveQuery>) {
        match self {
            Self::Leaf(false) => {}
            Self::Leaf(true) => {
                if prefix.is_empty() {
                    // Accept-everything tree: handled by the compiler via
                    // the constant term; no conjunctive query exists for
                    // the empty subset.
                    return;
                }
                let constraints: Vec<Constraint> = prefix
                    .iter()
                    .map(|&(attr, v)| {
                        Constraint::new(BitSubset::single(attr), BitString::from_bits(&[v]))
                            .expect("width 1")
                    })
                    .collect();
                if let Ok(Some(q)) = merge_constraints(&constraints) {
                    out.push(q);
                }
            }
            Self::Split {
                attribute,
                if_zero,
                if_one,
            } => {
                prefix.push((*attribute, false));
                if_zero.walk(prefix, out);
                prefix.pop();
                prefix.push((*attribute, true));
                if_one.walk(prefix, out);
                prefix.pop();
            }
        }
    }

    /// Compiles the tree's acceptance fraction into a
    /// [`TermPlan`](crate::plan::TermPlan): one unit-weight term per
    /// accepting path (paths are disjoint, so the sum is the fraction).
    #[must_use]
    pub fn to_plan(&self) -> crate::plan::TermPlan {
        crate::plan::TermPlan::compile(&self.to_linear_query())
    }

    /// Compiles "fraction of users accepted by this tree" into a linear
    /// query: one unit-weight term per accepting path.
    #[must_use]
    pub fn to_linear_query(&self) -> LinearQuery {
        let mut lq = LinearQuery::new(format!("decision tree (depth {})", self.depth()));
        if matches!(self, Self::Leaf(true)) {
            lq.constant = 1.0;
            return lq;
        }
        for q in self.accepting_paths() {
            lq.push(1.0, q);
        }
        lq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::{RngExt, SeedableRng};

    /// x0 ? (x1 ? accept : reject) : (x2 ? reject : accept)
    fn sample_tree() -> DecisionTree {
        DecisionTree::split(
            0,
            DecisionTree::split(2, DecisionTree::Leaf(true), DecisionTree::Leaf(false)),
            DecisionTree::split(1, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
        )
    }

    #[test]
    fn evaluate_matches_structure() {
        let t = sample_tree();
        assert!(t.evaluate(&Profile::from_bits(&[true, true, false])));
        assert!(!t.evaluate(&Profile::from_bits(&[true, false, false])));
        assert!(t.evaluate(&Profile::from_bits(&[false, true, false])));
        assert!(!t.evaluate(&Profile::from_bits(&[false, true, true])));
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn paths_partition_acceptance() {
        // Sum of path frequencies over all 8 profiles = acceptance rate.
        let t = sample_tree();
        let paths = t.accepting_paths();
        assert_eq!(paths.len(), 2);
        let profiles: Vec<Profile> = (0..8u64)
            .map(|v| Profile::from_bits(&[(v & 1) == 1, (v & 2) == 2, (v & 4) == 4]))
            .collect();
        for p in &profiles {
            let direct = t.evaluate(p);
            let by_paths = paths
                .iter()
                .filter(|q| p.satisfies(q.subset(), q.value()))
                .count();
            assert!(by_paths <= 1, "paths must be disjoint");
            assert_eq!(direct, by_paths == 1);
        }
    }

    #[test]
    fn linear_query_matches_brute_force_on_random_trees() {
        let mut rng = Prg::seed_from_u64(41);
        // Random depth-3 trees over 4 attributes, possibly retesting bits.
        for _ in 0..25 {
            let tree = random_tree(&mut rng, 3, 4);
            let lq = tree.to_linear_query();
            let profiles: Vec<Profile> = (0..16u64)
                .map(|v| Profile::from_bits(&[v & 1 == 1, v & 2 == 2, v & 4 == 4, v & 8 == 8]))
                .collect();
            let expected = profiles.iter().filter(|p| tree.evaluate(p)).count() as f64 / 16.0;
            let got = lq
                .evaluate_with(|q| {
                    Ok(profiles
                        .iter()
                        .filter(|p| p.satisfies(q.subset(), q.value()))
                        .count() as f64
                        / 16.0)
                })
                .unwrap();
            assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
        }
    }

    fn random_tree<R: rand::Rng + ?Sized>(rng: &mut R, depth: usize, attrs: u32) -> DecisionTree {
        if depth == 0 || rng.random::<f64>() < 0.3 {
            return DecisionTree::Leaf(rng.random());
        }
        DecisionTree::split(
            rng.random_range(0..attrs),
            random_tree(rng, depth - 1, attrs),
            random_tree(rng, depth - 1, attrs),
        )
    }

    #[test]
    fn contradictory_paths_are_dropped() {
        // x0 ? (x0 ? reject : accept) : reject — the accepting path needs
        // x0 = 1 and x0 = 0 simultaneously: unreachable.
        let t = DecisionTree::split(
            0,
            DecisionTree::Leaf(false),
            DecisionTree::split(0, DecisionTree::Leaf(true), DecisionTree::Leaf(false)),
        );
        assert!(t.accepting_paths().is_empty());
        assert_eq!(t.to_linear_query().num_queries(), 0);
    }

    #[test]
    fn duplicate_consistent_tests_are_merged() {
        // x0 ? (x0 ? accept : _) : reject — accepting path tests x0 twice,
        // consistently; merged to a single-literal conjunction.
        let t = DecisionTree::split(
            0,
            DecisionTree::Leaf(false),
            DecisionTree::split(0, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
        );
        let paths = t.accepting_paths();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].width(), 1);
    }

    #[test]
    fn trivial_trees() {
        assert_eq!(DecisionTree::Leaf(true).to_linear_query().constant, 1.0);
        assert_eq!(DecisionTree::Leaf(false).to_linear_query().num_queries(), 0);
        assert_eq!(DecisionTree::Leaf(false).to_linear_query().constant, 0.0);
    }
}
