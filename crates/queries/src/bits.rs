//! Perturbed-bit tables and the unbiased product estimator.
//!
//! Appendix E works with *virtual bits*: each user's published data induces
//! a table of bits where bit `i` equals the truth flipped independently
//! with a known probability `pᵢ` (physical randomized-response bits flip at
//! `p`; an XOR of two such bits flips at `2p(1−p)`; a sketch-derived
//! indicator `H(id, B, v, s)` flips at `p`). [`PerturbedBitTable`] is that
//! abstraction.
//!
//! Conjunctions over heterogeneously-perturbed bits are estimated with the
//! **product estimator**: for a single bit, `ẑ = (x̃ᵢ==vᵢ ? 1 : 0 − pᵢ)/(1−2pᵢ)`
//! is an unbiased estimator of the indicator `[xᵢ = vᵢ]`; since flips are
//! independent across bits, the product `Πᵢ ẑᵢ` is unbiased for the
//! conjunction indicator. Its variance grows like `Πᵢ (1−2pᵢ)⁻²` — the
//! exponential-in-width error growth the paper attributes to
//! randomized-response style schemes, and the foil for its own
//! width-independent sketches (experiment E5 measures both).

use psketch_core::{
    BitString, BitSubset, ConjunctiveQuery, Error, HFunction, SketchDb, SketchParams, UserId,
};
use std::collections::HashMap;

/// A table of perturbed bits: rows = users, columns = bits with known
/// per-column flip probabilities.
#[derive(Debug, Clone)]
pub struct PerturbedBitTable {
    flips: Vec<f64>,
    rows: Vec<Vec<bool>>,
}

impl PerturbedBitTable {
    /// Creates an empty table with the given per-column flip probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any flip probability is outside `[0, 1/2)` — the product
    /// estimator divides by `1 − 2pᵢ`.
    #[must_use]
    pub fn new(flips: Vec<f64>) -> Self {
        assert!(
            flips.iter().all(|&f| (0.0..0.5).contains(&f)),
            "flip probabilities must lie in [0, 1/2)"
        );
        Self {
            flips,
            rows: Vec::new(),
        }
    }

    /// Number of columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.flips.len()
    }

    /// Number of rows (users).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The flip probability of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn flip(&self, c: usize) -> f64 {
        self.flips[c]
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// [`Error::WidthMismatch`] if the row width differs from the table's.
    pub fn push_row(&mut self, row: Vec<bool>) -> Result<(), Error> {
        if row.len() != self.flips.len() {
            return Err(Error::WidthMismatch {
                subset: self.flips.len(),
                value: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Appends a derived column `col_a XOR col_b` to every row and returns
    /// its index.
    ///
    /// If the sources flip at `p_a` and `p_b`, the XOR flips at
    /// `p_a(1−p_b) + p_b(1−p_a)` — the paper's `2p(1−p)` when both equal
    /// `p` ("q̃ = ã ⊕ b̃ are 2p(1−p)-perturbed variants of q").
    ///
    /// # Panics
    ///
    /// Panics if either column is out of range, or if the combined flip
    /// reaches 1/2 (information-free column).
    pub fn add_xor_column(&mut self, col_a: usize, col_b: usize) -> usize {
        let (pa, pb) = (self.flips[col_a], self.flips[col_b]);
        let flip = pa * (1.0 - pb) + pb * (1.0 - pa);
        assert!(
            flip < 0.5,
            "XOR column would flip at {flip} >= 1/2 (no signal left)"
        );
        self.flips.push(flip);
        for row in &mut self.rows {
            let v = row[col_a] ^ row[col_b];
            row.push(v);
        }
        self.flips.len() - 1
    }

    /// Unbiased product-estimator for the conjunction
    /// `∧ (bit_{cᵢ} = vᵢ)` over the table's rows.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] on an empty table.
    ///
    /// # Panics
    ///
    /// Panics if a constrained column is out of range.
    pub fn estimate_conjunction(&self, constraints: &[(usize, bool)]) -> Result<f64, Error> {
        if self.rows.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        // Precompute per-column scaling.
        let scaled: Vec<(usize, bool, f64, f64)> = constraints
            .iter()
            .map(|&(c, v)| {
                let p = self.flips[c];
                (c, v, p, 1.0 - 2.0 * p)
            })
            .collect();
        let total: f64 = self
            .rows
            .iter()
            .map(|row| {
                scaled
                    .iter()
                    .map(|&(c, v, p, denom)| {
                        let hit = f64::from(row[c] == v);
                        (hit - p) / denom
                    })
                    .product::<f64>()
            })
            .sum();
        Ok(total / self.rows.len() as f64)
    }

    /// The variance inflation factor of the product estimator for a set of
    /// columns: `Πᵢ (1−2pᵢ)⁻²` — the quantity that grows exponentially in
    /// the conjunction width (reported by experiment E5/E11 tables).
    #[must_use]
    pub fn variance_inflation(&self, columns: &[usize]) -> f64 {
        columns
            .iter()
            .map(|&c| (1.0 - 2.0 * self.flips[c]).powi(-2))
            .product()
    }

    /// Materializes a virtual-bit table from a sketch database.
    ///
    /// Column `i` is the indicator `[d_{Bᵢ} = vᵢ]` perturbed at flip
    /// probability `p`, realized as `H(id, Bᵢ, vᵢ, s_{u,i})` (Lemma 3.2).
    /// Only users holding sketches for *every* requested column appear.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownSubset`] if a column's subset has no sketches;
    /// * [`Error::EmptyDatabase`] if no user covers all columns.
    pub fn from_sketches(
        params: &SketchParams,
        db: &SketchDb,
        columns: &[(BitSubset, BitString)],
    ) -> Result<Self, Error> {
        let h = HFunction::new(params);
        let k = columns.len();
        let mut per_user: HashMap<UserId, Vec<Option<bool>>> = HashMap::new();
        for (i, (subset, value)) in columns.iter().enumerate() {
            // Validate widths through the query type.
            let _ = ConjunctiveQuery::new(subset.clone(), value.clone())?;
            let snapshot = db.snapshot(subset)?;
            let mut prepared = h.prepare_query(subset, value);
            for rec in snapshot.records() {
                prepared.set_record(rec.id.0, rec.sketch.key);
                per_user.entry(rec.id).or_insert_with(|| vec![None; k])[i] = Some(prepared.eval());
            }
        }
        let mut table = Self::new(vec![params.p(); k]);
        for bits in per_user.into_values() {
            if let Some(row) = bits.into_iter().collect::<Option<Vec<bool>>>() {
                table.push_row(row)?;
            }
        }
        if table.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        Ok(table)
    }
}

/// Compiles a conjunction over sketch-backed perturbed-bit columns into
/// a [`TermPlan`](crate::plan::TermPlan).
///
/// The product estimator answers `freq(∧ᵢ d_{Bᵢ} = vᵢ)` from
/// heterogeneous per-column tables; when every column is a *sketched*
/// indicator, the same question is a single conjunctive query on the
/// **merged** subset — one term, one scan, width-independent error
/// (Lemma 4.1) instead of the product estimator's
/// `Π (1−2pᵢ)⁻²` variance inflation. Contradictory columns compile to a
/// constant-zero output, exactly as the table's conjunction would be
/// empty.
///
/// # Errors
///
/// [`Error::WidthMismatch`] if a column's value width disagrees with
/// its subset.
pub fn perturbed_conjunction_plan(
    columns: &[(BitSubset, BitString)],
) -> Result<crate::plan::TermPlan, Error> {
    let constraints: Vec<crate::conjunction::Constraint> = columns
        .iter()
        .map(|(subset, value)| crate::conjunction::Constraint::new(subset.clone(), value.clone()))
        .collect::<Result<_, _>>()?;
    let mut plan = crate::plan::TermPlan::new(format!(
        "conjunction over {} perturbed-bit columns",
        columns.len()
    ));
    plan.begin_output("frequency", 0.0);
    if let Some(query) = crate::conjunction::merge_constraints(&constraints)? {
        plan.push_term(1.0, query);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::{RngExt, SeedableRng};

    /// Builds a table by flipping planted truths.
    fn planted_table(truths: &[Vec<bool>], flips: &[f64], rng: &mut Prg) -> PerturbedBitTable {
        let mut t = PerturbedBitTable::new(flips.to_vec());
        for truth in truths {
            let row = truth
                .iter()
                .zip(flips)
                .map(|(&b, &p)| b ^ (rng.random::<f64>() < p))
                .collect();
            t.push_row(row).unwrap();
        }
        t
    }

    #[test]
    fn product_estimator_is_unbiased() {
        let mut rng = Prg::seed_from_u64(50);
        // 60% of users have (1,1), 40% have (1,0).
        let truths: Vec<Vec<bool>> = (0..50_000).map(|i| vec![true, i % 5 < 3]).collect();
        let t = planted_table(&truths, &[0.2, 0.3], &mut rng);
        let est = t.estimate_conjunction(&[(0, true), (1, true)]).unwrap();
        assert!((est - 0.6).abs() < 0.02, "estimate {est}");
        let neg = t.estimate_conjunction(&[(0, true), (1, false)]).unwrap();
        assert!((neg - 0.4).abs() < 0.02, "negated estimate {neg}");
    }

    #[test]
    fn heterogeneous_flip_probabilities() {
        let mut rng = Prg::seed_from_u64(51);
        let truths: Vec<Vec<bool>> = (0..40_000).map(|i| vec![i % 2 == 0, true, false]).collect();
        let t = planted_table(&truths, &[0.1, 0.35, 0.05], &mut rng);
        let est = t
            .estimate_conjunction(&[(0, true), (1, true), (2, false)])
            .unwrap();
        assert!((est - 0.5).abs() < 0.03, "estimate {est}");
    }

    #[test]
    fn xor_column_flip_probability() {
        let mut t = PerturbedBitTable::new(vec![0.2, 0.2]);
        t.push_row(vec![true, false]).unwrap();
        let c = t.add_xor_column(0, 1);
        // 2·0.2·0.8 = 0.32.
        assert!((t.flip(c) - 0.32).abs() < 1e-12);
        assert_eq!(t.width(), 3);
        assert!(t.rows[0][c]); // true XOR false
    }

    #[test]
    fn xor_column_estimates_parity() {
        let mut rng = Prg::seed_from_u64(52);
        // Truth: 70% have a ⊕ b = 1 (via (1,0)); 30% have (1,1).
        let truths: Vec<Vec<bool>> = (0..60_000).map(|i| vec![true, i % 10 < 3]).collect();
        let mut t = planted_table(&truths, &[0.15, 0.15], &mut rng);
        let q = t.add_xor_column(0, 1);
        let est = t.estimate_conjunction(&[(q, true)]).unwrap();
        assert!((est - 0.7).abs() < 0.02, "parity estimate {est}");
    }

    #[test]
    fn variance_inflation_formula() {
        let t = PerturbedBitTable::new(vec![0.25, 0.25, 0.4]);
        // (1/0.5)² · (1/0.5)² · (1/0.2)² = 4 · 4 · 25.
        assert!((t.variance_inflation(&[0, 1, 2]) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn width_checks() {
        let mut t = PerturbedBitTable::new(vec![0.1]);
        assert!(matches!(
            t.push_row(vec![true, false]),
            Err(Error::WidthMismatch { .. })
        ));
        assert!(matches!(
            t.estimate_conjunction(&[(0, true)]),
            Err(Error::EmptyDatabase)
        ));
    }

    #[test]
    #[should_panic(expected = "flip probabilities must lie in")]
    fn rejects_flip_at_half() {
        let _ = PerturbedBitTable::new(vec![0.5]);
    }

    #[test]
    fn xor_chains_approach_but_never_reach_half() {
        // Repeated XOR degrades the signal monotonically towards (but
        // mathematically never reaching) the information-free flip of 1/2.
        let mut t = PerturbedBitTable::new(vec![0.45, 0.45]);
        t.push_row(vec![true, false]).unwrap();
        let mut col = t.add_xor_column(0, 1);
        let mut last = t.flip(col);
        for _ in 0..6 {
            let next = t.add_xor_column(col, 0);
            assert!(t.flip(next) > last, "flip must degrade monotonically");
            assert!(t.flip(next) < 0.5, "flip must stay below 1/2");
            last = t.flip(next);
            col = next;
        }
    }
}
