//! Appendix E — "How many users satisfy a_u + b_u < 2^r?"
//!
//! The naive conjunctive expansion of this query is exponential in `r`:
//! the condition "exactly one of aᵢ, bᵢ is 1" at each inspected position
//! multiplies the number of raw conjunctions by two per position. The
//! paper's fix is **variable substitution**: introduce the virtual bit
//! `qᵢ = aᵢ ⊕ bᵢ`, observable in perturbed form as `q̃ᵢ = ãᵢ ⊕ b̃ᵢ` with
//! flip probability `2p(1−p)`, and note that `a + b < 2^r` decomposes into
//! `r + 1` disjoint events, each a conjunction over q-bits and two real
//! bits:
//!
//! * for some `j ∈ 1..=r`: the `j−1` highest low-order positions all have
//!   `q = 1`, and at position `j` both `a` and `b` are 0 (the sum of the
//!   tail is then `< 2^{r−j+1} + … ` — bounded below `2^r`), or
//! * all `r` low-order positions have `q = 1` (sum = `2^r − 1`),
//!
//! in every case with all bits of weight `≥ 2^r` equal to zero for both
//! attributes.

use crate::bits::PerturbedBitTable;
use psketch_core::{Error, IntField};

/// Accounting for the Appendix E estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SumLtEstimate {
    /// The estimated fraction of users with `a + b < 2^r`.
    pub fraction: f64,
    /// Number of (virtual-bit) conjunction estimates evaluated: `r + 1`.
    pub conjunctions_used: usize,
    /// Number of raw conjunctive queries the naive expansion would need.
    pub naive_conjunctions: u64,
}

/// Estimates `freq(a + b < 2^r)` from a perturbed bit table.
///
/// `a_cols`/`b_cols` are the columns of the two attributes' bits, **MSB
/// first** (both of width `k`); `r` selects the threshold `2^r`, `0 < r ≤ k`.
///
/// # Errors
///
/// Propagates table errors ([`Error::EmptyDatabase`]).
///
/// # Panics
///
/// Panics on width mismatch between `a_cols` and `b_cols` or `r` out of
/// range.
pub fn sum_less_than_pow2(
    table: &PerturbedBitTable,
    a_cols: &[usize],
    b_cols: &[usize],
    r: u32,
) -> Result<SumLtEstimate, Error> {
    let k = a_cols.len();
    assert_eq!(k, b_cols.len(), "attribute widths must match");
    assert!(r >= 1 && (r as usize) <= k, "r must satisfy 1 <= r <= k");
    let r = r as usize;

    // Work on a copy so the XOR columns do not pollute the caller's table.
    let mut t = table.clone();

    // High bits: positions 0 .. k−r (MSB-first indices) carry weight ≥ 2^r.
    let high = k - r;
    let mut high_constraints: Vec<(usize, bool)> = Vec::with_capacity(2 * high);
    for i in 0..high {
        high_constraints.push((a_cols[i], false));
        high_constraints.push((b_cols[i], false));
    }

    // Virtual q-bits for the r low positions (MSB of the low block first).
    let q_cols: Vec<usize> = (high..k)
        .map(|i| t.add_xor_column(a_cols[i], b_cols[i]))
        .collect();

    let mut total = 0.0;
    let mut conjunctions_used = 0;
    // Event j (1-based over the low block): q = 1 at low positions
    // 1..j−1, and a = b = 0 at low position j.
    for j in 1..=r {
        let mut constraints = high_constraints.clone();
        for &q in &q_cols[..j - 1] {
            constraints.push((q, true));
        }
        constraints.push((a_cols[high + j - 1], false));
        constraints.push((b_cols[high + j - 1], false));
        total += t.estimate_conjunction(&constraints)?;
        conjunctions_used += 1;
    }
    // The all-q event: every low position has exactly one of a, b set;
    // the low sum is exactly 2^r − 1 < 2^r.
    let mut constraints = high_constraints.clone();
    for &q in &q_cols {
        constraints.push((q, true));
    }
    total += t.estimate_conjunction(&constraints)?;
    conjunctions_used += 1;

    Ok(SumLtEstimate {
        fraction: total,
        conjunctions_used,
        naive_conjunctions: naive_conjunction_count(r as u32),
    })
}

/// The number of raw conjunctive queries the naive expansion needs: each
/// event with `j−1` q-constraints expands into `2^{j−1}` conjunctions over
/// physical bits, so `Σ_{j=1}^{r} 2^{j−1} + 2^r = 2^{r+1} − 1`.
#[must_use]
pub fn naive_conjunction_count(r: u32) -> u64 {
    (1u64 << (r + 1)) - 1
}

/// Compiles `freq(a + b < 2^r)` into a
/// [`TermPlan`](crate::plan::TermPlan) over **physical** bit
/// conjunctions — the route that executes against sketch pools (local,
/// server, or sharded cluster), where no XOR virtual bit exists.
///
/// Each disjoint event of the Appendix E decomposition is expanded over
/// the `2^{j−1}` physical assignments of its q-constraints (`qᵢ = 1` ⇔
/// exactly one of `aᵢ, bᵢ` is set), yielding
/// [`naive_conjunction_count`]`(r)` unit-weight terms. That is the
/// exponential cost the paper's virtual-bit trick avoids *when a
/// perturbed-bit table is available* ([`sum_less_than_pow2`]); the plan
/// form trades those `r + 1` wide-variance product estimates for
/// `2^{r+1} − 1` width-independent sketch estimates, and is what a
/// sharded deployment can actually merge exactly.
///
/// # Panics
///
/// Panics if the fields overlap, widths differ, or `r` is outside
/// `1..=width`. `r` is further capped at 15: the term count is
/// `2^{r+1} − 1`, and `r = 15` (65 535 terms) is the largest plan that
/// still fits a serving node's 65 536-term cap.
#[must_use]
pub fn sum_lt_plan(a: &IntField, b: &IntField, r: u32) -> crate::plan::TermPlan {
    use crate::conjunction::{merge_constraints, Constraint};
    use psketch_core::BitString;

    let k = a.width();
    assert_eq!(k, b.width(), "attribute widths must match");
    assert!(
        a.end() <= b.offset() || b.end() <= a.offset(),
        "fields must be disjoint"
    );
    assert!(r >= 1 && r <= k, "r must satisfy 1 <= r <= k");
    assert!(
        r <= 15,
        "r capped at 15 (the expansion is 2^(r+1) - 1 terms and must fit a server's plan cap)"
    );
    let high = k - r;
    let bit = |field: &IntField, i: u32, set: bool| {
        Constraint::new(field.bit_subset(i), BitString::from_bits(&[set])).expect("width 1")
    };
    // High bits (weight ≥ 2^r) must be zero in both attributes.
    let high_constraints: Vec<Constraint> = (1..=high)
        .flat_map(|i| [bit(a, i, false), bit(b, i, false)])
        .collect();
    let mut plan =
        crate::plan::TermPlan::new(format!("freq(a@{} + b@{} < 2^{r})", a.offset(), b.offset()));
    plan.begin_output("frequency", 0.0);
    // Event j ∈ 1..=r: q = 1 at low positions 1..j−1, a = b = 0 at low
    // position j. Event r + 1: q = 1 at every low position. Each
    // q-constraint expands over its two physical realizations.
    for j in 1..=r + 1 {
        let q_positions = if j <= r { j - 1 } else { r };
        for mask in 0..(1u32 << q_positions) {
            let mut constraints = high_constraints.clone();
            for t in 1..=q_positions {
                // q_t = 1: exactly one of a, b is set at low position t.
                let a_set = mask & (1 << (t - 1)) != 0;
                constraints.push(bit(a, high + t, a_set));
                constraints.push(bit(b, high + t, !a_set));
            }
            if j <= r {
                constraints.push(bit(a, high + j, false));
                constraints.push(bit(b, high + j, false));
            }
            let query = merge_constraints(&constraints)
                .expect("non-empty constraints")
                .expect("distinct single bits cannot contradict");
            plan.push_term(1.0, query);
        }
    }
    plan
}

/// Ground-truth check: does `a + b < 2^r`?
#[must_use]
pub fn sum_lt_truth(a: u64, b: u64, r: u32) -> bool {
    a + b < (1u64 << r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::{RngExt, SeedableRng};

    /// Builds a physical-bit table at flip probability `p` for pairs of
    /// k-bit values, columns `[a₁…a_k b₁…b_k]` MSB first.
    fn table_for(
        pairs: &[(u64, u64)],
        k: usize,
        p: f64,
        rng: &mut Prg,
    ) -> (PerturbedBitTable, Vec<usize>, Vec<usize>) {
        let mut t = PerturbedBitTable::new(vec![p; 2 * k]);
        for &(a, b) in pairs {
            let mut row = Vec::with_capacity(2 * k);
            for i in (0..k).rev() {
                row.push((a >> i) & 1 == 1);
            }
            for i in (0..k).rev() {
                row.push((b >> i) & 1 == 1);
            }
            let noisy = row
                .into_iter()
                .map(|bit| bit ^ (rng.random::<f64>() < p))
                .collect();
            t.push_row(noisy).unwrap();
        }
        let a_cols: Vec<usize> = (0..k).collect();
        let b_cols: Vec<usize> = (k..2 * k).collect();
        (t, a_cols, b_cols)
    }

    #[test]
    fn decomposition_is_exact_without_noise() {
        // p = tiny: estimates are essentially exact; verify the event
        // decomposition itself against brute force for every (a, b, r).
        let k = 4usize;
        let mut rng = Prg::seed_from_u64(60);
        let pairs: Vec<(u64, u64)> = (0..16u64)
            .flat_map(|a| (0..16u64).map(move |b| (a, b)))
            .collect();
        let (t, a_cols, b_cols) = table_for(&pairs, k, 1e-12, &mut rng);
        for r in 1..=4u32 {
            let est = sum_less_than_pow2(&t, &a_cols, &b_cols, r).unwrap();
            let truth = pairs
                .iter()
                .filter(|&&(a, b)| sum_lt_truth(a, b, r))
                .count() as f64
                / pairs.len() as f64;
            assert!(
                (est.fraction - truth).abs() < 1e-6,
                "r={r}: {} vs {truth}",
                est.fraction
            );
            assert_eq!(est.conjunctions_used, r as usize + 1);
        }
    }

    #[test]
    fn noisy_estimate_recovers_truth() {
        let k = 4usize;
        let p = 0.1;
        let mut rng = Prg::seed_from_u64(61);
        // 60k users drawn uniformly over pairs.
        let pairs: Vec<(u64, u64)> = (0..60_000)
            .map(|_| (rng.random_range(0..16u64), rng.random_range(0..16u64)))
            .collect();
        let (t, a_cols, b_cols) = table_for(&pairs, k, p, &mut rng);
        let r = 3u32;
        let est = sum_less_than_pow2(&t, &a_cols, &b_cols, r).unwrap();
        let truth = pairs
            .iter()
            .filter(|&&(a, b)| sum_lt_truth(a, b, r))
            .count() as f64
            / pairs.len() as f64;
        assert!(
            (est.fraction - truth).abs() < 0.05,
            "estimate {} vs truth {truth}",
            est.fraction
        );
    }

    #[test]
    fn query_count_is_linear_not_exponential() {
        assert_eq!(naive_conjunction_count(1), 3);
        assert_eq!(naive_conjunction_count(4), 31);
        assert_eq!(naive_conjunction_count(10), 2047);
        let k = 6usize;
        let mut rng = Prg::seed_from_u64(62);
        let (t, a_cols, b_cols) = table_for(&[(1, 2), (3, 4)], k, 0.01, &mut rng);
        let est = sum_less_than_pow2(&t, &a_cols, &b_cols, 6).unwrap();
        assert_eq!(est.conjunctions_used, 7);
        assert_eq!(est.naive_conjunctions, 127);
    }

    #[test]
    fn physical_plan_matches_brute_force_exactly() {
        use psketch_core::{Estimate, IntField, Profile};
        let k = 4u32;
        let a = IntField::new(0, k);
        let b = IntField::new(k, k);
        let pairs: Vec<(u64, u64)> = (0..16u64)
            .flat_map(|x| (0..16u64).map(move |y| (x, y)))
            .collect();
        for r in 1..=k {
            let plan = sum_lt_plan(&a, &b, r);
            assert_eq!(plan.cost() as u64, naive_conjunction_count(r));
            // Exact oracle: every term's frequency from the pair cube.
            let estimates: Vec<Estimate> = plan
                .terms()
                .iter()
                .map(|q| {
                    let hits = pairs
                        .iter()
                        .filter(|&&(x, y)| {
                            let mut p = Profile::zeros(2 * k as usize);
                            a.write(&mut p, x);
                            b.write(&mut p, y);
                            p.satisfies(q.subset(), q.value())
                        })
                        .count();
                    Estimate {
                        fraction: hits as f64 / pairs.len() as f64,
                        raw: 0.0,
                        sample_size: pairs.len(),
                        p: 0.0,
                    }
                })
                .collect();
            let got = plan.evaluate(&estimates).unwrap()[0].value;
            let truth = pairs
                .iter()
                .filter(|&&(x, y)| sum_lt_truth(x, y, r))
                .count() as f64
                / pairs.len() as f64;
            assert!((got - truth).abs() < 1e-9, "r={r}: {got} vs {truth}");
        }
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn mismatched_widths_rejected() {
        let t = PerturbedBitTable::new(vec![0.1; 3]);
        let _ = sum_less_than_pow2(&t, &[0, 1], &[2], 1);
    }

    #[test]
    #[should_panic(expected = "1 <= r <= k")]
    fn r_out_of_range_rejected() {
        let t = PerturbedBitTable::new(vec![0.1; 4]);
        let _ = sum_less_than_pow2(&t, &[0, 1], &[2, 3], 3);
    }
}
