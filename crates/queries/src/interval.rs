//! §4.1 interval queries — "How many users have salary less than c?"
//!
//! The paper's decomposition: `x < c` iff there is a (unique) bit position
//! `i` with `x₁…x_{i−1} = c₁…c_{i−1}` and `xᵢ < cᵢ` (so `cᵢ = 1`,
//! `xᵢ = 0`). Hence
//!
//! `|{u : a_u < c}| = Σ_{i : cᵢ = 1} I(Aᵢ-prefix, c₁…c_{i−1}·0)`,
//!
//! one prefix-conjunction per set bit of `c` — "the number of queries we
//! need to ask is equal to how many '1's are in the binary representation
//! of c". (The paper writes `≤ c` but its decomposition is the strict
//! form; `≤` adds the single equality query `I(A, c)`. Both are provided.)

use crate::linear::LinearQuery;
use psketch_core::{ConjunctiveQuery, IntField};

/// Compiles `freq(a < c)` into popcount(c) prefix conjunctions.
///
/// # Panics
///
/// Panics if `c > field.max_value()`.
#[must_use]
pub fn less_than_query(field: &IntField, c: u64) -> LinearQuery {
    assert!(c <= field.max_value(), "threshold exceeds field range");
    let k = field.width();
    let mut lq = LinearQuery::new(format!("freq(field@{} < {c})", field.offset()));
    for i in 1..=k {
        let ci = (c >> (k - i)) & 1;
        if ci == 0 {
            continue;
        }
        // Value: c₁ … c_{i−1} followed by 0 at position i.
        let mut prefix = field.prefix_value(c, i);
        prefix.set((i - 1) as usize, false);
        let query = ConjunctiveQuery::new(field.prefix_subset(i), prefix)
            .expect("prefix widths match by construction");
        lq.push(1.0, query);
    }
    lq
}

/// Compiles `freq(a ≤ c)`: the strict decomposition plus the equality
/// query `I(A, c)`.
///
/// # Panics
///
/// Panics if `c > field.max_value()`.
#[must_use]
pub fn less_equal_query(field: &IntField, c: u64) -> LinearQuery {
    let mut lq = less_than_query(field, c);
    lq.description = format!("freq(field@{} <= {c})", field.offset());
    let eq = ConjunctiveQuery::new(field.subset(), field.full_value(c))
        .expect("full widths match by construction");
    lq.push(1.0, eq);
    lq
}

/// Compiles `freq(lo ≤ a ≤ hi)` as `freq(a ≤ hi) − freq(a < lo)`.
///
/// # Panics
///
/// Panics unless `lo ≤ hi ≤ field.max_value()`.
#[must_use]
pub fn range_query(field: &IntField, lo: u64, hi: u64) -> LinearQuery {
    assert!(lo <= hi, "empty range");
    let mut lq = LinearQuery::new(format!("freq({lo} <= field@{} <= {hi})", field.offset()));
    for term in less_equal_query(field, hi).terms() {
        match &term.query {
            Some(q) => lq.push(term.coeff, q.clone()),
            None => lq.push_zero(term.coeff),
        };
    }
    if lo > 0 {
        for term in less_than_query(field, lo).terms() {
            match &term.query {
                Some(q) => lq.push(-term.coeff, q.clone()),
                None => lq.push_zero(-term.coeff),
            };
        }
    }
    lq
}

/// Compiles `freq(a < c)` into a [`TermPlan`](crate::plan::TermPlan).
///
/// # Panics
///
/// As [`less_than_query`].
#[must_use]
pub fn less_than_plan(field: &IntField, c: u64) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&less_than_query(field, c))
}

/// Compiles `freq(a ≤ c)` into a [`TermPlan`](crate::plan::TermPlan).
///
/// # Panics
///
/// As [`less_equal_query`].
#[must_use]
pub fn less_equal_plan(field: &IntField, c: u64) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&less_equal_query(field, c))
}

/// Compiles `freq(lo ≤ a ≤ hi)` into a [`TermPlan`](crate::plan::TermPlan).
///
/// # Panics
///
/// As [`range_query`].
#[must_use]
pub fn range_plan(field: &IntField, lo: u64, hi: u64) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&range_query(field, lo, hi))
}

/// The prefix subsets a population must sketch so that *every* interval
/// query on `field` is answerable: `A₁, A₂, …, A_k` (plus the full subset,
/// which equals `A_k`).
#[must_use]
pub fn interval_required_subsets(field: &IntField) -> Vec<psketch_core::BitSubset> {
    (1..=field.width())
        .map(|i| field.prefix_subset(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::Profile;

    fn oracle_for<'a>(
        values: &'a [u64],
        field: &'a IntField,
    ) -> impl Fn(&ConjunctiveQuery) -> f64 + 'a {
        let width = field.end() as usize;
        move |q: &ConjunctiveQuery| {
            let hits = values
                .iter()
                .filter(|&&v| {
                    let mut p = Profile::zeros(width);
                    field.write(&mut p, v);
                    p.satisfies(q.subset(), q.value())
                })
                .count();
            hits as f64 / values.len() as f64
        }
    }

    #[test]
    fn strict_and_inclusive_match_brute_force() {
        let field = IntField::new(0, 6);
        let values: Vec<u64> = (0..64).collect();
        let oracle = oracle_for(&values, &field);
        for c in [0u64, 1, 17, 31, 32, 63] {
            let lt = less_than_query(&field, c)
                .evaluate_with(|q| Ok(oracle(q)))
                .unwrap();
            let le = less_equal_query(&field, c)
                .evaluate_with(|q| Ok(oracle(q)))
                .unwrap();
            let expected_lt = values.iter().filter(|&&v| v < c).count() as f64 / 64.0;
            let expected_le = values.iter().filter(|&&v| v <= c).count() as f64 / 64.0;
            assert!((lt - expected_lt).abs() < 1e-12, "c={c}: lt {lt}");
            assert!((le - expected_le).abs() < 1e-12, "c={c}: le {le}");
        }
    }

    #[test]
    fn skewed_population_brute_force() {
        let field = IntField::new(2, 5);
        let values = [0u64, 0, 3, 9, 9, 9, 30, 31];
        let oracle = oracle_for(&values, &field);
        for c in 0..=31u64 {
            let got = less_equal_query(&field, c)
                .evaluate_with(|q| Ok(oracle(q)))
                .unwrap();
            let expected = values.iter().filter(|&&v| v <= c).count() as f64 / 8.0;
            assert!((got - expected).abs() < 1e-12, "c={c}");
        }
    }

    #[test]
    fn query_count_is_popcount() {
        let field = IntField::new(0, 8);
        assert_eq!(less_than_query(&field, 0b1011_0100).num_queries(), 4);
        assert_eq!(less_than_query(&field, 0).num_queries(), 0);
        assert_eq!(less_than_query(&field, 0xFF).num_queries(), 8);
        // ≤ adds the equality query.
        assert_eq!(less_equal_query(&field, 0b100).num_queries(), 2);
    }

    #[test]
    fn range_matches_brute_force() {
        let field = IntField::new(0, 5);
        let values: Vec<u64> = (0..32).flat_map(|v| [v, v % 7]).collect();
        let oracle = oracle_for(&values, &field);
        for &(lo, hi) in &[(0u64, 31u64), (3, 9), (5, 5), (0, 0), (30, 31)] {
            let got = range_query(&field, lo, hi)
                .evaluate_with(|q| Ok(oracle(q)))
                .unwrap();
            let expected =
                values.iter().filter(|&&v| v >= lo && v <= hi).count() as f64 / values.len() as f64;
            assert!(
                (got - expected).abs() < 1e-12,
                "[{lo},{hi}]: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn required_subsets_are_prefixes() {
        let field = IntField::new(4, 3);
        let subs = interval_required_subsets(&field);
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].positions(), &[4]);
        assert_eq!(subs[2].positions(), &[4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "exceeds field range")]
    fn threshold_out_of_range() {
        let field = IntField::new(0, 3);
        let _ = less_than_query(&field, 8);
    }
}
