//! Linear combinations of conjunctive queries.
//!
//! Every derived query of §4.1 — sums, means, inner products, intervals,
//! combined constraints, decision trees — reduces to a linear combination
//! `Σ coeffⱼ · I(Bⱼ, vⱼ)/M` of conjunctive frequencies. [`LinearQuery`] is
//! that normal form; the compilers in this crate produce it and the
//! [`QueryEngine`](crate::engine::QueryEngine) evaluates it against a
//! sketch database (or any other frequency oracle: ground truth, a
//! randomized-response table, …).

use psketch_core::{BitSubset, ConjunctiveQuery, Error};

/// One weighted conjunctive term.
#[derive(Debug, Clone)]
pub struct LinearTerm {
    /// The weight applied to the term's frequency.
    pub coeff: f64,
    /// The conjunctive query; `None` encodes a provably-unsatisfiable
    /// conjunction whose frequency is exactly 0 (no query issued).
    pub query: Option<ConjunctiveQuery>,
}

/// A linear combination of conjunctive frequencies, plus a constant.
#[derive(Debug, Clone)]
pub struct LinearQuery {
    /// Human-readable description (reports/diagnostics).
    pub description: String,
    /// Constant offset added to the combination.
    pub constant: f64,
    terms: Vec<LinearTerm>,
}

impl LinearQuery {
    /// Creates an empty query (value = `constant`).
    #[must_use]
    pub fn new(description: impl Into<String>) -> Self {
        Self {
            description: description.into(),
            constant: 0.0,
            terms: Vec::new(),
        }
    }

    /// Appends a weighted conjunctive term.
    pub fn push(&mut self, coeff: f64, query: ConjunctiveQuery) -> &mut Self {
        self.terms.push(LinearTerm {
            coeff,
            query: Some(query),
        });
        self
    }

    /// Appends a term known to have zero frequency (unsatisfiable
    /// conjunction): recorded for accounting but never evaluated.
    pub fn push_zero(&mut self, coeff: f64) -> &mut Self {
        self.terms.push(LinearTerm { coeff, query: None });
        self
    }

    /// The terms.
    #[must_use]
    pub fn terms(&self) -> &[LinearTerm] {
        &self.terms
    }

    /// Number of conjunctive queries that must actually be evaluated —
    /// the paper's query-count accounting (e.g. "the number of queries we
    /// need to ask is equal to how many '1's are in the binary
    /// representation of c").
    #[must_use]
    pub fn num_queries(&self) -> usize {
        self.terms.iter().filter(|t| t.query.is_some()).count()
    }

    /// Every distinct subset the query touches — the set of subsets users
    /// must have sketched for the sketch-based evaluation to work.
    #[must_use]
    pub fn required_subsets(&self) -> Vec<BitSubset> {
        let mut subsets: Vec<BitSubset> = self
            .terms
            .iter()
            .filter_map(|t| t.query.as_ref().map(|q| q.subset().clone()))
            .collect();
        subsets.sort();
        subsets.dedup();
        subsets
    }

    /// Evaluates the combination against an arbitrary frequency oracle.
    ///
    /// The oracle maps a conjunctive query to an estimated (or exact)
    /// frequency in `[0, 1]`-ish scale; this method handles weighting,
    /// zero terms and the constant.
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn evaluate_with<F>(&self, mut oracle: F) -> Result<f64, Error>
    where
        F: FnMut(&ConjunctiveQuery) -> Result<f64, Error>,
    {
        let mut total = self.constant;
        for term in &self.terms {
            if let Some(query) = &term.query {
                total += term.coeff * oracle(query)?;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::BitString;

    fn query(positions: &[u32], bits: &[bool]) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            BitSubset::new(positions.to_vec()).unwrap(),
            BitString::from_bits(bits),
        )
        .unwrap()
    }

    #[test]
    fn evaluates_weighted_sum() {
        let mut lq = LinearQuery::new("test");
        lq.constant = 1.0;
        lq.push(2.0, query(&[0], &[true]));
        lq.push(-1.0, query(&[1], &[false]));
        lq.push_zero(100.0);
        // Oracle: frequency 0.5 for everything.
        let v = lq.evaluate_with(|_| Ok(0.5)).unwrap();
        assert!((v - (1.0 + 1.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn zero_terms_are_not_queried() {
        let mut lq = LinearQuery::new("test");
        lq.push_zero(5.0);
        lq.push(1.0, query(&[0], &[true]));
        let mut calls = 0;
        let _ = lq
            .evaluate_with(|_| {
                calls += 1;
                Ok(0.0)
            })
            .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(lq.num_queries(), 1);
        assert_eq!(lq.terms().len(), 2);
    }

    #[test]
    fn required_subsets_dedupes() {
        let mut lq = LinearQuery::new("test");
        lq.push(1.0, query(&[0, 1], &[true, true]));
        lq.push(1.0, query(&[0, 1], &[true, false]));
        lq.push(1.0, query(&[2], &[true]));
        assert_eq!(lq.required_subsets().len(), 2);
    }

    #[test]
    fn oracle_errors_propagate() {
        let mut lq = LinearQuery::new("test");
        lq.push(1.0, query(&[0], &[true]));
        let r = lq.evaluate_with(|_| Err(Error::EmptyDatabase));
        assert!(matches!(r, Err(Error::EmptyDatabase)));
    }
}
