//! Mergeable partial-result accumulators for sharded estimation.
//!
//! The conjunctive estimator is a pure counting scan: an estimate is
//! `r' = (r̃ − p)/(1 − 2p)` with `r̃ = ones/n`, where `ones` and `n` are
//! exact integers. Counts taken over disjoint partitions of a pool
//! therefore sum to exactly the whole-pool counts, and one inversion via
//! [`Estimate::from_counts`] on the merged sums reproduces the
//! single-node answer **bit-for-bit** — no floating-point reassociation
//! ever happens across shards.
//!
//! These accumulators are the merge side of that argument. A router
//! scatter-gathers per-shard `(ones, population)` pairs, absorbs them
//! here (any absorption order — integer addition commutes), and
//! finishes once:
//!
//! * [`CountAccumulator`] — one conjunctive query;
//! * [`DistributionAccumulator`] — all `2^k` values of one subset;
//! * [`LinearAccumulator`] — a weighted combination of conjunctive
//!   terms, deduplicated exactly like the engine's memoized evaluation.

use crate::engine::LinearAnswer;
use crate::linear::LinearQuery;
use psketch_core::{ConjunctiveQuery, Error, Estimate};

fn merge_err(reason: impl Into<String>) -> Error {
    Error::Codec {
        reason: reason.into(),
    }
}

/// Accumulates per-shard `(ones, population)` counts for one conjunctive
/// query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountAccumulator {
    ones: u64,
    population: u64,
}

impl CountAccumulator {
    /// An empty accumulator (no shards absorbed yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one shard's counts. A shard that holds no sketches for
    /// the subset contributes `(0, 0)` — exactly its share of the pool.
    pub fn absorb(&mut self, ones: u64, population: u64) {
        self.ones += ones;
        self.population += population;
    }

    /// Total satisfying count so far.
    #[must_use]
    pub fn ones(&self) -> u64 {
        self.ones
    }

    /// Total population so far.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.population
    }

    /// The Algorithm 2 inversion over the merged counts.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] if no shard contributed any records.
    pub fn finish(&self, p: f64) -> Result<Estimate, Error> {
        if self.population == 0 {
            return Err(Error::EmptyDatabase);
        }
        Ok(Estimate::from_counts(self.ones, self.population, p))
    }
}

/// Accumulates per-shard per-value counts for a full `2^k` distribution
/// over one subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributionAccumulator {
    ones: Vec<u64>,
    population: u64,
}

impl DistributionAccumulator {
    /// An empty accumulator for a `width`-bit subset (`2^width` values).
    ///
    /// # Panics
    ///
    /// Panics for widths above 20 (mirrors the estimator's cap).
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width <= 20, "distribution accumulator capped at 20 bits");
        Self {
            ones: vec![0; 1 << width],
            population: 0,
        }
    }

    /// Absorbs one shard's per-value counts.
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] if the shard reported a different value count
    /// than this accumulator holds (a shard disagreeing about the subset
    /// width must not be merged silently).
    pub fn absorb(&mut self, ones: &[u64], population: u64) -> Result<(), Error> {
        if ones.len() != self.ones.len() {
            return Err(merge_err(format!(
                "shard reported {} distribution values, expected {}",
                ones.len(),
                self.ones.len()
            )));
        }
        for (total, part) in self.ones.iter_mut().zip(ones) {
            *total += part;
        }
        self.population += population;
        Ok(())
    }

    /// Total population so far.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.population
    }

    /// The per-value inversions over the merged counts, indexed by the
    /// LSB-first integer encoding of the value.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] if no shard contributed any records.
    pub fn finish(&self, p: f64) -> Result<Vec<Estimate>, Error> {
        if self.population == 0 {
            return Err(Error::EmptyDatabase);
        }
        Ok(self
            .ones
            .iter()
            .map(|&ones| Estimate::from_counts(ones, self.population, p))
            .collect())
    }
}

/// Accumulates per-shard counts for every *distinct* conjunctive term of
/// a linear query, then evaluates the combination exactly as
/// [`QueryEngine::linear`](crate::engine::QueryEngine::linear) would:
/// duplicate terms share one estimate (the engine's memoization), terms
/// are weighted in their original order, and the constant is the
/// starting value of the accumulation.
#[derive(Debug, Clone)]
pub struct LinearAccumulator {
    constant: f64,
    /// `(coeff, index into `distinct`)` for every evaluated term, in
    /// original term order. Zero-frequency terms (`push_zero`) are
    /// dropped exactly as the engine drops them.
    terms: Vec<(f64, usize)>,
    distinct: Vec<ConjunctiveQuery>,
    counts: Vec<CountAccumulator>,
}

impl LinearAccumulator {
    /// Plans the accumulator for a linear query: deduplicates its
    /// conjunctive terms (these are what each shard must count) and
    /// records the evaluation order.
    #[must_use]
    pub fn for_query(lq: &LinearQuery) -> Self {
        let mut distinct: Vec<ConjunctiveQuery> = Vec::new();
        let mut terms = Vec::new();
        for term in lq.terms() {
            let Some(query) = &term.query else { continue };
            let slot = match distinct.iter().position(|q| q == query) {
                Some(i) => i,
                None => {
                    distinct.push(query.clone());
                    distinct.len() - 1
                }
            };
            terms.push((term.coeff, slot));
        }
        let counts = vec![CountAccumulator::new(); distinct.len()];
        Self {
            constant: lq.constant,
            terms,
            distinct,
            counts,
        }
    }

    /// The deduplicated conjunctive terms — the exact list of counts to
    /// request from every shard, in this order.
    #[must_use]
    pub fn distinct_queries(&self) -> &[ConjunctiveQuery] {
        &self.distinct
    }

    /// Absorbs one shard's `(ones, population)` pairs, aligned with
    /// [`LinearAccumulator::distinct_queries`].
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] if the shard reported the wrong number of pairs.
    pub fn absorb(&mut self, per_query: &[(u64, u64)]) -> Result<(), Error> {
        if per_query.len() != self.counts.len() {
            return Err(merge_err(format!(
                "shard reported {} term counts, expected {}",
                per_query.len(),
                self.counts.len()
            )));
        }
        for (acc, &(ones, population)) in self.counts.iter_mut().zip(per_query) {
            acc.absorb(ones, population);
        }
        Ok(())
    }

    /// Evaluates the combination over the merged counts.
    ///
    /// `queries_used` is the number of distinct terms (the engine's
    /// count of estimator invocations under memoization);
    /// `min_sample_size` the smallest merged population among them.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDatabase`] if any term's merged population is zero
    /// (the single-node engine would have failed the same way).
    pub fn finish(&self, p: f64) -> Result<LinearAnswer, Error> {
        let estimates: Vec<Estimate> = self
            .counts
            .iter()
            .map(|acc| acc.finish(p))
            .collect::<Result<_, _>>()?;
        let mut value = self.constant;
        let mut min_sample = usize::MAX;
        for &(coeff, slot) in &self.terms {
            value += coeff * estimates[slot].fraction;
            min_sample = min_sample.min(estimates[slot].sample_size);
        }
        Ok(LinearAnswer {
            value,
            queries_used: self.distinct.len(),
            min_sample_size: if self.terms.is_empty() { 0 } else { min_sample },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use psketch_core::{BitString, BitSubset, Profile, SketchDb, SketchParams, Sketcher, UserId};
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn params(p: f64) -> SketchParams {
        SketchParams::with_sip(p, 10, GlobalKey::from_seed(33)).unwrap()
    }

    /// One pool plus a 3-way partition of the same records.
    fn whole_and_shards(p: f64, m: u64) -> (SketchDb, Vec<SketchDb>, BitSubset) {
        let params = params(p);
        let sketcher = Sketcher::new(params);
        let subset = BitSubset::range(0, 3);
        let whole = SketchDb::new();
        let shards: Vec<SketchDb> = (0..3).map(|_| SketchDb::new()).collect();
        let mut rng = Prg::seed_from_u64(44);
        for i in 0..m {
            let profile = Profile::from_bits(&[i % 2 == 0, i % 3 == 0, i % 7 == 0]);
            let s = sketcher
                .sketch(UserId(i), &profile, &subset, &mut rng)
                .unwrap();
            whole.insert(subset.clone(), UserId(i), s);
            // Deliberately uneven split.
            shards[(i % 5).min(2) as usize].insert(subset.clone(), UserId(i), s);
        }
        (whole, shards, subset)
    }

    #[test]
    fn merged_conjunctive_matches_whole_pool_bitwise() {
        let p = 0.3;
        let (whole, shards, subset) = whole_and_shards(p, 2_000);
        let est = psketch_core::ConjunctiveEstimator::new(params(p));
        for value in 0..8u64 {
            let q = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(value, 3)).unwrap();
            let mut acc = CountAccumulator::new();
            for shard in &shards {
                let (ones, n) = est.count(shard, &q).unwrap();
                acc.absorb(ones, n);
            }
            let merged = acc.finish(p).unwrap();
            let single = est.estimate(&whole, &q).unwrap();
            assert_eq!(merged.fraction.to_bits(), single.fraction.to_bits());
            assert_eq!(merged.raw.to_bits(), single.raw.to_bits());
            assert_eq!(merged.sample_size, single.sample_size);
        }
    }

    #[test]
    fn merged_distribution_matches_whole_pool_bitwise() {
        let p = 0.25;
        let (whole, shards, subset) = whole_and_shards(p, 1_500);
        let est = psketch_core::ConjunctiveEstimator::new(params(p));
        let mut acc = DistributionAccumulator::new(subset.len());
        for shard in &shards {
            let (ones, n) = est.count_distribution(shard, &subset).unwrap();
            acc.absorb(&ones, n).unwrap();
        }
        let merged = acc.finish(p).unwrap();
        let single = est.estimate_distribution(&whole, &subset).unwrap();
        assert_eq!(merged.len(), single.len());
        for (m, s) in merged.iter().zip(&single) {
            assert_eq!(m.fraction.to_bits(), s.fraction.to_bits());
        }
    }

    #[test]
    fn merged_linear_matches_engine_bitwise() {
        let p = 0.3;
        let (whole, shards, subset) = whole_and_shards(p, 1_800);
        let est = psketch_core::ConjunctiveEstimator::new(params(p));
        let engine = QueryEngine::new(params(p));

        let q1 = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(5, 3)).unwrap();
        let q2 = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(2, 3)).unwrap();
        let mut lq = LinearQuery::new("merged linear");
        lq.constant = 0.75;
        lq.push(2.0, q1.clone());
        lq.push(-0.5, q2);
        lq.push(3.0, q1); // duplicate: must be memoized, not double-counted
        lq.push_zero(10.0);

        let mut acc = LinearAccumulator::for_query(&lq);
        assert_eq!(acc.distinct_queries().len(), 2);
        for shard in &shards {
            let counts: Vec<(u64, u64)> = acc
                .distinct_queries()
                .iter()
                .map(|q| est.count(shard, q).unwrap())
                .collect();
            acc.absorb(&counts).unwrap();
        }
        let merged = acc.finish(p).unwrap();
        let single = engine.linear(&whole, &lq).unwrap();
        assert_eq!(merged.value.to_bits(), single.value.to_bits());
        assert_eq!(merged.queries_used, single.queries_used);
        assert_eq!(merged.min_sample_size, single.min_sample_size);
    }

    #[test]
    fn empty_merges_are_rejected() {
        assert!(matches!(
            CountAccumulator::new().finish(0.3),
            Err(Error::EmptyDatabase)
        ));
        assert!(matches!(
            DistributionAccumulator::new(2).finish(0.3),
            Err(Error::EmptyDatabase)
        ));
        let lq = LinearQuery::new("empty");
        // No terms: the value is just the constant, population 0 is fine.
        let acc = LinearAccumulator::for_query(&lq);
        let ans = acc.finish(0.3).unwrap();
        assert_eq!(ans.value, 0.0);
        assert_eq!(ans.min_sample_size, 0);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let mut acc = DistributionAccumulator::new(2);
        assert!(acc.absorb(&[1, 2, 3], 10).is_err());
        let q = ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap();
        let mut lq = LinearQuery::new("one term");
        lq.push(1.0, q);
        let mut acc = LinearAccumulator::for_query(&lq);
        assert!(acc.absorb(&[(1, 2), (3, 4)]).is_err());
        assert!(acc.absorb(&[(1, 2)]).is_ok());
    }

    #[test]
    fn zero_count_shards_do_not_change_the_answer() {
        // A shard with no sketches for the subset reports (0, 0); merging
        // it is a no-op.
        let p = 0.3;
        let (whole, shards, subset) = whole_and_shards(p, 600);
        let est = psketch_core::ConjunctiveEstimator::new(params(p));
        let q = ConjunctiveQuery::new(subset, BitString::from_u64(7, 3)).unwrap();
        let mut acc = CountAccumulator::new();
        acc.absorb(0, 0);
        for shard in &shards {
            let (ones, n) = est.count(shard, &q).unwrap();
            acc.absorb(ones, n);
        }
        acc.absorb(0, 0);
        let merged = acc.finish(p).unwrap();
        let single = est.estimate(&whole, &q).unwrap();
        assert_eq!(merged.fraction.to_bits(), single.fraction.to_bits());
    }
}
