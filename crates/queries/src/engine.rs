//! Executing compiled queries against a sketch database.
//!
//! [`QueryEngine`] is the analyst-facing façade: it owns an Algorithm 2
//! estimator and evaluates both the linear-combination normal form and
//! the [`TermPlan`] IR produced by the §4.1 compilers, including ratio
//! queries (conditional means). It also keeps running memoization
//! counters ([`EngineStatsSnapshot`]) so operators can see how much scan
//! work term deduplication saves.

use crate::linear::LinearQuery;
use crate::plan::TermPlan;
use psketch_core::{
    ConjunctiveEstimator, ConjunctiveQuery, Error, Estimate, SketchDb, SketchParams,
};
use psketch_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared memoization/plan counters behind a [`QueryEngine`] (clones of
/// an engine share one set, so a server's workers aggregate naturally).
#[derive(Debug, Default)]
struct EngineStats {
    terms_scanned: AtomicU64,
    terms_reused: AtomicU64,
    plans_executed: AtomicU64,
}

/// A point-in-time copy of an engine's memoization counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStatsSnapshot {
    /// Conjunctive terms actually scanned (memo/dedup misses).
    pub terms_scanned: u64,
    /// Term references served without a scan — engine memo hits plus
    /// compile-time plan deduplication (each reuse is a full shard scan
    /// saved).
    pub terms_reused: u64,
    /// Plans executed through [`QueryEngine::execute_plan`] /
    /// [`QueryEngine::execute_plans`].
    pub plans_executed: u64,
}

/// The result of evaluating a linear query against sketches.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearAnswer {
    /// The estimated value.
    pub value: f64,
    /// Number of conjunctive estimates performed.
    pub queries_used: usize,
    /// Smallest sample size among the underlying estimates (the binding
    /// constraint for error bounds).
    pub min_sample_size: usize,
}

/// Analyst-side execution engine over a [`SketchDb`].
#[derive(Debug, Clone)]
pub struct QueryEngine {
    estimator: ConjunctiveEstimator,
    stats: Arc<EngineStats>,
}

impl QueryEngine {
    /// Builds an engine with the database-wide parameters.
    #[must_use]
    pub fn new(params: SketchParams) -> Self {
        Self {
            estimator: ConjunctiveEstimator::new(params),
            stats: Arc::new(EngineStats::default()),
        }
    }

    /// The underlying Algorithm 2 estimator.
    #[must_use]
    pub fn estimator(&self) -> &ConjunctiveEstimator {
        &self.estimator
    }

    /// A snapshot of the engine's memoization counters (shared across
    /// clones of this engine).
    #[must_use]
    pub fn stats(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            // ord: fuzzy stats snapshot; fields may tear across readers
            terms_scanned: self.stats.terms_scanned.load(Ordering::Relaxed),
            // ord: fuzzy stats snapshot; fields may tear across readers
            terms_reused: self.stats.terms_reused.load(Ordering::Relaxed),
            // ord: fuzzy stats snapshot; fields may tear across readers
            plans_executed: self.stats.plans_executed.load(Ordering::Relaxed),
        }
    }

    /// Executes a compiled [`TermPlan`] against a database: the plan's
    /// distinct terms are counted in one batch
    /// ([`ConjunctiveEstimator::count_terms`]), inverted once each, and
    /// the post-combination runs through [`TermPlan::evaluate`] — the
    /// same code path a server or cluster router uses, so the answers
    /// are bit-identical wherever the plan executes.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSubset`] for unsketched subsets,
    /// [`Error::EmptyDatabase`] if a term's subset holds no records.
    pub fn execute_plan(&self, db: &SketchDb, plan: &TermPlan) -> Result<Vec<LinearAnswer>, Error> {
        let mut memo = HashMap::new();
        self.execute_plan_memo(db, plan, &mut memo)
    }

    /// Executes several plans against one database, sharing the term
    /// memo across the whole batch: a term appearing in any two plans is
    /// scanned once.
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::execute_plan`]; answers are all-or-nothing.
    pub fn execute_plans(
        &self,
        db: &SketchDb,
        plans: &[TermPlan],
    ) -> Result<Vec<Vec<LinearAnswer>>, Error> {
        let mut memo = HashMap::new();
        plans
            .iter()
            .map(|plan| self.execute_plan_memo(db, plan, &mut memo))
            .collect()
    }

    /// The shard-side scatter half: raw `(ones, population)` counts for
    /// a plan's term list, with unknown subsets reported as empty
    /// `(0, 0)` shares. Wraps
    /// [`ConjunctiveEstimator::count_terms_partial`] so the scans feed
    /// the engine's counters — on a shard node these *are* the plan
    /// executions, they just finish at the router.
    #[must_use]
    pub fn count_terms_partial(
        &self,
        db: &SketchDb,
        terms: &[ConjunctiveQuery],
    ) -> Vec<(u64, u64)> {
        let span = obs::span::enter("engine:count_terms");
        span.attr("term_count", terms.len() as u64);
        let counts = self.estimator.count_terms_partial(db, terms);
        self.stats
            .terms_scanned
            // ord: monotonic stat counter, eventual totals suffice
            .fetch_add(terms.len() as u64, Ordering::Relaxed);
        // ord: monotonic stat counter, eventual totals suffice
        self.stats.plans_executed.fetch_add(1, Ordering::Relaxed);
        counts
    }

    fn execute_plan_memo(
        &self,
        db: &SketchDb,
        plan: &TermPlan,
        memo: &mut HashMap<ConjunctiveQuery, Estimate>,
    ) -> Result<Vec<LinearAnswer>, Error> {
        let span = obs::span::enter("engine:plan_exec");
        let started = obs::enabled().then(Instant::now);
        // Count only terms the memo does not already hold, in one batch.
        let missing: Vec<ConjunctiveQuery> = plan
            .terms()
            .iter()
            .filter(|q| !memo.contains_key(*q))
            .cloned()
            .collect();
        if !missing.is_empty() {
            let counts = self.estimator.count_terms(db, &missing)?;
            if counts.iter().any(|&(_, n)| n == 0) {
                return Err(Error::EmptyDatabase);
            }
            let p = self.estimator.params().p();
            for (q, (ones, n)) in missing.iter().zip(counts) {
                memo.insert(q.clone(), Estimate::from_counts(ones, n, p));
            }
        }
        let scanned = missing.len() as u64;
        let references: u64 = plan
            .outputs()
            .iter()
            .map(|o| o.combination().len() as u64)
            .sum();
        self.stats
            .terms_scanned
            // ord: monotonic stat counter, eventual totals suffice
            .fetch_add(scanned, Ordering::Relaxed);
        self.stats
            .terms_reused
            // ord: monotonic stat counter, eventual totals suffice
            .fetch_add(references.saturating_sub(scanned), Ordering::Relaxed);
        // ord: monotonic stat counter, eventual totals suffice
        self.stats.plans_executed.fetch_add(1, Ordering::Relaxed);
        span.attr("term_count", plan.terms().len() as u64);
        span.attr("memo_hits", references.saturating_sub(scanned));
        if let Some(started) = started {
            // Mirror the engine's memoization counters into the process
            // registry so a /metrics scrape can report memo hit rates
            // without holding an engine handle.
            obs::histogram("psketch_query_plan_exec_nanos", &[]).record_duration(started.elapsed());
            obs::counter("psketch_query_plans_total", &[]).inc();
            obs::counter("psketch_query_terms_scanned_total", &[]).add(scanned);
            obs::counter("psketch_query_terms_reused_total", &[])
                .add(references.saturating_sub(scanned));
        }
        let estimates: Vec<Estimate> = plan.terms().iter().map(|q| memo[q]).collect();
        plan.evaluate(&estimates)
    }

    /// Estimates a single conjunctive frequency (unclamped, unbiased).
    ///
    /// # Errors
    ///
    /// As [`ConjunctiveEstimator::estimate`].
    pub fn fraction(&self, db: &SketchDb, query: &ConjunctiveQuery) -> Result<f64, Error> {
        Ok(self.estimator.estimate(db, query)?.fraction)
    }

    /// Evaluates a linear query: the weighted sum of unbiased conjunctive
    /// estimates plus the constant.
    ///
    /// Duplicate conjunctive terms within the query are estimated once
    /// and memoized — compiled queries (intervals, DNF expansions,
    /// conditional means) routinely repeat terms, and each saved term is
    /// a full shard scan.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors (unknown subsets, empty database).
    pub fn linear(&self, db: &SketchDb, lq: &LinearQuery) -> Result<LinearAnswer, Error> {
        let mut memo = HashMap::new();
        self.linear_memo(db, lq, &mut memo)
    }

    /// Evaluates several linear queries against one database, sharing the
    /// term memo across the whole batch: a conjunctive term appearing in
    /// any two of the queries is scanned once.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors; answers are all-or-nothing.
    pub fn linear_batch(
        &self,
        db: &SketchDb,
        queries: &[LinearQuery],
    ) -> Result<Vec<LinearAnswer>, Error> {
        let mut memo = HashMap::new();
        queries
            .iter()
            .map(|lq| self.linear_memo(db, lq, &mut memo))
            .collect()
    }

    /// One linear evaluation against a shared memo. `queries_used` counts
    /// the estimates actually performed by *this* evaluation (memo hits,
    /// including those seeded by earlier queries in a batch, are free).
    fn linear_memo(
        &self,
        db: &SketchDb,
        lq: &LinearQuery,
        memo: &mut HashMap<ConjunctiveQuery, Estimate>,
    ) -> Result<LinearAnswer, Error> {
        let mut queries_used = 0;
        let mut min_sample = usize::MAX;
        let mut saw_term = false;
        let value = lq.evaluate_with(|q| {
            let e = match memo.get(q) {
                Some(e) => {
                    // ord: monotonic stat counter, eventual totals suffice
                    self.stats.terms_reused.fetch_add(1, Ordering::Relaxed);
                    *e
                }
                None => {
                    let e = self.estimator.estimate(db, q)?;
                    memo.insert(q.clone(), e);
                    queries_used += 1;
                    // ord: monotonic stat counter, eventual totals suffice
                    self.stats.terms_scanned.fetch_add(1, Ordering::Relaxed);
                    e
                }
            };
            saw_term = true;
            min_sample = min_sample.min(e.sample_size);
            Ok(e.fraction)
        })?;
        Ok(LinearAnswer {
            value,
            queries_used,
            min_sample_size: if saw_term { min_sample } else { 0 },
        })
    }

    /// Evaluates a ratio of two linear queries (e.g. a conditional mean:
    /// `E[b·1{a≤c}] / freq(a≤c)`), sharing the term memo between
    /// numerator and denominator.
    ///
    /// Returns `None` when the denominator estimate is not positive — the
    /// conditioning event looks empty at this noise level, so no
    /// meaningful ratio exists.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn ratio(
        &self,
        db: &SketchDb,
        numerator: &LinearQuery,
        denominator: &LinearQuery,
    ) -> Result<Option<f64>, Error> {
        let mut memo = HashMap::new();
        let num = self.linear_memo(db, numerator, &mut memo)?;
        let den = self.linear_memo(db, denominator, &mut memo)?;
        if den.value <= 0.0 {
            return Ok(None);
        }
        Ok(Some(num.value / den.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{interval_required_subsets, less_equal_query};
    use crate::mean::{mean_query, mean_required_subsets};
    use psketch_core::{BitString, BitSubset, IntField, Sketcher, UserId};
    use psketch_data::{DemographicsModel, FieldDistribution, Population};
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn setup(p: f64, m: usize) -> (SketchParams, SketchDb, Population, IntField) {
        let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(70)).unwrap();
        let mut model = DemographicsModel::new();
        let field = model.field("v", 6, FieldDistribution::Uniform { lo: 0, hi: 63 });
        let mut rng = Prg::seed_from_u64(71);
        let pop = model.generate(m, &mut rng);
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        // Publish single-bit subsets (means) and prefixes (intervals).
        let mut subsets = mean_required_subsets(&field);
        subsets.extend(interval_required_subsets(&field));
        subsets.sort();
        subsets.dedup();
        pop.publish_all(&sketcher, &subsets, &db, &mut rng).unwrap();
        (params, db, pop, field)
    }

    #[test]
    fn mean_through_sketches() {
        let (params, db, pop, field) = setup(0.25, 20_000);
        let engine = QueryEngine::new(params);
        let ans = engine.linear(&db, &mean_query(&field)).unwrap();
        let truth = pop.true_mean(&field);
        assert_eq!(ans.queries_used, 6);
        assert_eq!(ans.min_sample_size, 20_000);
        assert!(
            (ans.value - truth).abs() < 1.5,
            "mean estimate {} vs truth {truth}",
            ans.value
        );
    }

    #[test]
    fn interval_through_sketches() {
        let (params, db, pop, field) = setup(0.25, 20_000);
        let engine = QueryEngine::new(params);
        for c in [10u64, 31, 50] {
            let ans = engine.linear(&db, &less_equal_query(&field, c)).unwrap();
            let truth = pop.true_fraction_by(|p| field.read(p) <= c);
            assert!(
                (ans.value - truth).abs() < 0.06,
                "c={c}: {} vs {truth}",
                ans.value
            );
        }
    }

    #[test]
    fn fraction_passthrough() {
        let (params, db, pop, field) = setup(0.3, 10_000);
        let engine = QueryEngine::new(params);
        let q = ConjunctiveQuery::new(field.bit_subset(1), BitString::from_bits(&[true])).unwrap();
        let est = engine.fraction(&db, &q).unwrap();
        let truth = pop.true_fraction(&field.bit_subset(1), &BitString::from_bits(&[true]));
        assert!((est - truth).abs() < 0.05);
    }

    #[test]
    fn ratio_none_on_empty_event() {
        let (params, db, _pop, field) = setup(0.3, 5_000);
        let engine = QueryEngine::new(params);
        // Denominator: a constant-zero linear query.
        let num = mean_query(&field);
        let mut den = LinearQuery::new("empty event");
        den.constant = 0.0;
        assert_eq!(engine.ratio(&db, &num, &den).unwrap(), None);
    }

    #[test]
    fn duplicate_terms_are_memoized() {
        let (params, db, _pop, field) = setup(0.3, 2_000);
        let engine = QueryEngine::new(params);
        let q = ConjunctiveQuery::new(field.bit_subset(1), BitString::from_bits(&[true])).unwrap();
        let mut lq = LinearQuery::new("repeated term");
        lq.push(1.0, q.clone());
        lq.push(2.0, q.clone());
        lq.push(-0.5, q);
        let ans = engine.linear(&db, &lq).unwrap();
        // Three terms, one estimator invocation.
        assert_eq!(ans.queries_used, 1);
        assert_eq!(ans.min_sample_size, 2_000);

        // Memoization must not change the answer: 1 + 2 − 0.5 = 2.5× the
        // single-term value.
        let single = engine
            .fraction(
                &db,
                &ConjunctiveQuery::new(field.bit_subset(1), BitString::from_bits(&[true])).unwrap(),
            )
            .unwrap();
        assert!((ans.value - 2.5 * single).abs() < 1e-12);
    }

    #[test]
    fn linear_batch_shares_memo_and_matches_single_evaluations() {
        let (params, db, _pop, field) = setup(0.25, 4_000);
        let engine = QueryEngine::new(params);
        let mq = mean_query(&field);
        let iq = less_equal_query(&field, 31);
        let singles: Vec<f64> = [&mq, &iq]
            .iter()
            .map(|lq| engine.linear(&db, lq).unwrap().value)
            .collect();
        let batch = engine.linear_batch(&db, &[mq.clone(), iq, mq]).unwrap();
        assert_eq!(batch.len(), 3);
        assert!((batch[0].value - singles[0]).abs() < 1e-12);
        assert!((batch[1].value - singles[1]).abs() < 1e-12);
        // The repeated mean query is answered entirely from the memo.
        assert_eq!(batch[2].queries_used, 0);
        assert!((batch[2].value - singles[0]).abs() < 1e-12);
        assert_eq!(batch[2].min_sample_size, 4_000);
    }

    #[test]
    fn plan_execution_matches_linear_and_counts_stats() {
        let (params, db, _pop, field) = setup(0.25, 3_000);
        let engine = QueryEngine::new(params);
        let mq = mean_query(&field);
        let legacy = engine.linear(&db, &mq).unwrap();
        let before = engine.stats();
        let plan = crate::plan::TermPlan::compile(&mq);
        let answers = engine.execute_plan(&db, &plan).unwrap();
        assert_eq!(answers[0].value.to_bits(), legacy.value.to_bits());
        let after = engine.stats();
        assert_eq!(after.plans_executed, before.plans_executed + 1);
        assert_eq!(after.terms_scanned, before.terms_scanned + 6);

        // A second execution in one batch reuses every term.
        let batch = engine
            .execute_plans(&db, &[plan.clone(), plan.clone()])
            .unwrap();
        assert_eq!(batch[1][0].value.to_bits(), legacy.value.to_bits());
        let shared = engine.stats();
        assert_eq!(shared.terms_scanned, after.terms_scanned + 6);
        assert_eq!(shared.terms_reused, after.terms_reused + 6);
    }

    #[test]
    fn plan_execution_propagates_unknown_subsets() {
        let (params, db, _pop, _field) = setup(0.3, 500);
        let engine = QueryEngine::new(params);
        let q = ConjunctiveQuery::new(
            BitSubset::new(vec![77]).unwrap(),
            BitString::from_bits(&[true]),
        )
        .unwrap();
        let plan = crate::plan::TermPlan::for_conjunctive(q);
        assert!(matches!(
            engine.execute_plan(&db, &plan),
            Err(Error::UnknownSubset { .. })
        ));
    }

    #[test]
    fn unknown_subset_propagates() {
        let (params, db, _pop, _field) = setup(0.3, 1_000);
        let engine = QueryEngine::new(params);
        let q = ConjunctiveQuery::new(
            BitSubset::new(vec![77]).unwrap(),
            BitString::from_bits(&[true]),
        )
        .unwrap();
        assert!(matches!(
            engine.fraction(&db, &q),
            Err(Error::UnknownSubset { .. })
        ));
        let _ = UserId(0); // silence unused import lint paths in some cfgs
    }
}
