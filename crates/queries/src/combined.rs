//! §4.1 "Combining queries together" — mixed equality/interval constraints
//! and conditional averages.
//!
//! The paper's examples, reproduced verbatim:
//!
//! * `count(a = c ∧ b < d)`: "k queries of the form
//!   `I(A ∪ Bᵢ, c₁…c_k d₁…d_{i−1} 0)`" — one per set bit of `d`;
//! * the average of `b` over users with `a < c`:
//!   `Σ_{j: cⱼ=1} Σᵢ 2^{k−i} I(Aⱼ ∪ Bᵢ, c₁…c_{j−1}0 1)` divided by the
//!   interval count.

use crate::conjunction::{merge_constraints, Constraint};
use crate::linear::LinearQuery;
use psketch_core::{BitString, IntField};

/// Compiles `freq(a = c ∧ b < d)`.
///
/// One merged conjunction per set bit of `d`, each on the union of the
/// full subset `A` and a prefix of `B`.
///
/// # Panics
///
/// Panics if values exceed field ranges or the fields overlap.
#[must_use]
pub fn eq_and_less_than(a: &IntField, c: u64, b: &IntField, d: u64) -> LinearQuery {
    assert!(c <= a.max_value(), "c exceeds field a");
    assert!(d <= b.max_value(), "d exceeds field b");
    assert!(
        a.end() <= b.offset() || b.end() <= a.offset(),
        "fields must be disjoint"
    );
    let kb = b.width();
    let mut lq = LinearQuery::new(format!(
        "freq(a@{} = {c} && b@{} < {d})",
        a.offset(),
        b.offset()
    ));
    let eq_constraint = Constraint::new(a.subset(), a.full_value(c)).expect("widths match");
    for i in 1..=kb {
        let di = (d >> (kb - i)) & 1;
        if di == 0 {
            continue;
        }
        let mut prefix = b.prefix_value(d, i);
        prefix.set((i - 1) as usize, false);
        let lt_constraint = Constraint::new(b.prefix_subset(i), prefix).expect("widths match");
        match merge_constraints(&[eq_constraint.clone(), lt_constraint])
            .expect("non-empty constraints")
        {
            Some(q) => lq.push(1.0, q),
            None => lq.push_zero(1.0),
        };
    }
    lq
}

/// Compiles the *numerator* of the conditional mean of `b` over users with
/// `a < c`: `E[b · 1{a < c}]`.
///
/// Terms: for each set bit `j` of `c` (the strict interval decomposition
/// on `a`) and each bit `i` of `b`, the merged conjunction
/// `I(Aⱼ-prefix ∪ {Bᵢ}, c₁…c_{j−1}·0 ‖ 1)` with weight `2^{k_b−i}`.
///
/// # Panics
///
/// Panics if `c` exceeds the field range or fields overlap.
#[must_use]
pub fn conditional_sum_query(a: &IntField, c: u64, b: &IntField) -> LinearQuery {
    assert!(c <= a.max_value(), "c exceeds field a");
    assert!(
        a.end() <= b.offset() || b.end() <= a.offset(),
        "fields must be disjoint"
    );
    let (ka, kb) = (a.width(), b.width());
    let mut lq = LinearQuery::new(format!("E[b@{} * 1(a@{} < {c})]", b.offset(), a.offset()));
    for j in 1..=ka {
        let cj = (c >> (ka - j)) & 1;
        if cj == 0 {
            continue;
        }
        let mut prefix = a.prefix_value(c, j);
        prefix.set((j - 1) as usize, false);
        let a_constraint = Constraint::new(a.prefix_subset(j), prefix).expect("widths match");
        for i in 1..=kb {
            let weight = (1u64 << (kb - i)) as f64;
            let b_constraint =
                Constraint::new(b.bit_subset(i), BitString::from_bits(&[true])).expect("width 1");
            match merge_constraints(&[a_constraint.clone(), b_constraint])
                .expect("non-empty constraints")
            {
                Some(q) => lq.push(weight, q),
                None => lq.push_zero(weight),
            };
        }
    }
    lq
}

/// The numerator for the *inclusive* condition `a ≤ c`: adds the equality
/// slice `Σᵢ 2^{k_b−i}·I(A ∪ {Bᵢ}, c ‖ 1)` to [`conditional_sum_query`].
///
/// # Panics
///
/// As [`conditional_sum_query`].
#[must_use]
pub fn conditional_sum_query_inclusive(a: &IntField, c: u64, b: &IntField) -> LinearQuery {
    let mut lq = conditional_sum_query(a, c, b);
    lq.description = format!("E[b@{} * 1(a@{} <= {c})]", b.offset(), a.offset());
    let kb = b.width();
    let eq_constraint = Constraint::new(a.subset(), a.full_value(c)).expect("widths match");
    for i in 1..=kb {
        let weight = (1u64 << (kb - i)) as f64;
        let b_constraint =
            Constraint::new(b.bit_subset(i), BitString::from_bits(&[true])).expect("width 1");
        match merge_constraints(&[eq_constraint.clone(), b_constraint])
            .expect("non-empty constraints")
        {
            Some(q) => lq.push(weight, q),
            None => lq.push_zero(weight),
        };
    }
    lq
}

/// Compiles `freq(a = c ∧ b < d)` into a
/// [`TermPlan`](crate::plan::TermPlan).
///
/// # Panics
///
/// As [`eq_and_less_than`].
#[must_use]
pub fn eq_and_less_than_plan(a: &IntField, c: u64, b: &IntField, d: u64) -> crate::plan::TermPlan {
    crate::plan::TermPlan::compile(&eq_and_less_than(a, c, b, d))
}

/// Compiles the conditional mean `avg(b | a ≤ c)` into **one**
/// two-output plan: output 0 is the numerator `E[b·1{a ≤ c}]`, output 1
/// the denominator `freq(a ≤ c)`, sharing the interval prefix terms.
/// The caller divides output 0 by output 1 (guarding a non-positive
/// denominator), exactly as [`QueryEngine::ratio`] does — the division
/// is the one nonlinear step no linear IR can absorb.
///
/// [`QueryEngine::ratio`]: crate::engine::QueryEngine::ratio
///
/// # Panics
///
/// As [`conditional_sum_query_inclusive`].
#[must_use]
pub fn conditional_mean_plan(a: &IntField, c: u64, b: &IntField) -> crate::plan::TermPlan {
    let numerator = conditional_sum_query_inclusive(a, c, b);
    let denominator = crate::interval::less_equal_query(a, c);
    crate::plan::TermPlan::from_queries(
        format!("avg(b@{} | a@{} <= {c})", b.offset(), a.offset()),
        &[numerator, denominator],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{less_equal_query, less_than_query};
    use psketch_core::{ConjunctiveQuery, Profile};

    fn oracle_for<'a>(
        pairs: &'a [(u64, u64)],
        a: &'a IntField,
        b: &'a IntField,
    ) -> impl Fn(&ConjunctiveQuery) -> f64 + 'a {
        let width = a.end().max(b.end()) as usize;
        move |q: &ConjunctiveQuery| {
            let hits = pairs
                .iter()
                .filter(|&&(va, vb)| {
                    let mut p = Profile::zeros(width);
                    a.write(&mut p, va);
                    b.write(&mut p, vb);
                    p.satisfies(q.subset(), q.value())
                })
                .count();
            hits as f64 / pairs.len() as f64
        }
    }

    fn all_pairs(bits: u32) -> Vec<(u64, u64)> {
        let n = 1u64 << bits;
        (0..n).flat_map(|x| (0..n).map(move |y| (x, y))).collect()
    }

    #[test]
    fn eq_and_lt_matches_brute_force() {
        let a = IntField::new(0, 3);
        let b = IntField::new(3, 3);
        let pairs = all_pairs(3);
        let oracle = oracle_for(&pairs, &a, &b);
        for c in 0..8u64 {
            for d in 0..8u64 {
                let got = eq_and_less_than(&a, c, &b, d)
                    .evaluate_with(|q| Ok(oracle(q)))
                    .unwrap();
                let expected = pairs.iter().filter(|&&(x, y)| x == c && y < d).count() as f64
                    / pairs.len() as f64;
                assert!(
                    (got - expected).abs() < 1e-12,
                    "c={c} d={d}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn conditional_sum_matches_brute_force() {
        let a = IntField::new(0, 3);
        let b = IntField::new(3, 3);
        let pairs: Vec<(u64, u64)> = all_pairs(3).into_iter().filter(|&(x, y)| x != y).collect();
        let oracle = oracle_for(&pairs, &a, &b);
        for c in 0..8u64 {
            let got = conditional_sum_query(&a, c, &b)
                .evaluate_with(|q| Ok(oracle(q)))
                .unwrap();
            let expected = pairs
                .iter()
                .filter(|&&(x, _)| x < c)
                .map(|&(_, y)| y as f64)
                .sum::<f64>()
                / pairs.len() as f64;
            assert!((got - expected).abs() < 1e-9, "c={c}: {got} vs {expected}");
        }
    }

    #[test]
    fn conditional_mean_via_ratio() {
        // avg(b | a ≤ c) = E[b·1{a≤c}]/freq(a≤c), all under the exact oracle.
        let a = IntField::new(0, 3);
        let b = IntField::new(3, 3);
        let pairs = all_pairs(3);
        let oracle = oracle_for(&pairs, &a, &b);
        let c = 4u64;
        let num = conditional_sum_query_inclusive(&a, c, &b)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        let den = less_equal_query(&a, c)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        let got = num / den;
        let selected: Vec<f64> = pairs
            .iter()
            .filter(|&&(x, _)| x <= c)
            .map(|&(_, y)| y as f64)
            .collect();
        let expected = selected.iter().sum::<f64>() / selected.len() as f64;
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn strict_and_inclusive_sums_differ_by_equality_slice() {
        let a = IntField::new(0, 3);
        let b = IntField::new(3, 3);
        let pairs = all_pairs(3);
        let oracle = oracle_for(&pairs, &a, &b);
        let c = 5u64;
        let strict = conditional_sum_query(&a, c, &b)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        let inclusive = conditional_sum_query_inclusive(&a, c, &b)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        let slice = pairs
            .iter()
            .filter(|&&(x, _)| x == c)
            .map(|&(_, y)| y as f64)
            .sum::<f64>()
            / pairs.len() as f64;
        assert!(((inclusive - strict) - slice).abs() < 1e-9);
    }

    #[test]
    fn query_count_accounting() {
        let a = IntField::new(0, 4);
        let b = IntField::new(4, 4);
        // d = 0b1010 has two set bits.
        assert_eq!(eq_and_less_than(&a, 3, &b, 0b1010).num_queries(), 2);
        // c = 0b1100: two set bits × 4 b-bits = 8 numerator terms.
        assert_eq!(conditional_sum_query(&a, 0b1100, &b).num_queries(), 8);
        // Inclusive adds k_b = 4 equality-slice terms.
        assert_eq!(
            conditional_sum_query_inclusive(&a, 0b1100, &b).num_queries(),
            12
        );
    }

    #[test]
    fn strict_and_less_than_agree_with_interval_module() {
        // Consistency: eq_and_less_than with full-range d should equal the
        // equality frequency times nothing fancy — cross-check the shared
        // decomposition against interval::less_than_query on b alone.
        let a = IntField::new(0, 2);
        let b = IntField::new(2, 3);
        let pairs = all_pairs_mixed();
        let oracle = oracle_for(&pairs, &a, &b);
        let d = 5u64;
        let combined: f64 = (0..4u64)
            .map(|c| {
                eq_and_less_than(&a, c, &b, d)
                    .evaluate_with(|q| Ok(oracle(q)))
                    .unwrap()
            })
            .sum();
        let marginal = less_than_query(&b, d)
            .evaluate_with(|q| Ok(oracle(q)))
            .unwrap();
        assert!((combined - marginal).abs() < 1e-9);
    }

    fn all_pairs_mixed() -> Vec<(u64, u64)> {
        (0..4u64)
            .flat_map(|x| (0..8u64).map(move |y| (x, y)))
            .collect()
    }

    #[test]
    #[should_panic(expected = "fields must be disjoint")]
    fn overlapping_fields_rejected() {
        let a = IntField::new(0, 4);
        let b = IntField::new(3, 4);
        let _ = eq_and_less_than(&a, 0, &b, 1);
    }
}
