//! Keyed pseudorandom functions: the paper's public function `H`.
//!
//! The paper assumes "a public pseudorandom function H, which upon receiving
//! a random binary string returns 1 with probability p" (§3), keyed by a
//! global generator key of ≥ 300 bits (footnotes 4–5). [`Prf`] is the
//! abstraction: a keyed map from byte strings to uniform 64-bit values. The
//! biased bit the paper needs is obtained by composing with
//! [`Bias::decide`](crate::bias::Bias::decide).
//!
//! Two independent instantiations are provided so that utility experiments
//! can demonstrate that results do not hinge on one primitive:
//!
//! * [`SipPrf`] — SipHash-2-4 under a 128-bit subkey (fast path);
//! * [`ChaChaPrf`] — a hash-then-encrypt construction around the ChaCha20
//!   block function under the full 256-bit key (conservative path).

use crate::bias::Bias;
use crate::chacha::{chacha20_block, ChaChaKey};
use crate::siphash::SipHash24;

/// A 256-bit global key for the database-wide pseudorandom function.
///
/// The paper: "if the length of the generator key is at least 300 bits, it
/// is unfeasible to build an algorithm whose answers on a pseudorandom
/// function will differ from those it would produce on a truly random
/// function". 256 bits is the modern equivalent of that requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalKey {
    bytes: [u8; 32],
}

impl GlobalKey {
    /// Builds a key from raw bytes.
    #[must_use]
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Self { bytes }
    }

    /// Derives a key deterministically from a u64 seed (for tests and
    /// reproducible experiments; production users should use OS entropy).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 32];
        // Expand the seed with SipHash in counter mode under fixed keys.
        for i in 0..4 {
            let word = SipHash24::new(0x9e37_79b9_7f4a_7c15, i as u64).hash(&seed.to_le_bytes());
            bytes[8 * i..8 * i + 8].copy_from_slice(&word.to_le_bytes());
        }
        Self { bytes }
    }

    /// The raw key bytes.
    #[must_use]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }
}

/// A keyed pseudorandom function from byte strings to uniform `u64`s.
pub trait Prf: Send + Sync {
    /// Evaluates the PRF on `input`, returning a value indistinguishable
    /// from uniform over `u64` for anyone without the key.
    fn eval_u64(&self, input: &[u8]) -> u64;

    /// Evaluates the PRF and thresholds against `bias`, producing the
    /// paper's `p`-biased bit: true with probability `p`.
    fn eval_biased(&self, input: &[u8], bias: Bias) -> bool {
        bias.decide(self.eval_u64(input))
    }
}

/// SipHash-2-4 based PRF (the default `H`).
#[derive(Debug, Clone, Copy)]
pub struct SipPrf {
    sip: SipHash24,
}

impl SipPrf {
    /// Keys the PRF with the first 128 bits of the global key.
    #[must_use]
    pub fn new(key: &GlobalKey) -> Self {
        let mut sub = [0u8; 16];
        sub.copy_from_slice(&key.as_bytes()[..16]);
        Self {
            sip: SipHash24::from_key_bytes(&sub),
        }
    }
}

impl Prf for SipPrf {
    fn eval_u64(&self, input: &[u8]) -> u64 {
        self.sip.hash(input)
    }
}

/// ChaCha20 based PRF: input is compressed to a (nonce, counter) pair with
/// SipHash (keyed by the *second* half of the global key, so the compression
/// key is independent of nothing the attacker sees), then one ChaCha20 block
/// under the full 256-bit key supplies the output word.
#[derive(Debug, Clone, Copy)]
pub struct ChaChaPrf {
    key: ChaChaKey,
    compressor: SipHash24,
}

impl ChaChaPrf {
    /// Keys the PRF with the full 256-bit global key.
    #[must_use]
    pub fn new(key: &GlobalKey) -> Self {
        let mut sub = [0u8; 16];
        sub.copy_from_slice(&key.as_bytes()[16..32]);
        Self {
            key: ChaChaKey::from_bytes(key.as_bytes()),
            compressor: SipHash24::from_key_bytes(&sub),
        }
    }
}

impl Prf for ChaChaPrf {
    fn eval_u64(&self, input: &[u8]) -> u64 {
        let digest = self.compressor.hash128(input);
        let lo = (digest & u128::from(u64::MAX)) as u64;
        let hi = (digest >> 64) as u64;
        let counter = lo as u32;
        let nonce = [(lo >> 32) as u32, hi as u32, (hi >> 32) as u32];
        let block = chacha20_block(&self.key, counter, nonce);
        (u64::from(block[1]) << 32) | u64::from(block[0])
    }
}

/// The PRF family selector used throughout the workspace.
///
/// An enum (rather than `dyn Prf`) keeps evaluation monomorphic and
/// allocation-free on the hot path while still letting experiments switch
/// instantiations at run time.
#[derive(Debug, Clone, Copy)]
pub enum PrfKind {
    /// SipHash-2-4 instantiation (default; fastest).
    Sip,
    /// ChaCha20 instantiation (conservative cross-check).
    ChaCha,
}

/// A concrete instantiation of the paper's `H`, carrying its key material.
#[derive(Debug, Clone, Copy)]
pub enum AnyPrf {
    /// SipHash-2-4 instantiation.
    Sip(SipPrf),
    /// ChaCha20 instantiation.
    ChaCha(ChaChaPrf),
}

impl AnyPrf {
    /// Instantiates the selected PRF family under `key`.
    #[must_use]
    pub fn new(kind: PrfKind, key: &GlobalKey) -> Self {
        match kind {
            PrfKind::Sip => Self::Sip(SipPrf::new(key)),
            PrfKind::ChaCha => Self::ChaCha(ChaChaPrf::new(key)),
        }
    }
}

impl Prf for AnyPrf {
    #[inline]
    fn eval_u64(&self, input: &[u8]) -> u64 {
        match self {
            Self::Sip(p) => p.eval_u64(input),
            Self::ChaCha(p) => p.eval_u64(input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> GlobalKey {
        GlobalKey::from_seed(42)
    }

    #[test]
    fn global_key_from_seed_is_deterministic() {
        assert_eq!(GlobalKey::from_seed(7), GlobalKey::from_seed(7));
        assert_ne!(
            GlobalKey::from_seed(7).as_bytes(),
            GlobalKey::from_seed(8).as_bytes()
        );
    }

    #[test]
    fn prfs_are_deterministic() {
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let prf = AnyPrf::new(kind, &key());
            assert_eq!(prf.eval_u64(b"input"), prf.eval_u64(b"input"));
        }
    }

    #[test]
    fn prf_families_disagree() {
        // The two instantiations are independent functions.
        let sip = AnyPrf::new(PrfKind::Sip, &key());
        let chacha = AnyPrf::new(PrfKind::ChaCha, &key());
        let disagreements = (0u64..64)
            .filter(|i| sip.eval_u64(&i.to_le_bytes()) != chacha.eval_u64(&i.to_le_bytes()))
            .count();
        assert_eq!(disagreements, 64);
    }

    #[test]
    fn keys_separate_outputs() {
        let a = SipPrf::new(&GlobalKey::from_seed(1));
        let b = SipPrf::new(&GlobalKey::from_seed(2));
        assert_ne!(a.eval_u64(b"x"), b.eval_u64(b"x"));
    }

    #[test]
    fn biased_eval_matches_threshold() {
        let prf = SipPrf::new(&key());
        let bias = Bias::from_prob(0.3);
        let raw = prf.eval_u64(b"q");
        assert_eq!(prf.eval_biased(b"q", bias), bias.decide(raw));
    }

    #[test]
    fn empirical_bias_of_prf_outputs() {
        // Over many distinct inputs the fraction of biased-1 outcomes must
        // track p closely — this is the paper's "for random x, H(x) = 1
        // with probability p" requirement.
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let prf = AnyPrf::new(kind, &key());
            let p = 0.3;
            let bias = Bias::from_prob(p);
            let n = 50_000u64;
            let ones = (0..n)
                .filter(|i| prf.eval_biased(&i.to_le_bytes(), bias))
                .count();
            let freq = ones as f64 / n as f64;
            // 5σ tolerance: σ = sqrt(p(1-p)/n) ≈ 0.00205.
            assert!(
                (freq - p).abs() < 0.0105,
                "{kind:?}: frequency {freq} drifted from {p}"
            );
        }
    }

    #[test]
    fn output_bits_are_balanced() {
        // Each of the 64 output bit positions should be ~half ones.
        let prf = SipPrf::new(&key());
        let n = 20_000u64;
        let mut counts = [0u32; 64];
        for i in 0..n {
            let v = prf.eval_u64(&i.to_le_bytes());
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            let freq = f64::from(c) / n as f64;
            assert!(
                (freq - 0.5).abs() < 0.02,
                "output bit {bit} unbalanced: {freq}"
            );
        }
    }
}
