//! Keyed pseudorandom functions: the paper's public function `H`.
//!
//! The paper assumes "a public pseudorandom function H, which upon receiving
//! a random binary string returns 1 with probability p" (§3), keyed by a
//! global generator key of ≥ 300 bits (footnotes 4–5). [`Prf`] is the
//! abstraction: a keyed map from byte strings to uniform 64-bit values. The
//! biased bit the paper needs is obtained by composing with
//! [`Bias::decide`](crate::bias::Bias::decide).
//!
//! Two independent instantiations are provided so that utility experiments
//! can demonstrate that results do not hinge on one primitive:
//!
//! * [`SipPrf`] — SipHash-2-4 under a 128-bit subkey (fast path);
//! * [`ChaChaPrf`] — a hash-then-encrypt construction around the ChaCha20
//!   block function under the full 256-bit key (conservative path).

use crate::bias::Bias;
use crate::chacha::{chacha20_block, ChaChaKey};
use crate::encode::InputEncoder;
use crate::lanes;
use crate::siphash::{SipHash24, SipState};

/// A 256-bit global key for the database-wide pseudorandom function.
///
/// The paper: "if the length of the generator key is at least 300 bits, it
/// is unfeasible to build an algorithm whose answers on a pseudorandom
/// function will differ from those it would produce on a truly random
/// function". 256 bits is the modern equivalent of that requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalKey {
    bytes: [u8; 32],
}

impl GlobalKey {
    /// Builds a key from raw bytes.
    #[must_use]
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Self { bytes }
    }

    /// Derives a key deterministically from a u64 seed (for tests and
    /// reproducible experiments; production users should use OS entropy).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 32];
        // Expand the seed with SipHash in counter mode under fixed keys.
        for i in 0..4 {
            let word = SipHash24::new(0x9e37_79b9_7f4a_7c15, i as u64).hash(&seed.to_le_bytes());
            bytes[8 * i..8 * i + 8].copy_from_slice(&word.to_le_bytes());
        }
        Self { bytes }
    }

    /// The raw key bytes.
    #[must_use]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }
}

/// A keyed pseudorandom function from byte strings to uniform `u64`s.
pub trait Prf: Send + Sync {
    /// Evaluates the PRF on `input`, returning a value indistinguishable
    /// from uniform over `u64` for anyone without the key.
    fn eval_u64(&self, input: &[u8]) -> u64;

    /// Evaluates the PRF and thresholds against `bias`, producing the
    /// paper's `p`-biased bit: true with probability `p`.
    fn eval_biased(&self, input: &[u8], bias: Bias) -> bool {
        bias.decide(self.eval_u64(input))
    }

    /// Batch evaluation: `n` biased bits over inputs assembled in one
    /// shared [`InputEncoder`].
    ///
    /// Per input `i`, `fill(i, enc)` mutates the encoder in place
    /// (typically via the reusable-prefix API: truncate-and-append or
    /// fixed-width splices), then the PRF is evaluated on the encoder's
    /// bytes and `sink(i, bit)` receives the biased outcome. Compared to
    /// calling [`Prf::eval_biased`] in a loop this amortizes the encoder
    /// allocation, the input re-encoding and — through the
    /// [`AnyPrf`] override — the PRF-family dispatch across the whole
    /// batch, which is what makes shard-wide Algorithm 2 scans cheap.
    fn eval_biased_many<F, G>(
        &self,
        n: usize,
        bias: Bias,
        input: &mut InputEncoder,
        fill: F,
        sink: G,
    ) where
        Self: Sized,
        F: FnMut(usize, &mut InputEncoder),
        G: FnMut(usize, bool),
    {
        let mut fill = fill;
        let mut sink = sink;
        for i in 0..n {
            fill(i, input);
            sink(i, bias.decide(self.eval_u64(input.as_bytes())));
        }
    }

    /// As [`Prf::eval_biased_many`], returning only the number of 1s —
    /// the quantity Algorithm 2 needs.
    fn count_biased_many<F>(&self, n: usize, bias: Bias, input: &mut InputEncoder, fill: F) -> usize
    where
        Self: Sized,
        F: FnMut(usize, &mut InputEncoder),
    {
        let mut ones = 0usize;
        self.eval_biased_many(n, bias, input, fill, |_, bit| ones += usize::from(bit));
        ones
    }
}

/// SipHash-2-4 based PRF (the default `H`).
#[derive(Debug, Clone, Copy)]
pub struct SipPrf {
    sip: SipHash24,
}

impl SipPrf {
    /// Keys the PRF with the first 128 bits of the global key.
    #[must_use]
    pub fn new(key: &GlobalKey) -> Self {
        let mut sub = [0u8; 16];
        sub.copy_from_slice(&key.as_bytes()[..16]);
        Self {
            sip: SipHash24::from_key_bytes(&sub),
        }
    }
}

impl Prf for SipPrf {
    fn eval_u64(&self, input: &[u8]) -> u64 {
        self.sip.hash(input)
    }
}

/// ChaCha20 based PRF: input is compressed to a (nonce, counter) pair with
/// SipHash (keyed by the *second* half of the global key, so the compression
/// key is independent of nothing the attacker sees), then one ChaCha20 block
/// under the full 256-bit key supplies the output word.
#[derive(Debug, Clone, Copy)]
pub struct ChaChaPrf {
    key: ChaChaKey,
    compressor: SipHash24,
}

impl ChaChaPrf {
    /// Keys the PRF with the full 256-bit global key.
    #[must_use]
    pub fn new(key: &GlobalKey) -> Self {
        let mut sub = [0u8; 16];
        sub.copy_from_slice(&key.as_bytes()[16..32]);
        Self {
            key: ChaChaKey::from_bytes(key.as_bytes()),
            compressor: SipHash24::from_key_bytes(&sub),
        }
    }
}

impl Prf for ChaChaPrf {
    fn eval_u64(&self, input: &[u8]) -> u64 {
        let digest = self.compressor.hash128(input);
        chacha_output(&self.key, digest)
    }
}

/// Expands a 128-bit compressed input into the ChaCha PRF's output word.
#[inline]
fn chacha_output(key: &ChaChaKey, digest: u128) -> u64 {
    let lo = (digest & u128::from(u64::MAX)) as u64;
    let hi = (digest >> 64) as u64;
    let counter = lo as u32;
    let nonce = [(lo >> 32) as u32, hi as u32, (hi >> 32) as u32];
    let block = chacha20_block(key, counter, nonce);
    (u64::from(block[1]) << 32) | u64::from(block[0])
}

/// The PRF family selector used throughout the workspace.
///
/// An enum (rather than `dyn Prf`) keeps evaluation monomorphic and
/// allocation-free on the hot path while still letting experiments switch
/// instantiations at run time.
#[derive(Debug, Clone, Copy)]
pub enum PrfKind {
    /// SipHash-2-4 instantiation (default; fastest).
    Sip,
    /// ChaCha20 instantiation (conservative cross-check).
    ChaCha,
}

/// A concrete instantiation of the paper's `H`, carrying its key material.
#[derive(Debug, Clone, Copy)]
pub enum AnyPrf {
    /// SipHash-2-4 instantiation.
    Sip(SipPrf),
    /// ChaCha20 instantiation.
    ChaCha(ChaChaPrf),
}

impl AnyPrf {
    /// Instantiates the selected PRF family under `key`.
    #[must_use]
    pub fn new(kind: PrfKind, key: &GlobalKey) -> Self {
        match kind {
            PrfKind::Sip => Self::Sip(SipPrf::new(key)),
            PrfKind::ChaCha => Self::ChaCha(ChaChaPrf::new(key)),
        }
    }
}

impl Prf for AnyPrf {
    #[inline]
    fn eval_u64(&self, input: &[u8]) -> u64 {
        match self {
            Self::Sip(p) => p.eval_u64(input),
            Self::ChaCha(p) => p.eval_u64(input),
        }
    }

    /// Hoists the family dispatch out of the loop: the whole batch runs
    /// monomorphized against the selected PRF.
    fn eval_biased_many<F, G>(
        &self,
        n: usize,
        bias: Bias,
        input: &mut InputEncoder,
        fill: F,
        sink: G,
    ) where
        F: FnMut(usize, &mut InputEncoder),
        G: FnMut(usize, bool),
    {
        match self {
            Self::Sip(p) => p.eval_biased_many(n, bias, input, fill, sink),
            Self::ChaCha(p) => p.eval_biased_many(n, bias, input, fill, sink),
        }
    }
}

impl AnyPrf {
    /// Precomputes the PRF state over a shared input `prefix`.
    ///
    /// Evaluating `prefix ‖ suffix` through the returned [`PrfPrefix`]
    /// equals [`Prf::eval_u64`] on the concatenated bytes, but the prefix
    /// compression is paid once per batch instead of once per call — the
    /// key amortization behind the shard-scale Algorithm 2 scan.
    #[must_use]
    pub fn begin_prefix(&self, prefix: &[u8]) -> PrfPrefix {
        match self {
            Self::Sip(p) => {
                let mut state = p.sip.begin();
                state.absorb(prefix);
                PrfPrefix::Sip(state)
            }
            Self::ChaCha(p) => {
                let mut lo = p.compressor.begin();
                lo.absorb(prefix);
                let mut hi = p.compressor.hi_lane().begin();
                hi.absorb(prefix);
                PrfPrefix::ChaCha { lo, hi, key: p.key }
            }
        }
    }
}

/// A PRF evaluation state frozen after a shared input prefix.
///
/// Copy-cheap: every evaluation copies the small state, absorbs the
/// suffix and finalizes, leaving the prefix state reusable.
#[derive(Debug, Clone, Copy)]
pub enum PrfPrefix {
    /// SipHash lane state.
    Sip(SipState),
    /// Both SipHash compressor lanes plus the ChaCha key for expansion.
    ChaCha {
        /// Low compressor lane.
        lo: SipState,
        /// High (tweaked-key) compressor lane.
        hi: SipState,
        /// The 256-bit ChaCha expansion key.
        key: ChaChaKey,
    },
}

impl PrfPrefix {
    /// Extends the prefix by `bytes`, returning the advanced state (the
    /// original remains usable).
    #[must_use]
    pub fn advanced(&self, bytes: &[u8]) -> Self {
        let mut next = *self;
        match &mut next {
            Self::Sip(state) => {
                state.absorb(bytes);
            }
            Self::ChaCha { lo, hi, .. } => {
                lo.absorb(bytes);
                hi.absorb(bytes);
            }
        }
        next
    }

    /// As [`PrfPrefix::advanced`] with two fixed-width u64 fields — the
    /// per-record `(id, key)` pair, absorbed without touching memory.
    #[must_use]
    pub fn advanced_u64x2(&self, a: u64, b: u64) -> Self {
        let mut next = *self;
        match &mut next {
            Self::Sip(state) => {
                state.absorb_u64(a).absorb_u64(b);
            }
            Self::ChaCha { lo, hi, .. } => {
                lo.absorb_u64(a).absorb_u64(b);
                hi.absorb_u64(a).absorb_u64(b);
            }
        }
        next
    }

    /// Evaluates the PRF on `prefix ‖ suffix`.
    #[inline]
    #[must_use]
    pub fn eval_u64(&self, suffix: &[u8]) -> u64 {
        match self {
            Self::Sip(state) => {
                let mut s = *state;
                s.absorb(suffix);
                s.finish()
            }
            Self::ChaCha { lo, hi, key } => {
                let mut l = *lo;
                l.absorb(suffix);
                let mut h = *hi;
                h.absorb(suffix);
                let digest = (u128::from(h.finish()) << 64) | u128::from(l.finish());
                chacha_output(key, digest)
            }
        }
    }

    /// Evaluates the biased bit on `prefix ‖ suffix`.
    #[inline]
    #[must_use]
    pub fn eval_biased(&self, suffix: &[u8], bias: Bias) -> bool {
        bias.decide(self.eval_u64(suffix))
    }

    /// Batch entry point over per-item suffixes assembled in a shared
    /// scratch buffer: `fill(i, buf)` writes item `i`'s suffix fields in
    /// place, `sink(i, bit)` receives the biased outcome. The family
    /// dispatch is hoisted out of the loop.
    pub fn eval_biased_suffixes<F, G>(
        &self,
        n: usize,
        bias: Bias,
        suffix: &mut [u8],
        fill: F,
        sink: G,
    ) where
        F: FnMut(usize, &mut [u8]),
        G: FnMut(usize, bool),
    {
        let mut fill = fill;
        let mut sink = sink;
        match self {
            Self::Sip(state) if state.is_block_aligned() && suffix.len() < 8 => {
                // Every assembled suffix packs into one final block, so the
                // lane evaluator finishes LANES items per round sequence.
                lanes::eval_short_suffixes(state, n, bias, suffix, fill, sink, lanes::lane_width());
            }
            Self::Sip(state) => {
                for i in 0..n {
                    fill(i, suffix);
                    let mut s = *state;
                    s.absorb(suffix);
                    sink(i, bias.decide(s.finish()));
                }
            }
            Self::ChaCha { lo, hi, key } => {
                for i in 0..n {
                    fill(i, suffix);
                    let mut l = *lo;
                    l.absorb(suffix);
                    let mut h = *hi;
                    h.absorb(suffix);
                    let digest = (u128::from(h.finish()) << 64) | u128::from(l.finish());
                    sink(i, bias.decide(chacha_output(key, digest)));
                }
            }
        }
    }

    /// Counts biased-1 outcomes over `(id, key)` column pairs followed by
    /// a constant `tail` (the encoded query value): the Algorithm 2 inner
    /// loop. Equivalent to evaluating
    /// `prefix ‖ id_i ‖ key_i ‖ tail` for every aligned column pair.
    ///
    /// # Panics
    ///
    /// Panics if the columns have different lengths.
    #[must_use]
    pub fn count_biased_columns(
        &self,
        ids: &[u64],
        keys: &[u64],
        tail: &[u8],
        bias: Bias,
    ) -> usize {
        self.count_biased_columns_lanes(ids, keys, tail, bias, lanes::lane_width())
    }

    /// As [`PrfPrefix::count_biased_columns`] with an explicit lane
    /// `width` instead of the process-wide knob — the side-by-side entry
    /// point for benchmarks and lane-identity tests. Widths outside
    /// [`crate::lanes::SUPPORTED_LANE_WIDTHS`] run the scalar reference
    /// loop; non-Sip families ignore the width.
    ///
    /// # Panics
    ///
    /// Panics if the columns have different lengths.
    #[must_use]
    pub fn count_biased_columns_lanes(
        &self,
        ids: &[u64],
        keys: &[u64],
        tail: &[u8],
        bias: Bias,
        width: usize,
    ) -> usize {
        assert_eq!(ids.len(), keys.len(), "misaligned id/key columns");
        let mut ones = 0usize;
        match self {
            Self::Sip(state) if state.is_block_aligned() && tail.len() < 8 => {
                // Register-only inner loop: three compressions per record
                // with the constant tail's final block precomputed, run
                // `width` interleaved streams at a time (structure-of-
                // arrays lanes vectorize; the scalar width-1 path unrolls
                // 4× so the CPU overlaps the independent round chains).
                let packed_tail = state.pack_short_tail(16, tail);
                ones += lanes::count_columns(state, ids, keys, packed_tail, bias, width);
            }
            Self::Sip(state) => {
                for (&id, &key) in ids.iter().zip(keys) {
                    let mut s = *state;
                    s.absorb_u64(id).absorb_u64(key).absorb(tail);
                    ones += usize::from(bias.decide(s.finish()));
                }
            }
            Self::ChaCha { lo, hi, key: ck } if lo.is_block_aligned() && tail.len() < 8 => {
                let packed_lo = lo.pack_short_tail(16, tail);
                let packed_hi = hi.pack_short_tail(16, tail);
                for (&id, &key) in ids.iter().zip(keys) {
                    let digest = (u128::from(hi.finish_u64x2_then(id, key, packed_hi)) << 64)
                        | u128::from(lo.finish_u64x2_then(id, key, packed_lo));
                    ones += usize::from(bias.decide(chacha_output(ck, digest)));
                }
            }
            Self::ChaCha { lo, hi, key: ck } => {
                for (&id, &key) in ids.iter().zip(keys) {
                    let mut l = *lo;
                    l.absorb_u64(id).absorb_u64(key).absorb(tail);
                    let mut h = *hi;
                    h.absorb_u64(id).absorb_u64(key).absorb(tail);
                    let digest = (u128::from(h.finish()) << 64) | u128::from(l.finish());
                    ones += usize::from(bias.decide(chacha_output(ck, digest)));
                }
            }
        }
        ones
    }

    /// Tallies the biased bit for every short constant-length tail in an
    /// enumerated family: `sink(i, bit)` receives the outcome of
    /// `prefix ‖ tails[i]` where `tails` is produced by `make_tail(i)`
    /// returning the packed final block (see
    /// [`SipState::pack_short_tail`] composition handled internally).
    /// Used by distribution queries: one record state, `2^k` value tails.
    ///
    /// Falls back to [`PrfPrefix::eval_biased_suffixes`] when the state
    /// is not block-aligned or the tail does not fit one block.
    pub fn eval_biased_short_tails<G>(
        &self,
        n: usize,
        bias: Bias,
        tail_bytes: u32,
        make_tail: impl Fn(usize) -> u64,
        sink: G,
    ) where
        G: FnMut(usize, bool),
    {
        let mut sink = sink;
        let zeros = [0u8; 8];
        let zero_tail = &zeros[..tail_bytes as usize];
        match self {
            Self::Sip(state) => {
                debug_assert!(state.is_block_aligned() && tail_bytes < 8);
                let len_block = state.pack_short_tail(0, zero_tail);
                lanes::tally_short_tails(
                    state,
                    n,
                    bias,
                    len_block,
                    make_tail,
                    sink,
                    lanes::lane_width(),
                );
            }
            Self::ChaCha { lo, hi, key: ck } => {
                debug_assert!(lo.is_block_aligned() && tail_bytes < 8);
                let len_lo = lo.pack_short_tail(0, zero_tail);
                let len_hi = hi.pack_short_tail(0, zero_tail);
                for i in 0..n {
                    let t = make_tail(i);
                    let digest = (u128::from(hi.finish_then(len_hi | t)) << 64)
                        | u128::from(lo.finish_then(len_lo | t));
                    sink(i, bias.decide(chacha_output(ck, digest)));
                }
            }
        }
    }

    /// Whether the short-tail fast paths apply: the prefix sits on a
    /// block boundary and `tail_bytes` fit one final block.
    #[must_use]
    pub fn supports_short_tail(&self, tail_bytes: usize) -> bool {
        if tail_bytes >= 8 {
            return false;
        }
        match self {
            Self::Sip(state) => state.is_block_aligned(),
            Self::ChaCha { lo, .. } => lo.is_block_aligned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> GlobalKey {
        GlobalKey::from_seed(42)
    }

    #[test]
    fn global_key_from_seed_is_deterministic() {
        assert_eq!(GlobalKey::from_seed(7), GlobalKey::from_seed(7));
        assert_ne!(
            GlobalKey::from_seed(7).as_bytes(),
            GlobalKey::from_seed(8).as_bytes()
        );
    }

    #[test]
    fn prfs_are_deterministic() {
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let prf = AnyPrf::new(kind, &key());
            assert_eq!(prf.eval_u64(b"input"), prf.eval_u64(b"input"));
        }
    }

    #[test]
    fn prf_families_disagree() {
        // The two instantiations are independent functions.
        let sip = AnyPrf::new(PrfKind::Sip, &key());
        let chacha = AnyPrf::new(PrfKind::ChaCha, &key());
        let disagreements = (0u64..64)
            .filter(|i| sip.eval_u64(&i.to_le_bytes()) != chacha.eval_u64(&i.to_le_bytes()))
            .count();
        assert_eq!(disagreements, 64);
    }

    #[test]
    fn keys_separate_outputs() {
        let a = SipPrf::new(&GlobalKey::from_seed(1));
        let b = SipPrf::new(&GlobalKey::from_seed(2));
        assert_ne!(a.eval_u64(b"x"), b.eval_u64(b"x"));
    }

    #[test]
    fn batch_eval_matches_scalar_eval() {
        // The batch entry point must agree bit-for-bit with one-at-a-time
        // evaluation on the same byte strings.
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let prf = AnyPrf::new(kind, &key());
            let bias = Bias::from_prob(0.3);
            let mut enc = InputEncoder::with_domain(9);
            let mark = enc.mark();
            let mut batch = Vec::new();
            prf.eval_biased_many(
                64,
                bias,
                &mut enc,
                |i, e| {
                    e.truncate(mark);
                    e.put_u64(i as u64);
                },
                |_, bit| batch.push(bit),
            );
            let scalar: Vec<bool> = (0..64u64)
                .map(|i| {
                    let mut e = InputEncoder::with_domain(9);
                    e.put_u64(i);
                    prf.eval_biased(e.as_bytes(), bias)
                })
                .collect();
            assert_eq!(batch, scalar, "{kind:?} batch/scalar divergence");
        }
    }

    #[test]
    fn prefix_evaluation_matches_one_shot() {
        // prefix ‖ suffix through PrfPrefix must equal eval_u64 on the
        // concatenation, for both families and every split shape.
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let prf = AnyPrf::new(kind, &key());
            let msg: Vec<u8> = (0u8..48).map(|i| i.wrapping_mul(113)).collect();
            let expected = prf.eval_u64(&msg);
            for split in 0..=msg.len() {
                let prefix = prf.begin_prefix(&msg[..split]);
                assert_eq!(
                    prefix.eval_u64(&msg[split..]),
                    expected,
                    "{kind:?} diverged at split {split}"
                );
            }
        }
    }

    #[test]
    fn advanced_and_columns_match_flat_eval() {
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let prf = AnyPrf::new(kind, &key());
            let bias = Bias::from_prob(0.3);
            let prefix_bytes = b"shared-prefix";
            let tail = b"tail";
            let ids: Vec<u64> = (0..200).map(|i| i * 3 + 1).collect();
            let keys: Vec<u64> = (0..200).map(|i| i ^ 0x5555).collect();

            let prefix = prf.begin_prefix(prefix_bytes);
            let batched = prefix.count_biased_columns(&ids, &keys, tail, bias);

            let scalar = ids
                .iter()
                .zip(&keys)
                .filter(|&(&id, &k)| {
                    let mut flat = prefix_bytes.to_vec();
                    flat.extend_from_slice(&id.to_le_bytes());
                    flat.extend_from_slice(&k.to_le_bytes());
                    flat.extend_from_slice(tail);
                    prf.eval_biased(&flat, bias)
                })
                .count();
            assert_eq!(batched, scalar, "{kind:?} column count diverged");

            // advanced / advanced_u64x2 compose the same stream.
            let adv = prefix.advanced_u64x2(ids[0], keys[0]);
            let mut flat = prefix_bytes.to_vec();
            flat.extend_from_slice(&ids[0].to_le_bytes());
            flat.extend_from_slice(&keys[0].to_le_bytes());
            assert_eq!(adv.eval_u64(tail), prf.begin_prefix(&flat).eval_u64(tail));
            assert_eq!(
                prefix.advanced(b"xy").eval_u64(b"z"),
                prf.eval_u64(&[prefix_bytes.as_slice(), b"xy", b"z"].concat())
            );
        }
    }

    #[test]
    fn suffix_batch_matches_scalar() {
        let prf = AnyPrf::new(PrfKind::Sip, &key());
        let bias = Bias::from_prob(0.4);
        let prefix = prf.begin_prefix(b"p");
        let mut suffix = [0u8; 8];
        let mut batch = Vec::new();
        prefix.eval_biased_suffixes(
            64,
            bias,
            &mut suffix,
            |i, buf| buf.copy_from_slice(&(i as u64).to_le_bytes()),
            |_, bit| batch.push(bit),
        );
        let scalar: Vec<bool> = (0..64u64)
            .map(|i| {
                let mut flat = b"p".to_vec();
                flat.extend_from_slice(&i.to_le_bytes());
                prf.eval_biased(&flat, bias)
            })
            .collect();
        assert_eq!(batch, scalar);
    }

    #[test]
    fn count_biased_many_counts_ones() {
        let prf = AnyPrf::new(PrfKind::Sip, &key());
        let bias = Bias::from_prob(0.3);
        let mut enc = InputEncoder::with_domain(9);
        let mark = enc.mark();
        let count = prf.count_biased_many(1000, bias, &mut enc, |i, e| {
            e.truncate(mark);
            e.put_u64(i as u64);
        });
        let expected = (0..1000u64)
            .filter(|&i| {
                let mut e = InputEncoder::with_domain(9);
                e.put_u64(i);
                prf.eval_biased(e.as_bytes(), bias)
            })
            .count();
        assert_eq!(count, expected);
    }

    #[test]
    fn biased_eval_matches_threshold() {
        let prf = SipPrf::new(&key());
        let bias = Bias::from_prob(0.3);
        let raw = prf.eval_u64(b"q");
        assert_eq!(prf.eval_biased(b"q", bias), bias.decide(raw));
    }

    #[test]
    fn empirical_bias_of_prf_outputs() {
        // Over many distinct inputs the fraction of biased-1 outcomes must
        // track p closely — this is the paper's "for random x, H(x) = 1
        // with probability p" requirement.
        for kind in [PrfKind::Sip, PrfKind::ChaCha] {
            let prf = AnyPrf::new(kind, &key());
            let p = 0.3;
            let bias = Bias::from_prob(p);
            let n = 50_000u64;
            let ones = (0..n)
                .filter(|i| prf.eval_biased(&i.to_le_bytes(), bias))
                .count();
            let freq = ones as f64 / n as f64;
            // 5σ tolerance: σ = sqrt(p(1-p)/n) ≈ 0.00205.
            assert!(
                (freq - p).abs() < 0.0105,
                "{kind:?}: frequency {freq} drifted from {p}"
            );
        }
    }

    #[test]
    fn output_bits_are_balanced() {
        // Each of the 64 output bit positions should be ~half ones.
        let prf = SipPrf::new(&key());
        let n = 20_000u64;
        let mut counts = [0u32; 64];
        for i in 0..n {
            let v = prf.eval_u64(&i.to_le_bytes());
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            let freq = f64::from(c) / n as f64;
            assert!(
                (freq - 0.5).abs() < 0.02,
                "output bit {bit} unbalanced: {freq}"
            );
        }
    }
}
