//! The ChaCha20 block function, implemented from scratch.
//!
//! ChaCha20 (Bernstein; standardized in RFC 8439) maps a 256-bit key, a
//! 32-bit block counter and a 96-bit nonce to a 512-bit keystream block.
//! This crate uses it two ways:
//!
//! * as the mixing core of [`ChaChaPrf`](crate::prf::ChaChaPrf), the second,
//!   independent instantiation of the paper's public function `H` (used to
//!   demonstrate that utility results do not depend on a particular PRF), and
//! * as the engine of the deterministic counter-mode PRG
//!   ([`Prg`](crate::prg::Prg)) that drives reproducible experiments.
//!
//! Verified against the RFC 8439 §2.3.2 block-function test vector.

/// The ChaCha constants `"expa" "nd 3" "2-by" "te k"` as little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Number of double rounds (20 rounds total = 10 double rounds).
const DOUBLE_ROUNDS: usize = 10;

/// A 256-bit ChaCha key, stored as eight little-endian words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaChaKey {
    words: [u32; 8],
}

impl ChaChaKey {
    /// Builds a key from 32 bytes, interpreted little-endian per RFC 8439.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        let mut words = [0u32; 8];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        Self { words }
    }

    /// Returns the key as words.
    #[must_use]
    pub const fn words(&self) -> [u32; 8] {
        self.words
    }
}

/// Computes one ChaCha20 block: 16 output words of keystream.
///
/// `counter` is the 32-bit block counter occupying state word 12 and `nonce`
/// the 96-bit nonce occupying words 13..16, as in RFC 8439.
#[must_use]
pub fn chacha20_block(key: &ChaChaKey, counter: u32, nonce: [u32; 3]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(&key.words);
    state[12] = counter;
    state[13..16].copy_from_slice(&nonce);

    let mut working = state;
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (w, s) in working.iter_mut().zip(state.iter()) {
        *w = w.wrapping_add(*s);
    }
    working
}

/// Serializes a keystream block to bytes (little-endian words, RFC order).
#[must_use]
pub fn block_to_bytes(block: &[u32; 16]) -> [u8; 64] {
    let mut out = [0u8; 64];
    for (i, w) in block.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] ^= s[a];
    s[d] = s[d].rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] ^= s[c];
    s[b] = s[b].rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] ^= s[a];
    s[d] = s[d].rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] ^= s[c];
    s[b] = s[b].rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1: quarter round on the test vector.
    #[test]
    fn quarter_round_vector() {
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    /// RFC 8439 §2.3.2: the ChaCha20 block function test vector.
    #[test]
    fn block_function_vector() {
        let key_bytes: [u8; 32] = core::array::from_fn(|i| i as u8);
        let key = ChaChaKey::from_bytes(&key_bytes);
        let nonce = [0x0900_0000, 0x4a00_0000, 0x0000_0000];
        let block = chacha20_block(&key, 1, nonce);
        let expected: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        assert_eq!(block, expected);
    }

    /// RFC 8439 §2.3.2 serialized keystream bytes.
    #[test]
    fn block_serialization_vector() {
        let key_bytes: [u8; 32] = core::array::from_fn(|i| i as u8);
        let key = ChaChaKey::from_bytes(&key_bytes);
        let nonce = [0x0900_0000, 0x4a00_0000, 0x0000_0000];
        let bytes = block_to_bytes(&chacha20_block(&key, 1, nonce));
        let expected_prefix: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&bytes[..16], &expected_prefix);
    }

    #[test]
    fn counter_changes_output() {
        let key = ChaChaKey::from_bytes(&[7u8; 32]);
        let nonce = [1, 2, 3];
        assert_ne!(
            chacha20_block(&key, 0, nonce),
            chacha20_block(&key, 1, nonce)
        );
    }

    #[test]
    fn nonce_changes_output() {
        let key = ChaChaKey::from_bytes(&[7u8; 32]);
        assert_ne!(
            chacha20_block(&key, 0, [0, 0, 0]),
            chacha20_block(&key, 0, [0, 0, 1])
        );
    }

    #[test]
    fn key_round_trips_words() {
        let bytes: [u8; 32] = core::array::from_fn(|i| (i * 3) as u8);
        let key = ChaChaKey::from_bytes(&bytes);
        assert_eq!(key.words()[0], u32::from_le_bytes([0, 3, 6, 9]));
    }
}
