//! SipHash-2-4, implemented from scratch.
//!
//! SipHash is a keyed pseudorandom function with 128-bit keys and 64-bit
//! outputs, introduced by Aumasson and Bernstein. The paper reproduced by
//! this workspace (Mishra & Sandler, PODS 2006) asks for "any collision free
//! secure hash (such as MD5 or WHIRLPOOL)" as the public function `H`; we
//! substitute SipHash-2-4 because it is a *keyed* PRF (the paper in fact
//! wants a keyed function — "the key used to define the global pseudorandom
//! function for the entire database"), it is a modern standard, and it is
//! small enough to implement and verify from scratch. The privacy results of
//! the paper are independent of the quality of this function (Lemma 3.3), so
//! the substitution is behaviour-preserving for privacy; utility experiments
//! cross-check SipHash against a ChaCha20-based PRF.
//!
//! The implementation is verified against the official test vectors from the
//! SipHash reference implementation.

/// Number of compression rounds (the "2" in SipHash-2-4).
const C_ROUNDS: usize = 2;
/// Number of finalization rounds (the "4" in SipHash-2-4).
const D_ROUNDS: usize = 4;

/// Streaming/one-shot SipHash-2-4 state over a 128-bit key.
///
/// The common entry point is [`SipHash24::hash`]:
///
/// ```
/// use psketch_prf::siphash::SipHash24;
/// let tag = SipHash24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908).hash(b"hello");
/// // Same input, same key => same tag.
/// assert_eq!(
///     tag,
///     SipHash24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908).hash(b"hello")
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl SipHash24 {
    /// Creates a SipHash-2-4 instance from the two 64-bit key halves.
    ///
    /// `k0` is the little-endian interpretation of key bytes 0..8 and `k1`
    /// of bytes 8..16, matching the reference implementation.
    #[must_use]
    pub const fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Creates a SipHash-2-4 instance from 16 key bytes (little-endian).
    #[must_use]
    pub fn from_key_bytes(key: &[u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        Self::new(k0, k1)
    }

    /// Hashes `data` and returns the 64-bit tag.
    #[must_use]
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = 0x736f_6d65_7073_6575_u64 ^ self.k0;
        let mut v1 = 0x646f_7261_6e64_6f6d_u64 ^ self.k1;
        let mut v2 = 0x6c79_6765_6e65_7261_u64 ^ self.k0;
        let mut v3 = 0x7465_6462_7974_6573_u64 ^ self.k1;

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            v3 ^= m;
            for _ in 0..C_ROUNDS {
                sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
        }

        // Final block: remaining bytes plus the message length in the top byte.
        let rem = chunks.remainder();
        let mut last = (data.len() as u64) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= u64::from(b) << (8 * i);
        }
        v3 ^= last;
        for _ in 0..C_ROUNDS {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..D_ROUNDS {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }

    /// Hashes `data` twice under domain-separated tweaks to produce a
    /// 128-bit output.
    ///
    /// Used when a single 64-bit value is not enough entropy (e.g. deriving
    /// a ChaCha nonce+counter from an arbitrary-length input).
    #[must_use]
    pub fn hash128(&self, data: &[u8]) -> u128 {
        let lo = self.hash(data);
        let hi = self.hi_lane().hash(data);
        (u128::from(hi) << 64) | u128::from(lo)
    }

    /// The tweaked-key instance producing the high 64 bits of
    /// [`SipHash24::hash128`]. Any fixed constant tweak yields an
    /// independent-looking PRF lane.
    #[must_use]
    pub const fn hi_lane(&self) -> Self {
        Self::new(
            self.k0 ^ 0x5851_f42d_4c95_7f2d,
            self.k1 ^ 0x1405_7b7e_f767_814f,
        )
    }

    /// Starts an incremental hash: absorb bytes with
    /// [`SipState::absorb`], finish with [`SipState::finish`].
    ///
    /// The point of the incremental form is *prefix reuse*: a state
    /// absorbed over a shared prefix can be copied and finished under
    /// many different suffixes, paying the prefix compression once per
    /// batch instead of once per evaluation. `begin().absorb(x).finish()`
    /// equals `hash(x)` exactly for any split of `x`.
    #[must_use]
    pub fn begin(&self) -> SipState {
        SipState {
            v0: 0x736f_6d65_7073_6575_u64 ^ self.k0,
            v1: 0x646f_7261_6e64_6f6d_u64 ^ self.k1,
            v2: 0x6c79_6765_6e65_7261_u64 ^ self.k0,
            v3: 0x7465_6462_7974_6573_u64 ^ self.k1,
            len: 0,
            tail: 0,
            ntail: 0,
        }
    }
}

/// Incremental SipHash-2-4 state: the four lanes plus an unfilled block.
///
/// `Copy` by design — finishing copies the state, so one prefix state
/// serves arbitrarily many suffixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipState {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Total bytes absorbed (feeds the length byte of the final block).
    len: u64,
    /// Up to 7 residual bytes not yet compressed, packed LSB-first.
    tail: u64,
    ntail: u32,
}

impl SipState {
    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        for _ in 0..C_ROUNDS {
            sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        self.v0 ^= m;
    }

    /// Absorbs `data`, compressing every full 8-byte block.
    pub fn absorb(&mut self, data: &[u8]) -> &mut Self {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.ntail > 0 {
            let need = (8 - self.ntail) as usize;
            if data.len() < need {
                for (i, &b) in data.iter().enumerate() {
                    self.tail |= u64::from(b) << (8 * (self.ntail as usize + i));
                }
                self.ntail += data.len() as u32;
                return self;
            }
            for (i, &b) in data[..need].iter().enumerate() {
                self.tail |= u64::from(b) << (8 * (self.ntail as usize + i));
            }
            let block = self.tail;
            self.compress(block);
            self.tail = 0;
            self.ntail = 0;
            data = &data[need..];
        }
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            self.compress(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        for (i, &b) in chunks.remainder().iter().enumerate() {
            self.tail |= u64::from(b) << (8 * i);
        }
        self.ntail = chunks.remainder().len() as u32;
        self
    }

    /// Absorbs a little-endian `u64` (8 bytes) without touching memory —
    /// the hot path for fixed-width record fields.
    #[inline]
    pub fn absorb_u64(&mut self, value: u64) -> &mut Self {
        self.len = self.len.wrapping_add(8);
        if self.ntail == 0 {
            self.compress(value);
        } else {
            let shift = 8 * self.ntail;
            let block = self.tail | (value << shift);
            self.compress(block);
            self.tail = value >> (64 - shift);
        }
        self
    }

    /// Finalizes and returns the 64-bit tag; `self` is unchanged (copy
    /// semantics), so the same state can absorb further suffixes.
    #[inline]
    #[must_use]
    pub fn finish(&self) -> u64 {
        let mut s = *self;
        let last = s.tail | (s.len << 56);
        s.compress(last);
        s.finalize_rounds()
    }

    /// Whether the state sits exactly on a block boundary (no residual
    /// bytes) — the precondition for the register-only finishers below.
    #[inline]
    #[must_use]
    pub fn is_block_aligned(&self) -> bool {
        self.ntail == 0
    }

    /// The four internal lanes `(v0, v1, v2, v3)` — the seed a multi-lane
    /// state broadcasts from (see [`crate::lanes::SipStateXN::splat`]).
    #[inline]
    pub(crate) fn words(&self) -> [u64; 4] {
        [self.v0, self.v1, self.v2, self.v3]
    }

    /// Register-only hot path: equivalent to
    /// `absorb_u64(a).absorb_u64(b).absorb(tail_bytes).finish()` for a
    /// block-aligned state and a short tail, with the tail's final block
    /// precomputed by [`SipState::pack_short_tail`]. No memory traffic,
    /// no branches: exactly three compressions plus finalization.
    ///
    /// # Panics
    ///
    /// Debug-asserts block alignment.
    #[inline]
    #[must_use]
    pub fn finish_u64x2_then(&self, a: u64, b: u64, packed_tail: u64) -> u64 {
        debug_assert!(self.ntail == 0, "state must be block-aligned");
        let mut s = *self;
        s.compress(a);
        s.compress(b);
        s.compress(packed_tail);
        s.finalize_rounds()
    }

    /// As [`SipState::finish_u64x2_then`] without the two u64 fields:
    /// one precomputed final block on top of a block-aligned state.
    #[inline]
    #[must_use]
    pub fn finish_then(&self, packed_tail: u64) -> u64 {
        debug_assert!(self.ntail == 0, "state must be block-aligned");
        let mut s = *self;
        s.compress(packed_tail);
        s.finalize_rounds()
    }

    /// Packs a short (< 8 bytes) constant tail into the SipHash final
    /// block for a message that will consist of this state's bytes plus
    /// `extra` more fixed-width bytes plus the tail. Feed the result to
    /// [`SipState::finish_u64x2_then`] (`extra = 16`) or
    /// [`SipState::finish_then`] (`extra = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `tail` holds 8 or more bytes (it must fit the final
    /// block alongside the length byte).
    #[must_use]
    pub fn pack_short_tail(&self, extra: u64, tail: &[u8]) -> u64 {
        assert!(tail.len() < 8, "short tail must fit the final block");
        let mut packed = 0u64;
        for (i, &b) in tail.iter().enumerate() {
            packed |= u64::from(b) << (8 * i);
        }
        let total = self.len.wrapping_add(extra).wrapping_add(tail.len() as u64);
        packed | (total << 56)
    }

    #[inline]
    fn finalize_rounds(mut self) -> u64 {
        self.v2 ^= 0xff;
        for _ in 0..D_ROUNDS {
            sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }
}

#[inline]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official vectors from the SipHash reference implementation
    /// (`vectors_sip64` in `vectors.h`): key = 000102…0f, message =
    /// 00 01 02 … of increasing length.
    const REFERENCE_VECTORS: [u64; 16] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
        0x93f5_f579_9a93_2462,
        0x9e00_82df_0ba9_e4b0,
        0x7a5d_bbc5_94dd_b9f3,
        0xf4b3_2f46_226b_ada7,
        0x751e_8fbc_860e_e5fb,
        0x14ea_5627_c084_3d90,
        0xf723_ca90_8e7a_f2ee,
        0xa129_ca61_49be_45e5,
    ];

    fn reference_key() -> SipHash24 {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        SipHash24::from_key_bytes(&key)
    }

    #[test]
    fn matches_reference_vectors() {
        let sip = reference_key();
        let msg: Vec<u8> = (0u8..16).collect();
        for (len, expected) in REFERENCE_VECTORS.iter().enumerate() {
            assert_eq!(
                sip.hash(&msg[..len]),
                *expected,
                "vector mismatch at message length {len}"
            );
        }
    }

    #[test]
    fn from_key_bytes_matches_new() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        assert_eq!(
            SipHash24::from_key_bytes(&key),
            SipHash24::new(0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908)
        );
    }

    #[test]
    fn distinct_keys_give_distinct_tags() {
        let a = SipHash24::new(1, 2).hash(b"payload");
        let b = SipHash24::new(3, 4).hash(b"payload");
        assert_ne!(a, b);
    }

    #[test]
    fn length_is_part_of_the_tag() {
        // A trailing zero byte must change the tag even though the padded
        // final block bytes would otherwise collide.
        let sip = reference_key();
        assert_ne!(sip.hash(b""), sip.hash(b"\0"));
        assert_ne!(sip.hash(b"\0\0\0\0\0\0\0"), sip.hash(b"\0\0\0\0\0\0\0\0"));
    }

    #[test]
    fn hash128_halves_are_independent_lanes() {
        let sip = reference_key();
        let wide = sip.hash128(b"abc");
        let lo = (wide & u128::from(u64::MAX)) as u64;
        let hi = (wide >> 64) as u64;
        assert_eq!(lo, sip.hash(b"abc"));
        assert_ne!(lo, hi);
    }

    #[test]
    fn exact_multiple_of_block_size() {
        // 8- and 16-byte messages exercise the empty-remainder path.
        let sip = reference_key();
        let msg: Vec<u8> = (0u8..16).collect();
        assert_eq!(sip.hash(&msg[..8]), REFERENCE_VECTORS[8]);
        // All 16 bytes: not in the table above but must be deterministic
        // and distinct from the 15-byte prefix.
        assert_ne!(sip.hash(&msg), sip.hash(&msg[..15]));
    }

    #[test]
    fn incremental_matches_one_shot_for_every_split() {
        let sip = reference_key();
        let msg: Vec<u8> = (0u8..40).map(|i| i.wrapping_mul(37)).collect();
        let expected = sip.hash(&msg);
        for split in 0..=msg.len() {
            let mut state = sip.begin();
            state.absorb(&msg[..split]);
            state.absorb(&msg[split..]);
            assert_eq!(state.finish(), expected, "diverged at split {split}");
        }
        // Three-way splits with tiny fragments (exercise residual joins).
        for a in 0..8 {
            for b in a..12.min(msg.len()) {
                let mut state = sip.begin();
                state.absorb(&msg[..a]).absorb(&msg[a..b]).absorb(&msg[b..]);
                assert_eq!(state.finish(), expected, "diverged at splits {a},{b}");
            }
        }
    }

    #[test]
    fn incremental_matches_reference_vectors() {
        let sip = reference_key();
        let msg: Vec<u8> = (0u8..16).collect();
        for (len, expected) in REFERENCE_VECTORS.iter().enumerate() {
            let mut state = sip.begin();
            for &b in &msg[..len] {
                state.absorb(&[b]);
            }
            assert_eq!(state.finish(), *expected, "vector mismatch at length {len}");
        }
    }

    #[test]
    fn absorb_u64_matches_byte_absorb() {
        let sip = reference_key();
        for prefix_len in 0..9usize {
            let prefix: Vec<u8> = (0..prefix_len as u8).collect();
            let value = 0xDEAD_BEEF_CAFE_F00Du64;
            let mut by_word = sip.begin();
            by_word.absorb(&prefix).absorb_u64(value);
            let mut by_bytes = sip.begin();
            by_bytes.absorb(&prefix).absorb(&value.to_le_bytes());
            assert_eq!(
                by_word.finish(),
                by_bytes.finish(),
                "absorb_u64 diverged after {prefix_len}-byte prefix"
            );
        }
    }

    #[test]
    fn finish_is_non_destructive() {
        let sip = reference_key();
        let mut state = sip.begin();
        state.absorb(b"shared prefix");
        let first = state.finish();
        assert_eq!(state.finish(), first);
        // The same prefix state serves many suffixes.
        let mut a = state;
        a.absorb(b"-alpha");
        let mut b = state;
        b.absorb(b"-beta");
        assert_eq!(a.finish(), sip.hash(b"shared prefix-alpha"));
        assert_eq!(b.finish(), sip.hash(b"shared prefix-beta"));
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let sip = reference_key();
        let base = sip.hash(b"avalanche test!!");
        let mut flipped = *b"avalanche test!!";
        flipped[0] ^= 1;
        let other = sip.hash(&flipped);
        let dist = (base ^ other).count_ones();
        assert!(
            (16..=48).contains(&dist),
            "poor avalanche: hamming distance {dist}"
        );
    }
}
