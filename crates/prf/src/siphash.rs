//! SipHash-2-4, implemented from scratch.
//!
//! SipHash is a keyed pseudorandom function with 128-bit keys and 64-bit
//! outputs, introduced by Aumasson and Bernstein. The paper reproduced by
//! this workspace (Mishra & Sandler, PODS 2006) asks for "any collision free
//! secure hash (such as MD5 or WHIRLPOOL)" as the public function `H`; we
//! substitute SipHash-2-4 because it is a *keyed* PRF (the paper in fact
//! wants a keyed function — "the key used to define the global pseudorandom
//! function for the entire database"), it is a modern standard, and it is
//! small enough to implement and verify from scratch. The privacy results of
//! the paper are independent of the quality of this function (Lemma 3.3), so
//! the substitution is behaviour-preserving for privacy; utility experiments
//! cross-check SipHash against a ChaCha20-based PRF.
//!
//! The implementation is verified against the official test vectors from the
//! SipHash reference implementation.

/// Number of compression rounds (the "2" in SipHash-2-4).
const C_ROUNDS: usize = 2;
/// Number of finalization rounds (the "4" in SipHash-2-4).
const D_ROUNDS: usize = 4;

/// Streaming/one-shot SipHash-2-4 state over a 128-bit key.
///
/// The common entry point is [`SipHash24::hash`]:
///
/// ```
/// use psketch_prf::siphash::SipHash24;
/// let tag = SipHash24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908).hash(b"hello");
/// // Same input, same key => same tag.
/// assert_eq!(
///     tag,
///     SipHash24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908).hash(b"hello")
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl SipHash24 {
    /// Creates a SipHash-2-4 instance from the two 64-bit key halves.
    ///
    /// `k0` is the little-endian interpretation of key bytes 0..8 and `k1`
    /// of bytes 8..16, matching the reference implementation.
    #[must_use]
    pub const fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Creates a SipHash-2-4 instance from 16 key bytes (little-endian).
    #[must_use]
    pub fn from_key_bytes(key: &[u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        Self::new(k0, k1)
    }

    /// Hashes `data` and returns the 64-bit tag.
    #[must_use]
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = 0x736f_6d65_7073_6575_u64 ^ self.k0;
        let mut v1 = 0x646f_7261_6e64_6f6d_u64 ^ self.k1;
        let mut v2 = 0x6c79_6765_6e65_7261_u64 ^ self.k0;
        let mut v3 = 0x7465_6462_7974_6573_u64 ^ self.k1;

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            v3 ^= m;
            for _ in 0..C_ROUNDS {
                sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
        }

        // Final block: remaining bytes plus the message length in the top byte.
        let rem = chunks.remainder();
        let mut last = (data.len() as u64) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= u64::from(b) << (8 * i);
        }
        v3 ^= last;
        for _ in 0..C_ROUNDS {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..D_ROUNDS {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }

    /// Hashes `data` twice under domain-separated tweaks to produce a
    /// 128-bit output.
    ///
    /// Used when a single 64-bit value is not enough entropy (e.g. deriving
    /// a ChaCha nonce+counter from an arbitrary-length input).
    #[must_use]
    pub fn hash128(&self, data: &[u8]) -> u128 {
        // Tweak the key halves for the second lane; any fixed constant
        // yields an independent-looking PRF lane.
        let lo = self.hash(data);
        let hi = SipHash24::new(
            self.k0 ^ 0x5851_f42d_4c95_7f2d,
            self.k1 ^ 0x1405_7b7e_f767_814f,
        )
        .hash(data);
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

#[inline]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official vectors from the SipHash reference implementation
    /// (`vectors_sip64` in `vectors.h`): key = 000102…0f, message =
    /// 00 01 02 … of increasing length.
    const REFERENCE_VECTORS: [u64; 16] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
        0x93f5_f579_9a93_2462,
        0x9e00_82df_0ba9_e4b0,
        0x7a5d_bbc5_94dd_b9f3,
        0xf4b3_2f46_226b_ada7,
        0x751e_8fbc_860e_e5fb,
        0x14ea_5627_c084_3d90,
        0xf723_ca90_8e7a_f2ee,
        0xa129_ca61_49be_45e5,
    ];

    fn reference_key() -> SipHash24 {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        SipHash24::from_key_bytes(&key)
    }

    #[test]
    fn matches_reference_vectors() {
        let sip = reference_key();
        let msg: Vec<u8> = (0u8..16).collect();
        for (len, expected) in REFERENCE_VECTORS.iter().enumerate() {
            assert_eq!(
                sip.hash(&msg[..len]),
                *expected,
                "vector mismatch at message length {len}"
            );
        }
    }

    #[test]
    fn from_key_bytes_matches_new() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        assert_eq!(
            SipHash24::from_key_bytes(&key),
            SipHash24::new(0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908)
        );
    }

    #[test]
    fn distinct_keys_give_distinct_tags() {
        let a = SipHash24::new(1, 2).hash(b"payload");
        let b = SipHash24::new(3, 4).hash(b"payload");
        assert_ne!(a, b);
    }

    #[test]
    fn length_is_part_of_the_tag() {
        // A trailing zero byte must change the tag even though the padded
        // final block bytes would otherwise collide.
        let sip = reference_key();
        assert_ne!(sip.hash(b""), sip.hash(b"\0"));
        assert_ne!(sip.hash(b"\0\0\0\0\0\0\0"), sip.hash(b"\0\0\0\0\0\0\0\0"));
    }

    #[test]
    fn hash128_halves_are_independent_lanes() {
        let sip = reference_key();
        let wide = sip.hash128(b"abc");
        let lo = (wide & u128::from(u64::MAX)) as u64;
        let hi = (wide >> 64) as u64;
        assert_eq!(lo, sip.hash(b"abc"));
        assert_ne!(lo, hi);
    }

    #[test]
    fn exact_multiple_of_block_size() {
        // 8- and 16-byte messages exercise the empty-remainder path.
        let sip = reference_key();
        let msg: Vec<u8> = (0u8..16).collect();
        assert_eq!(sip.hash(&msg[..8]), REFERENCE_VECTORS[8]);
        // All 16 bytes: not in the table above but must be deterministic
        // and distinct from the 15-byte prefix.
        assert_ne!(sip.hash(&msg), sip.hash(&msg[..15]));
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let sip = reference_key();
        let base = sip.hash(b"avalanche test!!");
        let mut flipped = *b"avalanche test!!";
        flipped[0] ^= 1;
        let other = sip.hash(&flipped);
        let dist = (base ^ other).count_ones();
        assert!(
            (16..=48).contains(&dist),
            "poor avalanche: hamming distance {dist}"
        );
    }
}
