//! Probabilities as 64-bit fixed point, and biased-bit extraction.
//!
//! The paper (§3) turns a uniform hash output into a `p`-biased coin by
//! writing `p` in binary, `p = Σ pᵢ 2^{-i}`, and reporting 1 exactly when
//! the hash output — read as a binary fraction — is at most `p`. [`Bias`]
//! is that construction with λ = 64: a probability is the threshold
//! `⌊p·2⁶⁴⌋` and a uniform `u64` sample maps to 1 iff it is strictly below
//! the threshold. All probability arithmetic in the workspace goes through
//! this type so that the sketching side and the estimating side agree on
//! `p` to the bit.

use core::fmt;

/// A probability in `[0, 1]` stored as a 64-bit fixed-point threshold.
///
/// `Bias::from_prob(p).decide(u)` is true with probability exactly
/// `threshold / 2⁶⁴` over uniform `u: u64`, and `threshold` is the nearest
/// representable value to `p`. The quantization error is at most `2⁻⁶⁴`,
/// far below every statistical tolerance in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bias {
    /// `1` is decided iff the uniform sample is `< threshold`.
    threshold: u64,
}

impl Bias {
    /// Probability 0: never decides 1.
    pub const ZERO: Self = Self { threshold: 0 };

    /// Probability `1 − 2⁻⁶⁴`, the largest representable bias.
    ///
    /// Exact probability 1 is not representable; this is the saturation
    /// value used for inputs ≥ 1.
    pub const ALMOST_ONE: Self = Self {
        threshold: u64::MAX,
    };

    /// Probability 1/2 exactly.
    pub const HALF: Self = Self { threshold: 1 << 63 };

    /// Converts an `f64` probability to fixed point, clamping to `[0, 1)`.
    ///
    /// Values `≤ 0` — and NaN, so that hostile wire-format parameters can
    /// be *validated* rather than crash — become [`Bias::ZERO`]; values
    /// `≥ 1` become [`Bias::ALMOST_ONE`].
    #[must_use]
    pub fn from_prob(p: f64) -> Self {
        if p.is_nan() || p <= 0.0 {
            return Self::ZERO;
        }
        if p >= 1.0 {
            return Self::ALMOST_ONE;
        }
        // p ∈ (0, 1): p * 2^64 fits in u64 after rounding because
        // p ≤ 1 − 2⁻⁵³ ⇒ p·2⁶⁴ ≤ 2⁶⁴ − 2¹¹.
        let scaled = p * TWO_POW_64;
        Self {
            threshold: scaled as u64,
        }
    }

    /// Builds a bias directly from its fixed-point threshold.
    #[must_use]
    pub const fn from_threshold(threshold: u64) -> Self {
        Self { threshold }
    }

    /// The fixed-point threshold `⌊p·2⁶⁴⌋`.
    #[must_use]
    pub const fn threshold(self) -> u64 {
        self.threshold
    }

    /// The probability as `f64` (rounded to nearest).
    #[must_use]
    pub fn prob(self) -> f64 {
        self.threshold as f64 / TWO_POW_64
    }

    /// Maps a uniform sample to a biased bit: true with probability `p`.
    #[inline]
    #[must_use]
    pub const fn decide(self, uniform_sample: u64) -> bool {
        uniform_sample < self.threshold
    }

    /// The complementary bias `1 − p` (up to the `2⁻⁶⁴` quantum).
    #[must_use]
    pub const fn complement(self) -> Self {
        Self {
            threshold: u64::MAX - self.threshold,
        }
    }

    /// Whether this bias is strictly below one half.
    ///
    /// The paper's estimators require `p < 1/2` (the `1 − 2p` denominator
    /// of Algorithm 2); parameter validation uses this predicate.
    #[must_use]
    pub const fn is_below_half(self) -> bool {
        self.threshold < 1 << 63
    }
}

const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;

impl fmt::Debug for Bias {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bias({:.6})", self.prob())
    }
}

impl fmt::Display for Bias {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prob())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values() {
        assert_eq!(Bias::from_prob(0.0), Bias::ZERO);
        assert_eq!(Bias::from_prob(-3.0), Bias::ZERO);
        assert_eq!(Bias::from_prob(1.0), Bias::ALMOST_ONE);
        assert_eq!(Bias::from_prob(7.5), Bias::ALMOST_ONE);
        assert_eq!(Bias::from_prob(0.5), Bias::HALF);
    }

    #[test]
    fn zero_never_decides_one() {
        for u in [0, 1, u64::MAX / 2, u64::MAX] {
            assert!(!Bias::ZERO.decide(u));
        }
    }

    #[test]
    fn almost_one_decides_one_except_max() {
        assert!(Bias::ALMOST_ONE.decide(0));
        assert!(Bias::ALMOST_ONE.decide(u64::MAX - 1));
        assert!(!Bias::ALMOST_ONE.decide(u64::MAX));
    }

    #[test]
    fn prob_round_trip_accuracy() {
        for &p in &[0.1, 0.25, 0.3, 1.0 / 3.0, 0.45, 0.49999, 0.5, 0.75] {
            let b = Bias::from_prob(p);
            assert!(
                (b.prob() - p).abs() < 1e-15,
                "round trip of {p} drifted to {}",
                b.prob()
            );
        }
    }

    #[test]
    fn complement_is_involutive_and_sums_to_one() {
        let b = Bias::from_prob(0.3);
        assert_eq!(b.complement().complement(), b);
        assert!((b.prob() + b.complement().prob() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn below_half_predicate() {
        assert!(Bias::from_prob(0.4999999).is_below_half());
        assert!(!Bias::HALF.is_below_half());
        assert!(!Bias::from_prob(0.7).is_below_half());
    }

    #[test]
    fn decide_threshold_semantics_exact() {
        let b = Bias::from_threshold(10);
        assert!(b.decide(9));
        assert!(!b.decide(10));
        assert!(!b.decide(11));
    }

    #[test]
    fn empirical_frequency_matches_probability() {
        // Deterministic low-discrepancy sweep of the sample space.
        let b = Bias::from_prob(0.3);
        let n = 100_000u64;
        let step = u64::MAX / n;
        let hits = (0..n).filter(|i| b.decide(i * step)).count();
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - 0.3).abs() < 1e-3,
            "swept frequency {freq} far from 0.3"
        );
    }
}
