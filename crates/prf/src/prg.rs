//! Deterministic counter-mode pseudorandom generator over ChaCha20.
//!
//! Experiments in this workspace must be exactly reproducible (the paper's
//! analyses are probabilistic; our tables fix seeds so that every run prints
//! the same numbers). [`Prg`] is a ChaCha20 keystream exposed through the
//! `rand_core` traits, so it can drive every `rand` distribution while
//! remaining fully deterministic and independent of `rand`'s unspecified
//! internal algorithms across versions.

use crate::chacha::{chacha20_block, ChaChaKey};
use crate::prf::GlobalKey;
use rand::rand_core::{Infallible, TryRng};
use rand::SeedableRng;

/// Deterministic ChaCha20-based random generator.
///
/// Implements [`rand::Rng`] (via `TryRng<Error = Infallible>`), so it can be
/// used anywhere a `rand` RNG is expected:
///
/// ```
/// use psketch_prf::prg::Prg;
/// use rand::{RngExt, SeedableRng};
/// let mut a = Prg::seed_from_u64(9);
/// let mut b = Prg::seed_from_u64(9);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct Prg {
    key: ChaChaKey,
    /// 96-bit stream selector; distinct streams are independent.
    nonce: [u32; 3],
    counter: u32,
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill required".
    cursor: usize,
}

impl Prg {
    /// Creates a generator from a 256-bit key with stream selector 0.
    #[must_use]
    pub fn from_key(key: &GlobalKey) -> Self {
        Self::from_key_and_stream(key, 0)
    }

    /// Creates a generator from a key and a 64-bit stream id.
    ///
    /// Streams with different ids are computationally independent; the
    /// experiment harness gives each (experiment, repetition) pair its own
    /// stream so results are order-independent and parallelizable.
    #[must_use]
    pub fn from_key_and_stream(key: &GlobalKey, stream: u64) -> Self {
        Self {
            key: ChaChaKey::from_bytes(key.as_bytes()),
            nonce: [stream as u32, (stream >> 32) as u32, 0],
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    /// Derives a child generator with an independent stream.
    ///
    /// Useful for handing every simulated user its own private coin source.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        let a = self.next_word();
        let b = self.next_word();
        let mut child = self.clone();
        child.nonce = [a, b, self.nonce[2].wrapping_add(1)];
        child.counter = 0;
        child.cursor = 16;
        child
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor == 16 {
            self.block = chacha20_block(&self.key, self.counter, self.nonce);
            self.counter = self.counter.wrapping_add(1);
            if self.counter == 0 {
                // 2^32 blocks (256 GiB) exhausted: move to the next nonce
                // plane rather than repeating the keystream.
                self.nonce[2] = self.nonce[2].wrapping_add(1);
            }
            self.cursor = 0;
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl TryRng for Prg {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok(self.next_word())
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        Ok((hi << 32) | lo)
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dst.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_word().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_word().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
        Ok(())
    }
}

impl SeedableRng for Prg {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::from_key(&GlobalKey::from_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_key(&GlobalKey::from_seed(state))
    }
}

/// Convenience: a fresh deterministic generator for test/bench code.
#[must_use]
pub fn test_rng(seed: u64) -> Prg {
    Prg::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prg::seed_from_u64(1);
        let mut b = Prg::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_select_different_streams() {
        let mut a = Prg::seed_from_u64(1);
        let mut b = Prg::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_ids_select_different_streams() {
        let key = GlobalKey::from_seed(5);
        let mut a = Prg::from_key_and_stream(&key, 0);
        let mut b = Prg::from_key_and_stream(&key, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = Prg::seed_from_u64(3);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Prg::seed_from_u64(4);
        for len in [0usize, 1, 3, 4, 5, 7, 8, 13, 64, 65] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced zeros");
            }
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = Prg::seed_from_u64(6);
        let mut b = Prg::seed_from_u64(6);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let expected = b.next_u64();
        assert_eq!(u64::from_le_bytes(buf), expected);
    }

    #[test]
    fn works_with_rand_distributions() {
        let mut rng = Prg::seed_from_u64(7);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let y = rng.random_range(0..10u32);
        assert!(y < 10);
    }

    #[test]
    fn mean_of_uniform_f64_is_half() {
        let mut rng = Prg::seed_from_u64(8);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
