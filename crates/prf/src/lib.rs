//! # psketch-prf — pseudorandom-function substrate
//!
//! From-scratch cryptographic building blocks for the *Privacy via
//! Pseudorandom Sketches* reproduction (Mishra & Sandler, PODS 2006):
//!
//! * [`siphash`] — SipHash-2-4, verified against the official reference
//!   vectors; the default instantiation of the paper's public function `H`.
//! * [`chacha`] — the ChaCha20 block function (RFC 8439 vectors); powers
//!   the second PRF instantiation and the deterministic experiment PRG.
//! * [`bias`] — probabilities as 64-bit fixed point and the paper's
//!   "compare the hash output to the binary expansion of p" biased bit.
//! * [`encode`] — injective, domain-separated byte encoding of PRF inputs.
//! * [`lanes`] — multi-lane SipHash: N interleaved hash streams per
//!   instruction sequence (structure-of-arrays, autovectorized), with the
//!   process-wide lane-width knob. Bit-identical to [`siphash`].
//! * [`prf`] — the [`prf::Prf`] trait and keyed instantiations.
//! * [`prg`] — a ChaCha20 counter-mode generator implementing the `rand`
//!   traits, so every experiment in the workspace is exactly reproducible.
//!
//! The paper's privacy theorem (its Lemma 3.3) is *independent* of the
//! pseudorandomness of `H`; only utility relies on it. This crate therefore
//! provides two independent PRF families so the utility experiments can
//! cross-check one against the other.

// `deny` rather than `forbid`: the lane dispatcher in `lanes` needs two
// tightly-scoped `#[allow(unsafe_code)]` blocks to call its runtime-
// feature-detected `#[target_feature]` kernels. Everything else stays
// unsafe-free, and any new unsafe outside those blocks is still an error.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod chacha;
pub mod encode;
pub mod lanes;
pub mod prf;
pub mod prg;
pub mod siphash;

pub use bias::Bias;
pub use encode::InputEncoder;
pub use lanes::{
    lane_width, probe_lane_width, set_lane_width, LaneWidthError, SipStateX4, SipStateX8,
    SipStateXN, SUPPORTED_LANE_WIDTHS,
};
pub use prf::{AnyPrf, ChaChaPrf, GlobalKey, Prf, PrfKind, PrfPrefix, SipPrf};
pub use prg::Prg;
