//! Canonical, injective byte encoding of PRF inputs.
//!
//! The paper's public function `H(id, B, v, s)` takes a tuple of
//! heterogeneous arguments. Its security analysis treats every distinct
//! tuple as an independent coin, so the byte encoding fed to the underlying
//! keyed hash must be *injective*: two different tuples may never serialize
//! to the same byte string. [`InputEncoder`] guarantees this by
//! length-prefixing every variable-length field and domain-separating every
//! call site with a tag byte.

/// Incremental injective encoder for PRF inputs.
///
/// Every field is written with an unambiguous framing: fixed-width integers
/// are written raw (little-endian), variable-length fields carry a u32
/// length prefix. As long as two call sites write the same *sequence of
/// field types*, equal encodings imply equal field values; the leading
/// domain tag separates call sites that do not.
#[derive(Debug, Default, Clone)]
pub struct InputEncoder {
    buf: Vec<u8>,
}

impl InputEncoder {
    /// Creates an encoder seeded with a domain-separation tag.
    #[must_use]
    pub fn with_domain(tag: u8) -> Self {
        let mut enc = Self {
            buf: Vec::with_capacity(64),
        };
        enc.buf.push(tag);
        enc
    }

    /// Appends a fixed-width u64 (little-endian).
    pub fn put_u64(&mut self, value: u64) -> &mut Self {
        self.buf.extend_from_slice(&value.to_le_bytes());
        self
    }

    /// Appends a fixed-width u32 (little-endian).
    pub fn put_u32(&mut self, value: u32) -> &mut Self {
        self.buf.extend_from_slice(&value.to_le_bytes());
        self
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, value: u8) -> &mut Self {
        self.buf.push(value);
        self
    }

    /// Appends a length-prefixed byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() ≥ 2³²` (not reachable for any input in this
    /// workspace; profiles are bounded by the u32 attribute space).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        let len = u32::try_from(bytes.len()).expect("PRF input field exceeds u32 length");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Appends a length-prefixed sequence of u32 values (little-endian).
    pub fn put_u32_seq(&mut self, values: &[u32]) -> &mut Self {
        let len = u32::try_from(values.len()).expect("PRF input field exceeds u32 length");
        self.put_u32(len);
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Appends a length-prefixed bit string packed LSB-first into bytes.
    ///
    /// The *bit* count is the prefix, so `[true]` and `[true, false]`
    /// encode differently even though both pack into one byte.
    pub fn put_bits(&mut self, bits: &[bool]) -> &mut Self {
        let len = u32::try_from(bits.len()).expect("PRF input field exceeds u32 length");
        self.put_u32(len);
        let mut byte = 0u8;
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !bits.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
        self
    }

    /// Finishes encoding and returns the byte string.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes encoded so far.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn domain_tag_leads() {
        let enc = InputEncoder::with_domain(0xAB);
        assert_eq!(enc.as_bytes(), &[0xAB]);
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let mut enc = InputEncoder::with_domain(0);
        enc.put_bytes(b"xy");
        assert_eq!(enc.as_bytes(), &[0, 2, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn bit_count_disambiguates_padding() {
        let mut a = InputEncoder::with_domain(0);
        a.put_bits(&[true]);
        let mut b = InputEncoder::with_domain(0);
        b.put_bits(&[true, false]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn bit_packing_is_lsb_first() {
        let mut enc = InputEncoder::with_domain(0);
        enc.put_bits(&[true, false, true, true]); // 0b1101 = 13
        assert_eq!(enc.as_bytes(), &[0, 4, 0, 0, 0, 13]);
    }

    #[test]
    fn nine_bits_spill_into_second_byte() {
        let mut enc = InputEncoder::with_domain(0);
        let bits = [true; 9];
        enc.put_bits(&bits);
        assert_eq!(enc.as_bytes(), &[0, 9, 0, 0, 0, 0xFF, 0x01]);
    }

    proptest! {
        /// Injectivity: distinct (bytes, bits, u64) triples never collide.
        #[test]
        fn injective_on_triples(
            a_bytes in proptest::collection::vec(any::<u8>(), 0..16),
            a_bits in proptest::collection::vec(any::<bool>(), 0..24),
            a_num in any::<u64>(),
            b_bytes in proptest::collection::vec(any::<u8>(), 0..16),
            b_bits in proptest::collection::vec(any::<bool>(), 0..24),
            b_num in any::<u64>(),
        ) {
            let encode = |bytes: &[u8], bits: &[bool], num: u64| {
                let mut e = InputEncoder::with_domain(1);
                e.put_bytes(bytes).put_bits(bits).put_u64(num);
                e.finish()
            };
            let ea = encode(&a_bytes, &a_bits, a_num);
            let eb = encode(&b_bytes, &b_bits, b_num);
            let same_inputs = a_bytes == b_bytes && a_bits == b_bits && a_num == b_num;
            prop_assert_eq!(ea == eb, same_inputs);
        }

        /// u32 sequences with different splits never collide.
        #[test]
        fn u32_seq_framing(
            xs in proptest::collection::vec(any::<u32>(), 0..8),
            ys in proptest::collection::vec(any::<u32>(), 0..8),
        ) {
            let mut a = InputEncoder::with_domain(2);
            a.put_u32_seq(&xs);
            let mut b = InputEncoder::with_domain(2);
            b.put_u32_seq(&ys);
            prop_assert_eq!(a.finish() == b.finish(), xs == ys);
        }
    }
}
