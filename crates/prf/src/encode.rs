//! Canonical, injective byte encoding of PRF inputs.
//!
//! The paper's public function `H(id, B, v, s)` takes a tuple of
//! heterogeneous arguments. Its security analysis treats every distinct
//! tuple as an independent coin, so the byte encoding fed to the underlying
//! keyed hash must be *injective*: two different tuples may never serialize
//! to the same byte string. [`InputEncoder`] guarantees this by
//! length-prefixing every variable-length field and domain-separating every
//! call site with a tag byte.

/// Incremental injective encoder for PRF inputs.
///
/// Every field is written with an unambiguous framing: fixed-width integers
/// are written raw (little-endian), variable-length fields carry a u32
/// length prefix. As long as two call sites write the same *sequence of
/// field types*, equal encodings imply equal field values; the leading
/// domain tag separates call sites that do not.
#[derive(Debug, Default, Clone)]
pub struct InputEncoder {
    buf: Vec<u8>,
}

impl InputEncoder {
    /// Creates an encoder seeded with a domain-separation tag.
    #[must_use]
    pub fn with_domain(tag: u8) -> Self {
        let mut enc = Self {
            buf: Vec::with_capacity(64),
        };
        enc.buf.push(tag);
        enc
    }

    /// Appends a fixed-width u64 (little-endian).
    pub fn put_u64(&mut self, value: u64) -> &mut Self {
        self.buf.extend_from_slice(&value.to_le_bytes());
        self
    }

    /// Appends a fixed-width u32 (little-endian).
    pub fn put_u32(&mut self, value: u32) -> &mut Self {
        self.buf.extend_from_slice(&value.to_le_bytes());
        self
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, value: u8) -> &mut Self {
        self.buf.push(value);
        self
    }

    /// Appends a length-prefixed byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() ≥ 2³²` (not reachable for any input in this
    /// workspace; profiles are bounded by the u32 attribute space).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        let len = u32::try_from(bytes.len()).expect("PRF input field exceeds u32 length");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Appends a length-prefixed sequence of u32 values (little-endian).
    pub fn put_u32_seq(&mut self, values: &[u32]) -> &mut Self {
        let len = u32::try_from(values.len()).expect("PRF input field exceeds u32 length");
        self.put_u32(len);
        for v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Appends a length-prefixed bit string packed LSB-first into bytes.
    ///
    /// The *bit* count is the prefix, so `[true]` and `[true, false]`
    /// encode differently even though both pack into one byte.
    pub fn put_bits(&mut self, bits: &[bool]) -> &mut Self {
        let len = u32::try_from(bits.len()).expect("PRF input field exceeds u32 length");
        self.put_u32(len);
        let mut byte = 0u8;
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !bits.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
        self
    }

    /// Finishes encoding and returns the byte string.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes encoded so far.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded (not even a domain tag).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    // ------------------------------------------------------------------
    // Reusable-prefix API.
    //
    // Hot paths evaluate the PRF on many inputs sharing a common prefix
    // (Algorithm 1 re-hashes the same `(id, B, v)` under many candidate
    // keys; Algorithm 2 re-hashes the same `(B, v)` for every record in a
    // shard). Instead of re-encoding the whole tuple per evaluation, a
    // caller encodes the shared prefix once, records a [`mark`](Self::mark),
    // and then either truncates back to the mark and appends a fresh
    // suffix, or splices fixed-width fields in place. Both preserve the
    // injectivity argument: the byte layout is identical to a fresh
    // end-to-end encoding of the same field sequence.

    /// Returns a position marker for the bytes encoded so far.
    #[must_use]
    pub fn mark(&self) -> usize {
        self.buf.len()
    }

    /// Pads with zero bytes until the encoded length is a multiple of
    /// `align`. The pad length is a function of the current length, so
    /// padding preserves injectivity (all real fields are framed).
    ///
    /// Hot paths align a shared prefix to the PRF's block size so that
    /// per-evaluation suffix fields land on block boundaries.
    pub fn pad_to(&mut self, align: usize) -> &mut Self {
        debug_assert!(align.is_power_of_two());
        while !self.buf.len().is_multiple_of(align) {
            self.buf.push(0);
        }
        self
    }

    /// Rolls the encoding back to a previous [`mark`](Self::mark), keeping
    /// the prefix and the buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if `mark` lies beyond the encoded length.
    pub fn truncate(&mut self, mark: usize) -> &mut Self {
        assert!(mark <= self.buf.len(), "mark beyond encoded length");
        self.buf.truncate(mark);
        self
    }

    /// Overwrites the fixed-width u64 previously written at byte offset
    /// `at` (as by [`put_u64`](Self::put_u64)) without re-encoding the
    /// rest of the input.
    ///
    /// # Panics
    ///
    /// Panics if `at + 8` exceeds the encoded length.
    #[inline]
    pub fn splice_u64(&mut self, at: usize, value: u64) -> &mut Self {
        self.buf[at..at + 8].copy_from_slice(&value.to_le_bytes());
        self
    }

    /// Overwrites `bytes.len()` bytes in place at offset `at`. The caller
    /// must keep the replaced region's framing (length prefixes) intact —
    /// this is for fixed-width payload regions only.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the encoded length.
    #[inline]
    pub fn splice_bytes(&mut self, at: usize, bytes: &[u8]) -> &mut Self {
        self.buf[at..at + bytes.len()].copy_from_slice(bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn domain_tag_leads() {
        let enc = InputEncoder::with_domain(0xAB);
        assert_eq!(enc.as_bytes(), &[0xAB]);
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let mut enc = InputEncoder::with_domain(0);
        enc.put_bytes(b"xy");
        assert_eq!(enc.as_bytes(), &[0, 2, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn bit_count_disambiguates_padding() {
        let mut a = InputEncoder::with_domain(0);
        a.put_bits(&[true]);
        let mut b = InputEncoder::with_domain(0);
        b.put_bits(&[true, false]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn bit_packing_is_lsb_first() {
        let mut enc = InputEncoder::with_domain(0);
        enc.put_bits(&[true, false, true, true]); // 0b1101 = 13
        assert_eq!(enc.as_bytes(), &[0, 4, 0, 0, 0, 13]);
    }

    #[test]
    fn nine_bits_spill_into_second_byte() {
        let mut enc = InputEncoder::with_domain(0);
        let bits = [true; 9];
        enc.put_bits(&bits);
        assert_eq!(enc.as_bytes(), &[0, 9, 0, 0, 0, 0xFF, 0x01]);
    }

    #[test]
    fn truncate_and_append_matches_fresh_encoding() {
        // Prefix reuse must be byte-identical to end-to-end encoding.
        let mut reused = InputEncoder::with_domain(7);
        reused.put_u64(11).put_u32_seq(&[1, 2, 3]);
        let mark = reused.mark();
        for (bits, key) in [(vec![true, false], 5u64), (vec![false, false], 9)] {
            reused.truncate(mark);
            reused.put_bits(&bits).put_u64(key);

            let mut fresh = InputEncoder::with_domain(7);
            fresh
                .put_u64(11)
                .put_u32_seq(&[1, 2, 3])
                .put_bits(&bits)
                .put_u64(key);
            assert_eq!(reused.as_bytes(), fresh.as_bytes());
        }
    }

    #[test]
    fn splice_u64_overwrites_in_place() {
        let mut spliced = InputEncoder::with_domain(1);
        let id_at = spliced.mark();
        spliced.put_u64(0).put_bits(&[true]);
        let key_at = spliced.mark();
        spliced.put_u64(0);
        spliced.splice_u64(id_at, 42).splice_u64(key_at, 99);

        let mut fresh = InputEncoder::with_domain(1);
        fresh.put_u64(42).put_bits(&[true]).put_u64(99);
        assert_eq!(spliced.as_bytes(), fresh.as_bytes());
    }

    #[test]
    fn splice_bytes_keeps_length() {
        let mut enc = InputEncoder::with_domain(0);
        enc.put_bytes(b"abcd");
        let before = enc.len();
        enc.splice_bytes(5, b"xy");
        assert_eq!(enc.len(), before);
        assert_eq!(&enc.as_bytes()[5..9], b"xycd".as_slice());
    }

    #[test]
    #[should_panic(expected = "mark beyond encoded length")]
    fn truncate_past_end_panics() {
        InputEncoder::with_domain(0).truncate(10);
    }

    proptest! {
        /// Injectivity: distinct (bytes, bits, u64) triples never collide.
        #[test]
        fn injective_on_triples(
            a_bytes in proptest::collection::vec(any::<u8>(), 0..16),
            a_bits in proptest::collection::vec(any::<bool>(), 0..24),
            a_num in any::<u64>(),
            b_bytes in proptest::collection::vec(any::<u8>(), 0..16),
            b_bits in proptest::collection::vec(any::<bool>(), 0..24),
            b_num in any::<u64>(),
        ) {
            let encode = |bytes: &[u8], bits: &[bool], num: u64| {
                let mut e = InputEncoder::with_domain(1);
                e.put_bytes(bytes).put_bits(bits).put_u64(num);
                e.finish()
            };
            let ea = encode(&a_bytes, &a_bits, a_num);
            let eb = encode(&b_bytes, &b_bits, b_num);
            let same_inputs = a_bytes == b_bytes && a_bits == b_bits && a_num == b_num;
            prop_assert_eq!(ea == eb, same_inputs);
        }

        /// u32 sequences with different splits never collide.
        #[test]
        fn u32_seq_framing(
            xs in proptest::collection::vec(any::<u32>(), 0..8),
            ys in proptest::collection::vec(any::<u32>(), 0..8),
        ) {
            let mut a = InputEncoder::with_domain(2);
            a.put_u32_seq(&xs);
            let mut b = InputEncoder::with_domain(2);
            b.put_u32_seq(&ys);
            prop_assert_eq!(a.finish() == b.finish(), xs == ys);
        }
    }
}
