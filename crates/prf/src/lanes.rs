//! Multi-lane SipHash-2-4: N independent hash streams per instruction
//! sequence.
//!
//! Every estimate in this workspace bottoms out in millions of independent
//! SipHash evaluations over columnar shards. The SipHash rounds are pure
//! ARX — add, rotate, xor — with no data-dependent branches and no
//! cross-stream dependencies, so N independent streams laid out as
//! structure-of-arrays `[u64; LANES]` registers compile to N-wide vector
//! instructions: one `vpaddq`/`vprolq`/`vpxorq` sequence advances all N
//! streams at once under AVX-512 (8 × u64 per zmm register, with a native
//! lane rotate), and narrower ISAs still profit from the explicit
//! instruction-level parallelism.
//!
//! [`SipStateXN`] is the lane-parallel mirror of
//! [`SipState`](crate::siphash::SipState): it broadcasts a block-aligned
//! scalar prefix state into N lanes and finishes N suffixes per call. The
//! scalar `SipState` remains the reference implementation — it carries the
//! official-test-vector anchor — and every lane path is bit-identical to
//! it by construction (same compression schedule, same finalization; the
//! property tests in this module and in `prf.rs` prove it over random
//! keys, prefixes and batch shapes).
//!
//! Lane width is a process-wide knob: [`probe_lane_width`] picks a
//! sensible default from the host CPU (8 on AVX-512, 4 elsewhere — the
//! 4-lane structure-of-arrays form matches or beats the hand-unrolled
//! scalar loop through instruction-level parallelism alone), and
//! [`set_lane_width`] overrides it (CLI `--lanes` on `serve` and the
//! experiment harness). Because all widths are bit-identical, the knob is
//! purely a performance choice — answers never depend on it.

use crate::bias::Bias;
use crate::siphash::SipState;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of compression rounds (the "2" in SipHash-2-4).
const C_ROUNDS: usize = 2;
/// Number of finalization rounds (the "4" in SipHash-2-4).
const D_ROUNDS: usize = 4;

/// The lane widths the dispatcher knows how to run: scalar, 4-wide and
/// 8-wide structure-of-arrays. Other widths evaluate through the scalar
/// reference loop.
pub const SUPPORTED_LANE_WIDTHS: &[usize] = &[1, 4, 8];

/// `LANES` independent SipHash-2-4 streams advanced in lockstep.
///
/// The four SipHash registers are stored as `[u64; LANES]` arrays
/// (structure-of-arrays), so every ARX operation in a round is an
/// elementwise loop over lanes that the compiler turns into vector
/// instructions. All lanes share the same absorbed prefix (broadcast by
/// [`SipStateXN::splat`]) and diverge only in the finishing blocks —
/// exactly the shape of a shard scan, where the query prefix is shared
/// and the per-record `(id, key)` fields differ.
///
/// Lane `i` of every output equals the scalar
/// [`SipState`](crate::siphash::SipState) evaluation of the same byte
/// stream, bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct SipStateXN<const LANES: usize> {
    v0: [u64; LANES],
    v1: [u64; LANES],
    v2: [u64; LANES],
    v3: [u64; LANES],
}

/// Four-lane SipHash state (one SSE/AVX2-era register pair per variable).
pub type SipStateX4 = SipStateXN<4>;
/// Eight-lane SipHash state (one AVX-512 zmm register per variable).
pub type SipStateX8 = SipStateXN<8>;

impl<const LANES: usize> SipStateXN<LANES> {
    /// Broadcasts a block-aligned scalar prefix state into all lanes.
    ///
    /// # Panics
    ///
    /// Panics unless the state is block-aligned (no residual tail bytes)
    /// — lanes only ever compress whole 8-byte blocks.
    #[must_use]
    pub fn splat(state: &SipState) -> Self {
        assert!(
            state.is_block_aligned(),
            "lane states broadcast only from block-aligned prefixes"
        );
        let [v0, v1, v2, v3] = state.words();
        Self {
            v0: [v0; LANES],
            v1: [v1; LANES],
            v2: [v2; LANES],
            v3: [v3; LANES],
        }
    }

    /// One SipHash round across all lanes. Each statement is an
    /// elementwise array operation — the vectorizable form of the scalar
    /// round in `siphash.rs`.
    #[inline(always)]
    fn round(&mut self) {
        for i in 0..LANES {
            self.v0[i] = self.v0[i].wrapping_add(self.v1[i]);
        }
        for i in 0..LANES {
            self.v1[i] = self.v1[i].rotate_left(13);
        }
        for i in 0..LANES {
            self.v1[i] ^= self.v0[i];
        }
        for i in 0..LANES {
            self.v0[i] = self.v0[i].rotate_left(32);
        }
        for i in 0..LANES {
            self.v2[i] = self.v2[i].wrapping_add(self.v3[i]);
        }
        for i in 0..LANES {
            self.v3[i] = self.v3[i].rotate_left(16);
        }
        for i in 0..LANES {
            self.v3[i] ^= self.v2[i];
        }
        for i in 0..LANES {
            self.v0[i] = self.v0[i].wrapping_add(self.v3[i]);
        }
        for i in 0..LANES {
            self.v3[i] = self.v3[i].rotate_left(21);
        }
        for i in 0..LANES {
            self.v3[i] ^= self.v0[i];
        }
        for i in 0..LANES {
            self.v2[i] = self.v2[i].wrapping_add(self.v1[i]);
        }
        for i in 0..LANES {
            self.v1[i] = self.v1[i].rotate_left(17);
        }
        for i in 0..LANES {
            self.v1[i] ^= self.v2[i];
        }
        for i in 0..LANES {
            self.v2[i] = self.v2[i].rotate_left(32);
        }
    }

    /// Compresses one message block per lane.
    // Indexed lane loops keep every elementwise op in the exact shape
    // the SLP vectorizer recognizes, matching `round()`.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    fn compress(&mut self, m: &[u64; LANES]) {
        for i in 0..LANES {
            self.v3[i] ^= m[i];
        }
        for _ in 0..C_ROUNDS {
            self.round();
        }
        for i in 0..LANES {
            self.v0[i] ^= m[i];
        }
    }

    /// Compresses the same message block into every lane (shared tails).
    #[inline(always)]
    fn compress_splat(&mut self, m: u64) {
        for i in 0..LANES {
            self.v3[i] ^= m;
        }
        for _ in 0..C_ROUNDS {
            self.round();
        }
        for i in 0..LANES {
            self.v0[i] ^= m;
        }
    }

    /// The D-round finalization, consuming the copied state.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    fn finalize_rounds(mut self) -> [u64; LANES] {
        for i in 0..LANES {
            self.v2[i] ^= 0xff;
        }
        for _ in 0..D_ROUNDS {
            self.round();
        }
        let mut out = [0u64; LANES];
        for i in 0..LANES {
            out[i] = self.v0[i] ^ self.v1[i] ^ self.v2[i] ^ self.v3[i];
        }
        out
    }

    /// Lane-parallel mirror of
    /// [`SipState::finish_u64x2_then`](crate::siphash::SipState::finish_u64x2_then):
    /// per lane `i`, absorbs `a[i]` and `b[i]` (the per-record id/key
    /// pair) plus the shared precomputed final block, and finalizes.
    /// `self` is unchanged (copy semantics), so one broadcast prefix
    /// state serves the whole scan.
    #[inline(always)]
    #[must_use]
    pub fn finish_u64x2_then(
        &self,
        a: &[u64; LANES],
        b: &[u64; LANES],
        packed_tail: u64,
    ) -> [u64; LANES] {
        let mut s = *self;
        s.compress(a);
        s.compress(b);
        s.compress_splat(packed_tail);
        s.finalize_rounds()
    }

    /// Lane-parallel mirror of
    /// [`SipState::finish_then`](crate::siphash::SipState::finish_then):
    /// one precomputed final block per lane on top of the shared prefix.
    #[inline(always)]
    #[must_use]
    pub fn finish_then(&self, packed_tails: &[u64; LANES]) -> [u64; LANES] {
        let mut s = *self;
        s.compress(packed_tails);
        s.finalize_rounds()
    }
}

// ---------------------------------------------------------------------------
// Lane-width configuration
// ---------------------------------------------------------------------------

/// Sentinel: no explicit configuration, use the probed default.
const AUTO: usize = 0;

/// The configured lane width (`AUTO` until [`set_lane_width`] is called).
static CONFIGURED: AtomicUsize = AtomicUsize::new(AUTO);

/// An invalid lane-width configuration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWidthError(usize);

impl std::fmt::Display for LaneWidthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsupported lane width {} (supported: 0 = auto, {:?})",
            self.0, SUPPORTED_LANE_WIDTHS
        )
    }
}

impl std::error::Error for LaneWidthError {}

/// The lane width the host CPU is expected to profit from, probed once.
///
/// * x86-64 with AVX-512F: 8 — one zmm register per SipHash variable and
///   a native 64-bit lane rotate (`vprolq`); measured 3.2× over the
///   hand-unrolled scalar loop on the reference host.
/// * everything else: 4 — the 4-lane structure-of-arrays form matches or
///   modestly beats the scalar loop through instruction-level
///   parallelism and narrower vectors, and never loses (measured ≈1.1×
///   on the reference host when forced off the AVX-512 path).
#[must_use]
pub fn probe_lane_width() -> usize {
    static PROBED: OnceLock<usize> = OnceLock::new();

    fn detect() -> usize {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx512f") {
            return 8;
        }
        4
    }

    *PROBED.get_or_init(detect)
}

/// Overrides the process-wide lane width: `0` restores auto-probing,
/// `1` forces the scalar reference loop, `4`/`8` force that lane count.
///
/// Safe to call at any time — every width computes bit-identical answers,
/// so a mid-flight change can only alter throughput, never results.
///
/// # Errors
///
/// [`LaneWidthError`] for widths outside `{0} ∪` [`SUPPORTED_LANE_WIDTHS`].
pub fn set_lane_width(width: usize) -> Result<(), LaneWidthError> {
    if width != AUTO && !SUPPORTED_LANE_WIDTHS.contains(&width) {
        return Err(LaneWidthError(width));
    }
    // ord: standalone config word; callers set it before spawning the
    // scan threads that read it, and thread::spawn orders the handoff
    CONFIGURED.store(width, Ordering::Relaxed);
    Ok(())
}

/// The effective lane width: the configured override, or the probed
/// hardware default.
#[must_use]
pub fn lane_width() -> usize {
    // ord: see `set_lane_width` — the spawn edge does the ordering
    match CONFIGURED.load(Ordering::Relaxed) {
        AUTO => probe_lane_width(),
        width => width,
    }
}

// ---------------------------------------------------------------------------
// Dispatched batch kernels (crate-internal: `PrfPrefix` calls these)
// ---------------------------------------------------------------------------

/// Whether the AVX-512F fast path is available on this host.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512_available() -> bool {
    // `is_x86_feature_detected!` caches its CPUID probe internally.
    std::arch::is_x86_feature_detected!("avx512f")
}

/// Counts biased-1 outcomes over `(id, key)` column pairs under a shared
/// block-aligned prefix state and a shared precomputed final block — the
/// Algorithm 2 inner loop, dispatched by lane width.
pub(crate) fn count_columns(
    state: &SipState,
    ids: &[u64],
    keys: &[u64],
    packed_tail: u64,
    bias: Bias,
    width: usize,
) -> usize {
    match width {
        8 => {
            #[cfg(target_arch = "x86_64")]
            if avx512_available() {
                // SAFETY: `count_columns_x8_avx512` requires AVX-512F,
                // which the branch above just detected at runtime.
                #[allow(unsafe_code)]
                return unsafe { count_columns_x8_avx512(state, ids, keys, packed_tail, bias) };
            }
            count_columns_lanes::<8>(state, ids, keys, packed_tail, bias)
        }
        4 => count_columns_lanes::<4>(state, ids, keys, packed_tail, bias),
        _ => count_columns_scalar(state, ids, keys, packed_tail, bias),
    }
}

/// The scalar reference loop: four independent streams interleaved by
/// hand so the CPU overlaps their round chains (SipHash is latency-bound
/// on a single stream). This is the `width = 1` path and the remainder
/// loop's big brother; it was the pre-lane production code.
fn count_columns_scalar(
    state: &SipState,
    ids: &[u64],
    keys: &[u64],
    packed_tail: u64,
    bias: Bias,
) -> usize {
    let mut ones = 0usize;
    let mut id4 = ids.chunks_exact(4);
    let mut key4 = keys.chunks_exact(4);
    for (id, key) in (&mut id4).zip(&mut key4) {
        let r0 = state.finish_u64x2_then(id[0], key[0], packed_tail);
        let r1 = state.finish_u64x2_then(id[1], key[1], packed_tail);
        let r2 = state.finish_u64x2_then(id[2], key[2], packed_tail);
        let r3 = state.finish_u64x2_then(id[3], key[3], packed_tail);
        ones += usize::from(bias.decide(r0))
            + usize::from(bias.decide(r1))
            + usize::from(bias.decide(r2))
            + usize::from(bias.decide(r3));
    }
    for (&id, &key) in id4.remainder().iter().zip(key4.remainder()) {
        ones += usize::from(bias.decide(state.finish_u64x2_then(id, key, packed_tail)));
    }
    ones
}

/// The generic N-lane column counter; the scalar loop handles the
/// `n % LANES` remainder so every batch size is covered.
#[inline(always)]
fn count_columns_lanes<const LANES: usize>(
    state: &SipState,
    ids: &[u64],
    keys: &[u64],
    packed_tail: u64,
    bias: Bias,
) -> usize {
    let xs = SipStateXN::<LANES>::splat(state);
    let mut ones = 0usize;
    let mut idc = ids.chunks_exact(LANES);
    let mut keyc = keys.chunks_exact(LANES);
    for (id, key) in (&mut idc).zip(&mut keyc) {
        let id: &[u64; LANES] = id.try_into().expect("chunks_exact yields LANES");
        let key: &[u64; LANES] = key.try_into().expect("chunks_exact yields LANES");
        let tags = xs.finish_u64x2_then(id, key, packed_tail);
        for tag in tags {
            ones += usize::from(bias.decide(tag));
        }
    }
    for (&id, &key) in idc.remainder().iter().zip(keyc.remainder()) {
        ones += usize::from(bias.decide(state.finish_u64x2_then(id, key, packed_tail)));
    }
    ones
}

/// The AVX-512 monomorphization: same code as
/// [`count_columns_lanes`]`::<8>`, compiled with zmm registers and
/// `vprolq` available so the elementwise lane loops vectorize 8-wide.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn count_columns_x8_avx512(
    state: &SipState,
    ids: &[u64],
    keys: &[u64],
    packed_tail: u64,
    bias: Bias,
) -> usize {
    count_columns_lanes::<8>(state, ids, keys, packed_tail, bias)
}

/// Tallies the biased bit for every enumerated short tail (the
/// distribution inner loop: one record state, `2^k` value tails),
/// dispatched by lane width. `make_tail(i)` returns the value bytes of
/// tail `i`; the shared `len_block` carries the final block's length
/// byte. `sink` observes outcomes in ascending `i` order.
pub(crate) fn tally_short_tails<F, G>(
    state: &SipState,
    n: usize,
    bias: Bias,
    len_block: u64,
    make_tail: F,
    sink: G,
    width: usize,
) where
    F: Fn(usize) -> u64,
    G: FnMut(usize, bool),
{
    match width {
        8 => {
            #[cfg(target_arch = "x86_64")]
            if avx512_available() {
                // SAFETY: requires AVX-512F, detected just above.
                #[allow(unsafe_code)]
                return unsafe {
                    tally_short_tails_x8_avx512(state, n, bias, len_block, make_tail, sink)
                };
            }
            tally_short_tails_lanes::<8, F, G>(state, n, bias, len_block, make_tail, sink);
        }
        4 => tally_short_tails_lanes::<4, F, G>(state, n, bias, len_block, make_tail, sink),
        _ => {
            let mut sink = sink;
            for i in 0..n {
                let last = len_block | make_tail(i);
                sink(i, bias.decide(state.finish_then(last)));
            }
        }
    }
}

/// The generic N-lane short-tail tally with a scalar remainder loop.
#[inline(always)]
fn tally_short_tails_lanes<const LANES: usize, F, G>(
    state: &SipState,
    n: usize,
    bias: Bias,
    len_block: u64,
    make_tail: F,
    mut sink: G,
) where
    F: Fn(usize) -> u64,
    G: FnMut(usize, bool),
{
    let xs = SipStateXN::<LANES>::splat(state);
    let full = n - n % LANES;
    let mut base = 0usize;
    while base < full {
        let mut tails = [0u64; LANES];
        for (lane, tail) in tails.iter_mut().enumerate() {
            *tail = len_block | make_tail(base + lane);
        }
        let tags = xs.finish_then(&tails);
        for (lane, tag) in tags.into_iter().enumerate() {
            sink(base + lane, bias.decide(tag));
        }
        base += LANES;
    }
    for i in full..n {
        let last = len_block | make_tail(i);
        sink(i, bias.decide(state.finish_then(last)));
    }
}

/// AVX-512 monomorphization of the 8-lane short-tail tally.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn tally_short_tails_x8_avx512<F, G>(
    state: &SipState,
    n: usize,
    bias: Bias,
    len_block: u64,
    make_tail: F,
    sink: G,
) where
    F: Fn(usize) -> u64,
    G: FnMut(usize, bool),
{
    tally_short_tails_lanes::<8, F, G>(state, n, bias, len_block, make_tail, sink);
}

/// Evaluates the biased bit for `n` short (< 8 byte) suffixes assembled
/// one at a time in a shared scratch buffer, dispatched by lane width.
/// Each filled suffix packs into a single final block (`len_block`
/// carries the shared length byte), so lanes finish LANES items per
/// round sequence. `sink` observes outcomes in ascending order.
pub(crate) fn eval_short_suffixes<F, G>(
    state: &SipState,
    n: usize,
    bias: Bias,
    suffix: &mut [u8],
    fill: F,
    sink: G,
    width: usize,
) where
    F: FnMut(usize, &mut [u8]),
    G: FnMut(usize, bool),
{
    debug_assert!(suffix.len() < 8, "short suffixes fit one final block");
    let zeros = [0u8; 8];
    let len_block = state.pack_short_tail(0, &zeros[..suffix.len()]);
    match width {
        8 => {
            #[cfg(target_arch = "x86_64")]
            if avx512_available() {
                // SAFETY: requires AVX-512F, detected just above.
                #[allow(unsafe_code)]
                return unsafe {
                    eval_short_suffixes_x8_avx512(state, n, bias, suffix, len_block, fill, sink)
                };
            }
            eval_short_suffixes_lanes::<8, F, G>(state, n, bias, suffix, len_block, fill, sink);
        }
        4 => eval_short_suffixes_lanes::<4, F, G>(state, n, bias, suffix, len_block, fill, sink),
        _ => {
            let mut fill = fill;
            let mut sink = sink;
            for i in 0..n {
                fill(i, suffix);
                let last = len_block | pack_bytes(suffix);
                sink(i, bias.decide(state.finish_then(last)));
            }
        }
    }
}

/// The generic N-lane short-suffix evaluator with a scalar remainder.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn eval_short_suffixes_lanes<const LANES: usize, F, G>(
    state: &SipState,
    n: usize,
    bias: Bias,
    suffix: &mut [u8],
    len_block: u64,
    mut fill: F,
    mut sink: G,
) where
    F: FnMut(usize, &mut [u8]),
    G: FnMut(usize, bool),
{
    let xs = SipStateXN::<LANES>::splat(state);
    let full = n - n % LANES;
    let mut base = 0usize;
    while base < full {
        let mut tails = [0u64; LANES];
        for (lane, tail) in tails.iter_mut().enumerate() {
            fill(base + lane, suffix);
            *tail = len_block | pack_bytes(suffix);
        }
        let tags = xs.finish_then(&tails);
        for (lane, tag) in tags.into_iter().enumerate() {
            sink(base + lane, bias.decide(tag));
        }
        base += LANES;
    }
    for i in full..n {
        fill(i, suffix);
        let last = len_block | pack_bytes(suffix);
        sink(i, bias.decide(state.finish_then(last)));
    }
}

/// AVX-512 monomorphization of the 8-lane short-suffix evaluator.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
fn eval_short_suffixes_x8_avx512<F, G>(
    state: &SipState,
    n: usize,
    bias: Bias,
    suffix: &mut [u8],
    len_block: u64,
    fill: F,
    sink: G,
) where
    F: FnMut(usize, &mut [u8]),
    G: FnMut(usize, bool),
{
    eval_short_suffixes_lanes::<8, F, G>(state, n, bias, suffix, len_block, fill, sink);
}

/// Packs up to 7 bytes LSB-first into the data region of a final block.
#[inline(always)]
fn pack_bytes(bytes: &[u8]) -> u64 {
    let mut packed = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        packed |= u64::from(b) << (8 * i);
    }
    packed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::siphash::SipHash24;
    use proptest::prelude::*;

    /// Official vectors from the SipHash reference implementation
    /// (`vectors_sip64`): key = 000102…0f, message = 00 01 02 … of
    /// increasing length. Duplicated from `siphash.rs` on purpose — the
    /// lane evaluator must anchor to the published constants on its own.
    const REFERENCE_VECTORS: [u64; 16] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
        0x93f5_f579_9a93_2462,
        0x9e00_82df_0ba9_e4b0,
        0x7a5d_bbc5_94dd_b9f3,
        0xf4b3_2f46_226b_ada7,
        0x751e_8fbc_860e_e5fb,
        0x14ea_5627_c084_3d90,
        0xf723_ca90_8e7a_f2ee,
        0xa129_ca61_49be_45e5,
    ];

    fn reference_key() -> SipHash24 {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        SipHash24::from_key_bytes(&key)
    }

    /// Packs `msg` (≤ 7 bytes) plus the length byte for a message of
    /// `total` bytes into a SipHash final block.
    fn final_block(msg: &[u8], total: u64) -> u64 {
        pack_bytes(msg) | (total << 56)
    }

    #[test]
    fn every_lane_reproduces_reference_vectors() {
        // Messages of length 0..8 finish from the empty state; lengths
        // 8..16 finish after one absorbed block. Each x8 call validates
        // eight *different* official vectors — one per lane — so a
        // single lane copying its neighbour would be caught.
        let sip = reference_key();
        let msg: Vec<u8> = (0u8..16).collect();

        let empty = SipStateXN::<8>::splat(&sip.begin());
        let tails: [u64; 8] = core::array::from_fn(|len| final_block(&msg[..len], len as u64));
        assert_eq!(empty.finish_then(&tails), REFERENCE_VECTORS[..8]);

        let mut one_block = sip.begin();
        one_block.absorb(&msg[..8]);
        let aligned = SipStateXN::<8>::splat(&one_block);
        let tails: [u64; 8] = core::array::from_fn(|i| final_block(&msg[8..8 + i], (8 + i) as u64));
        assert_eq!(aligned.finish_then(&tails), REFERENCE_VECTORS[8..]);

        // The x4 shape replays the same anchors in two halves.
        let narrow = SipStateXN::<4>::splat(&sip.begin());
        for half in 0..2usize {
            let tails: [u64; 4] = core::array::from_fn(|i| {
                let len = 4 * half + i;
                final_block(&msg[..len], len as u64)
            });
            assert_eq!(
                narrow.finish_then(&tails),
                REFERENCE_VECTORS[4 * half..4 * half + 4]
            );
        }
    }

    #[test]
    fn finish_u64x2_then_matches_scalar_lanewise() {
        let sip = SipHash24::new(0x1234, 0x5678);
        let mut state = sip.begin();
        state.absorb(b"prefix66"); // 8 bytes: block-aligned
        let packed_tail = state.pack_short_tail(16, b"xyz");
        let ids: [u64; 8] = core::array::from_fn(|i| (i as u64) * 77 + 1);
        let keys: [u64; 8] = core::array::from_fn(|i| (i as u64) ^ 0xABCD);
        let lanes = SipStateXN::<8>::splat(&state).finish_u64x2_then(&ids, &keys, packed_tail);
        for i in 0..8 {
            assert_eq!(
                lanes[i],
                state.finish_u64x2_then(ids[i], keys[i], packed_tail),
                "lane {i} diverged from the scalar oracle"
            );
        }
    }

    #[test]
    fn splat_rejects_unaligned_states() {
        let sip = reference_key();
        let mut state = sip.begin();
        state.absorb(b"123"); // 3 residual bytes
        assert!(std::panic::catch_unwind(|| SipStateXN::<4>::splat(&state)).is_err());
    }

    #[test]
    fn lane_width_configuration_round_trips() {
        // Exercise the knob through every supported value and back to
        // auto. Other tests run concurrently, but every width computes
        // identical answers, so this is observability-only.
        for &w in SUPPORTED_LANE_WIDTHS {
            set_lane_width(w).unwrap();
            assert_eq!(lane_width(), w);
        }
        assert!(set_lane_width(3).is_err());
        assert!(set_lane_width(16).is_err());
        let msg = set_lane_width(5).unwrap_err().to_string();
        assert!(msg.contains('5'), "error names the bad width: {msg}");
        set_lane_width(0).unwrap();
        assert_eq!(lane_width(), probe_lane_width());
        assert!(SUPPORTED_LANE_WIDTHS.contains(&probe_lane_width()));
    }

    /// The scalar oracle for `count_columns`: one full state per record.
    fn count_oracle(state: &SipState, ids: &[u64], keys: &[u64], tail: &[u8], bias: Bias) -> usize {
        ids.iter()
            .zip(keys)
            .filter(|&(&id, &key)| {
                let mut s = *state;
                s.absorb_u64(id).absorb_u64(key).absorb(tail);
                bias.decide(s.finish())
            })
            .count()
    }

    proptest! {
        /// Every supported lane width × unaligned batch remainders ×
        /// short-tail shapes: the dispatched column counter equals the
        /// scalar absorb/finish oracle exactly.
        #[test]
        fn lane_eval_bit_identical_to_scalar(
            k0 in any::<u64>(),
            k1 in any::<u64>(),
            prefix_blocks in 0usize..4,
            n in 0usize..67,
            tail_len in 0usize..8,
            seed in any::<u64>(),
            p_milli in 1u64..999,
        ) {
            let sip = SipHash24::new(k0, k1);
            let mut state = sip.begin();
            let prefix: Vec<u8> = (0..8 * prefix_blocks)
                .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 11) as u8)
                .collect();
            state.absorb(&prefix);
            let tail: Vec<u8> = (0..tail_len).map(|i| (seed >> (i * 7)) as u8).collect();
            let bias = Bias::from_prob(p_milli as f64 / 1000.0);
            let ids: Vec<u64> = (0..n as u64).map(|i| seed.wrapping_add(i * 31)).collect();
            let keys: Vec<u64> = (0..n as u64).map(|i| seed.rotate_left(i as u32)).collect();
            let expected = count_oracle(&state, &ids, &keys, &tail, bias);
            let packed_tail = state.pack_short_tail(16, &tail);
            for &width in SUPPORTED_LANE_WIDTHS {
                prop_assert_eq!(
                    count_columns(&state, &ids, &keys, packed_tail, bias, width),
                    expected,
                    "width {} diverged (n = {}, tail = {})", width, n, tail_len
                );
            }
        }

        /// The short-tail tally (distribution inner loop) is
        /// bit-identical across widths, including remainder-sized value
        /// spaces.
        #[test]
        fn short_tail_tally_bit_identical_to_scalar(
            k0 in any::<u64>(),
            k1 in any::<u64>(),
            n in 0usize..40,
            tail_bytes in 1u64..8,
            p_milli in 1u64..999,
        ) {
            let sip = SipHash24::new(k0, k1);
            let mut state = sip.begin();
            state.absorb(&[7u8; 16]);
            let bias = Bias::from_prob(p_milli as f64 / 1000.0);
            let len_block = state.pack_short_tail(0, &vec![0u8; tail_bytes as usize]);
            let make_tail = |i: usize| (i as u64) & ((1u64 << (8 * tail_bytes.min(7))) - 1);
            let mut expected = vec![false; n];
            for (i, slot) in expected.iter_mut().enumerate() {
                *slot = bias.decide(state.finish_then(len_block | make_tail(i)));
            }
            for &width in SUPPORTED_LANE_WIDTHS {
                let mut got = vec![false; n];
                tally_short_tails(
                    &state, n, bias, len_block, make_tail,
                    |i, bit| got[i] = bit,
                    width,
                );
                prop_assert_eq!(&got, &expected, "width {} diverged", width);
            }
        }

        /// The short-suffix evaluator (scratch-buffer batch path) is
        /// bit-identical across widths and suffix lengths.
        #[test]
        fn short_suffix_eval_bit_identical_to_scalar(
            k0 in any::<u64>(),
            k1 in any::<u64>(),
            n in 0usize..40,
            suffix_len in 0usize..8,
            seed in any::<u64>(),
            p_milli in 1u64..999,
        ) {
            let sip = SipHash24::new(k0, k1);
            let mut state = sip.begin();
            state.absorb(&[3u8; 8]);
            let bias = Bias::from_prob(p_milli as f64 / 1000.0);
            let fill = |i: usize, buf: &mut [u8]| {
                for (j, b) in buf.iter_mut().enumerate() {
                    *b = (seed.wrapping_mul(i as u64 + 1) >> (j * 5)) as u8;
                }
            };
            let mut expected = vec![false; n];
            let mut buf = vec![0u8; suffix_len];
            for (i, slot) in expected.iter_mut().enumerate() {
                fill(i, &mut buf);
                let mut s = state;
                s.absorb(&buf);
                *slot = bias.decide(s.finish());
            }
            for &width in SUPPORTED_LANE_WIDTHS {
                let mut got = vec![false; n];
                let mut buf = vec![0u8; suffix_len];
                eval_short_suffixes(
                    &state, n, bias, &mut buf, fill,
                    |i, bit| got[i] = bit,
                    width,
                );
                prop_assert_eq!(&got, &expected, "width {} diverged", width);
            }
        }
    }
}
