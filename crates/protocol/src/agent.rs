//! The user agent: the paper's "privacy in the hands of individuals".
//!
//! A [`UserAgent`] owns a user's private profile and a privacy budget. It
//! inspects a coordinator [`Announcement`], *refuses* to participate when
//! the announced sketching plan would overspend the user's ε budget (the
//! user — not the coordinator — enforces Corollary 3.4), and otherwise
//! produces a wire-format [`Submission`] from private randomness.

use crate::messages::{Announcement, Submission};
use psketch_core::codec::encode_bundle;
use psketch_core::{Error, PrivacyAccountant, Profile, Sketcher, UserId};
use rand::Rng;

/// A user-side participant with a profile and an ε budget.
#[derive(Debug)]
pub struct UserAgent {
    id: UserId,
    profile: Profile,
    accountant: PrivacyAccountant,
}

impl UserAgent {
    /// Creates an agent.
    ///
    /// # Panics
    ///
    /// As [`PrivacyAccountant::new`] (invalid p/budget).
    #[must_use]
    pub fn new(id: UserId, profile: Profile, p: f64, epsilon_budget: f64) -> Self {
        Self {
            id,
            profile,
            accountant: PrivacyAccountant::new(p, epsilon_budget),
        }
    }

    /// The user's id.
    #[must_use]
    pub fn id(&self) -> UserId {
        self.id
    }

    /// ε spent so far.
    #[must_use]
    pub fn spent_epsilon(&self) -> f64 {
        self.accountant.spent_epsilon()
    }

    /// Whether the agent would accept this announcement (budget check,
    /// parameter check, bias agreement) without committing anything.
    #[must_use]
    pub fn can_participate(&self, announcement: &Announcement) -> bool {
        let Ok(params) = announcement.validate() else {
            return false;
        };
        if (params.p() - self.accountant.p()).abs() > 1e-12 {
            return false;
        }
        self.accountant.remaining_sketches() >= announcement.subsets.len() as u32
    }

    /// Participates: charges the budget, runs Algorithm 1 per announced
    /// subset with the agent's private randomness, and returns the
    /// wire-format submission.
    ///
    /// # Errors
    ///
    /// * [`Error::BudgetExceeded`] when the plan would overspend (nothing
    ///   is charged, nothing is published);
    /// * parameter validation errors from the announcement;
    /// * [`Error::InvalidBias`] when the announcement's bias differs from
    ///   the budgeted one (the accountant's arithmetic would be wrong).
    ///
    /// Individual Algorithm 1 failures (key-space exhaustion) do not abort
    /// the submission; they are recorded in `skipped`, as the paper's
    /// failure semantics prescribe.
    pub fn participate<R: Rng + ?Sized>(
        &mut self,
        announcement: &Announcement,
        rng: &mut R,
    ) -> Result<Submission, Error> {
        let params = announcement.validate()?;
        if (params.p() - self.accountant.p()).abs() > 1e-12 {
            return Err(Error::InvalidBias { p: params.p() });
        }
        // Charge the *whole* plan atomically before publishing anything:
        // a partial publication would still leak.
        self.accountant.charge(announcement.subsets.len() as u32)?;

        let sketcher = Sketcher::new(params);
        let mut sketches = Vec::with_capacity(announcement.subsets.len());
        let mut skipped = Vec::new();
        for (i, subset) in announcement.subsets.iter().enumerate() {
            match sketcher.sketch(self.id, &self.profile, subset, rng) {
                Ok(sketch) => sketches.push(sketch),
                Err(Error::KeySpaceExhausted { .. }) => skipped.push(i as u32),
                Err(e) => return Err(e),
            }
        }
        Ok(Submission {
            user: self.id,
            database_id: announcement.database_id,
            bundle: encode_bundle(params.sketch_bits(), &sketches).to_vec(),
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::BitSubset;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn announcement(n_subsets: u32, p: f64) -> Announcement {
        Announcement {
            database_id: 1,
            p,
            sketch_bits: 10,
            global_key: *GlobalKey::from_seed(2).as_bytes(),
            subsets: (0..n_subsets).map(BitSubset::single).collect(),
        }
    }

    fn agent(budget: f64, p: f64) -> UserAgent {
        UserAgent::new(
            UserId(3),
            Profile::from_bits(&[true, false, true, true]),
            p,
            budget,
        )
    }

    #[test]
    fn participates_within_budget() {
        let ann = announcement(2, 0.45);
        let mut agent = agent(100.0, 0.45);
        assert!(agent.can_participate(&ann));
        let mut rng = Prg::seed_from_u64(4);
        let sub = agent.participate(&ann, &mut rng).unwrap();
        assert!(sub.skipped.is_empty());
        let decoded = sub.decode(&ann).unwrap();
        assert_eq!(decoded.len(), 2);
        assert!(agent.spent_epsilon() > 0.0);
    }

    #[test]
    fn refuses_when_budget_too_small() {
        // p = 0.4: per sketch ε ≈ 4.06; budget 1.0 affords zero sketches.
        let ann = announcement(1, 0.4);
        let mut agent = agent(1.0, 0.4);
        assert!(!agent.can_participate(&ann));
        let mut rng = Prg::seed_from_u64(5);
        let before = agent.spent_epsilon();
        assert!(matches!(
            agent.participate(&ann, &mut rng),
            Err(Error::BudgetExceeded { .. })
        ));
        assert_eq!(agent.spent_epsilon(), before, "refusal must not spend");
    }

    #[test]
    fn refuses_mismatched_bias() {
        let ann = announcement(1, 0.3);
        let mut agent = agent(100.0, 0.45);
        assert!(!agent.can_participate(&ann));
        let mut rng = Prg::seed_from_u64(6);
        assert!(matches!(
            agent.participate(&ann, &mut rng),
            Err(Error::InvalidBias { .. })
        ));
    }

    #[test]
    fn refuses_invalid_announcement() {
        let mut ann = announcement(1, 0.45);
        ann.sketch_bits = 0;
        let mut agent = agent(100.0, 0.45);
        assert!(!agent.can_participate(&ann));
        let mut rng = Prg::seed_from_u64(7);
        assert!(agent.participate(&ann, &mut rng).is_err());
    }

    #[test]
    fn budget_depletes_across_rounds() {
        let ann = announcement(1, 0.45);
        // Budget for ~2 sketches at p = 0.45 (per-sketch ε ≈ 1.23).
        let mut agent = agent(4.0, 0.45);
        let mut rng = Prg::seed_from_u64(8);
        agent.participate(&ann, &mut rng).unwrap();
        agent.participate(&ann, &mut rng).unwrap();
        assert!(matches!(
            agent.participate(&ann, &mut rng),
            Err(Error::BudgetExceeded { .. })
        ));
    }
}
