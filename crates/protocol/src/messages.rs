//! Protocol messages: what actually crosses the wire.
//!
//! The paper's deployment story (§1, Appendix A) has three actors: a
//! *coordinator* that publishes database-wide parameters and the list of
//! subsets to sketch, *users* who publish sketch bundles, and *analysts*
//! who read the public pool. These are the (serde-serializable) messages
//! between them. Sketch payloads travel in the compact bit-packed format
//! of [`psketch_core::codec`], so the published object is exactly the
//! paper's "minuscule" artifact.

use psketch_core::{BitSubset, Error, Sketch, UserId};
use serde::{Deserialize, Serialize};

/// The coordinator's public announcement: everything a user agent needs
/// to participate.
///
/// Note what is *absent*: there is no per-user state, no secret — the
/// global key is public (privacy does not rest on it, per Lemma 3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Announcement {
    /// Database identifier (domain separation across deployments).
    pub database_id: u64,
    /// The bias `p` of the public function `H`.
    pub p: f64,
    /// The sketch length ℓ in bits (from Lemma 3.1 for the expected M, τ).
    pub sketch_bits: u8,
    /// The public 256-bit generator key for `H`.
    pub global_key: [u8; 32],
    /// The subsets every participant is asked to sketch, in canonical
    /// order; a user's bundle must align with this list.
    pub subsets: Vec<BitSubset>,
}

impl Announcement {
    /// Validates the announcement's parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`psketch_core::SketchParams`] validation failures.
    pub fn validate(&self) -> Result<psketch_core::SketchParams, Error> {
        psketch_core::SketchParams::with_sip(
            self.p,
            self.sketch_bits,
            psketch_prf::GlobalKey::from_bytes(self.global_key),
        )
    }

    /// Total privacy cost (log-ratio ε) a fully participating user incurs.
    #[must_use]
    pub fn epsilon_cost(&self) -> f64 {
        psketch_core::theory::epsilon_for(self.p, self.subsets.len() as u32)
    }
}

/// A node's place in a sharded deployment: which shard of how many this
/// server holds. Exchanged in the wire-level hello handshake so a router
/// can verify it is talking to the shard its map says lives at an
/// address before trusting partial counts from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardIdentity {
    /// This node's shard index, in `0..shard_count`.
    pub shard_id: u32,
    /// Total number of shards in the deployment.
    pub shard_count: u32,
}

impl std::fmt::Display for ShardIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.shard_id, self.shard_count)
    }
}

/// One shard's partial answer to one conjunctive *term* of a query
/// plan: the exact number of its records with `H(id, B, v, s) = 1` and
/// its record count for the term's subset. Counts from disjoint shards
/// sum exactly, so a router merging them reproduces the single-node
/// estimate bit-for-bit (the float inversion happens once, after the
/// integer merge). This is the **only** partial-result shape the wire
/// carries — every query family's plan scatters as a batch of these.
///
/// A shard holding no sketches for the queried subset reports `(0, 0)` —
/// its share of the pool is genuinely empty, and merging zeros is a
/// no-op rather than an error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryCounts {
    /// Records whose PRF evaluated to 1 for the queried `(B, v)`.
    pub ones: u64,
    /// Records the shard holds for the queried subset.
    pub population: u64,
}

/// One user's submission: their id and a bit-packed sketch bundle with
/// one sketch per announced subset, in announcement order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submission {
    /// The submitting user.
    pub user: UserId,
    /// Which database/announcement this answers.
    pub database_id: u64,
    /// The bit-packed sketch bundle ([`psketch_core::codec`] format).
    pub bundle: Vec<u8>,
    /// Indices (into the announcement's subset list) the user *skipped*
    /// because Algorithm 1 failed; the bundle omits those slots. Almost
    /// always empty at Lemma 3.1 lengths, but the paper's failure
    /// semantics ("report failure and stop") must be representable.
    pub skipped: Vec<u32>,
}

impl Submission {
    /// Decodes the bundle and aligns sketches with the announced subsets.
    ///
    /// # Errors
    ///
    /// [`Error::Codec`] on malformed bundles or misaligned counts.
    pub fn decode(&self, announcement: &Announcement) -> Result<Vec<(BitSubset, Sketch)>, Error> {
        if self.database_id != announcement.database_id {
            return Err(Error::Codec {
                reason: format!(
                    "submission for database {} offered to database {}",
                    self.database_id, announcement.database_id
                ),
            });
        }
        let (bits, sketches) = psketch_core::codec::decode_bundle(&self.bundle)?;
        if bits != announcement.sketch_bits {
            return Err(Error::Codec {
                reason: format!(
                    "bundle uses {bits}-bit sketches, announcement requires {}",
                    announcement.sketch_bits
                ),
            });
        }
        let expected = announcement.subsets.len() - self.skipped.len();
        if sketches.len() != expected {
            return Err(Error::Codec {
                reason: format!(
                    "bundle holds {} sketches, expected {expected}",
                    sketches.len()
                ),
            });
        }
        let skipped: std::collections::HashSet<u32> = self.skipped.iter().copied().collect();
        if skipped.len() != self.skipped.len()
            || self
                .skipped
                .iter()
                .any(|&i| i as usize >= announcement.subsets.len())
        {
            return Err(Error::Codec {
                reason: "skipped indices malformed".to_string(),
            });
        }
        let mut out = Vec::with_capacity(expected);
        let mut iter = sketches.into_iter();
        for (i, subset) in announcement.subsets.iter().enumerate() {
            if skipped.contains(&(i as u32)) {
                continue;
            }
            let sketch = iter.next().expect("count checked above");
            out.push((subset.clone(), sketch));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::codec::encode_bundle;

    fn announcement() -> Announcement {
        Announcement {
            database_id: 7,
            p: 0.3,
            sketch_bits: 10,
            global_key: *psketch_prf::GlobalKey::from_seed(1).as_bytes(),
            subsets: vec![
                BitSubset::single(0),
                BitSubset::single(1),
                BitSubset::new(vec![0, 1]).unwrap(),
            ],
        }
    }

    #[test]
    fn announcement_validates_and_prices_privacy() {
        let ann = announcement();
        let params = ann.validate().unwrap();
        assert_eq!(params.sketch_bits(), 10);
        // Three sketches at p = 0.3: ε = (7/3)^12 − 1.
        let expected = psketch_core::theory::epsilon_for(0.3, 3);
        assert!((ann.epsilon_cost() - expected).abs() < 1e-12);
    }

    #[test]
    fn invalid_announcement_rejected() {
        let mut ann = announcement();
        ann.p = 0.6;
        assert!(ann.validate().is_err());
    }

    #[test]
    fn submission_roundtrip_aligns_subsets() {
        let ann = announcement();
        let sketches = vec![Sketch { key: 1 }, Sketch { key: 2 }, Sketch { key: 3 }];
        let sub = Submission {
            user: UserId(9),
            database_id: 7,
            bundle: encode_bundle(10, &sketches).to_vec(),
            skipped: vec![],
        };
        let decoded = sub.decode(&ann).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[2].0, ann.subsets[2]);
        assert_eq!(decoded[2].1.key, 3);
    }

    #[test]
    fn skipped_slots_are_respected() {
        let ann = announcement();
        let sub = Submission {
            user: UserId(9),
            database_id: 7,
            bundle: encode_bundle(10, &[Sketch { key: 5 }, Sketch { key: 6 }]).to_vec(),
            skipped: vec![1],
        };
        let decoded = sub.decode(&ann).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, ann.subsets[0]);
        assert_eq!(decoded[1].0, ann.subsets[2]);
    }

    #[test]
    fn partial_results_roundtrip_serde() {
        let counts = QueryCounts {
            ones: 42,
            population: 1000,
        };
        let json = serde_json::to_string(&counts).unwrap();
        assert_eq!(serde_json::from_str::<QueryCounts>(&json).unwrap(), counts);
        let shard = ShardIdentity {
            shard_id: 2,
            shard_count: 5,
        };
        assert_eq!(shard.to_string(), "2/5");
        let json = serde_json::to_string(&shard).unwrap();
        assert_eq!(serde_json::from_str::<ShardIdentity>(&json).unwrap(), shard);
    }

    #[test]
    fn mismatches_are_rejected() {
        let ann = announcement();
        // Wrong database.
        let sub = Submission {
            user: UserId(1),
            database_id: 8,
            bundle: encode_bundle(10, &[]).to_vec(),
            skipped: vec![],
        };
        assert!(sub.decode(&ann).is_err());
        // Wrong sketch width.
        let sub = Submission {
            user: UserId(1),
            database_id: 7,
            bundle: encode_bundle(9, &[Sketch { key: 0 }; 3]).to_vec(),
            skipped: vec![],
        };
        assert!(sub.decode(&ann).is_err());
        // Wrong count.
        let sub = Submission {
            user: UserId(1),
            database_id: 7,
            bundle: encode_bundle(10, &[Sketch { key: 0 }]).to_vec(),
            skipped: vec![],
        };
        assert!(sub.decode(&ann).is_err());
        // Bad skip index.
        let sub = Submission {
            user: UserId(1),
            database_id: 7,
            bundle: encode_bundle(10, &[Sketch { key: 0 }; 3]).to_vec(),
            skipped: vec![9],
        };
        assert!(sub.decode(&ann).is_err());
    }
}
