//! The coordinator: announcement authoring and the public sketch pool.
//!
//! The coordinator is *not* trusted with data — it only (a) publishes an
//! [`Announcement`] (parameters + subset plan, with the sketch length
//! sized by Lemma 3.1), and (b) accumulates the public [`Submission`]s
//! into a [`SketchDb`] that anyone can query. Rejecting malformed or
//! duplicate submissions is bookkeeping, not trust.

use crate::messages::{Announcement, Submission};
use parking_lot::Mutex;
use psketch_core::theory::min_sketch_bits;
use psketch_core::{BitSubset, Error, SketchDb, SketchRecord, UserId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Builder for announcements.
#[derive(Debug, Clone)]
pub struct AnnouncementBuilder {
    database_id: u64,
    p: f64,
    expected_users: u64,
    failure_budget: f64,
    global_key: [u8; 32],
    subsets: Vec<BitSubset>,
}

impl AnnouncementBuilder {
    /// Starts an announcement for a database.
    ///
    /// `expected_users` (`M`) and `failure_budget` (`τ`) size the sketch
    /// via Lemma 3.1.
    #[must_use]
    pub fn new(database_id: u64, p: f64, expected_users: u64, failure_budget: f64) -> Self {
        Self {
            database_id,
            p,
            expected_users,
            failure_budget,
            global_key: [0; 32],
            subsets: Vec::new(),
        }
    }

    /// Sets the public global key.
    #[must_use]
    pub fn global_key(mut self, key: [u8; 32]) -> Self {
        self.global_key = key;
        self
    }

    /// Adds a subset to the sketching plan.
    #[must_use]
    pub fn subset(mut self, subset: BitSubset) -> Self {
        self.subsets.push(subset);
        self
    }

    /// Adds several subsets.
    #[must_use]
    pub fn subsets(mut self, subsets: impl IntoIterator<Item = BitSubset>) -> Self {
        self.subsets.extend(subsets);
        self
    }

    /// Finalizes: dedupes subsets canonically and sizes the sketch.
    ///
    /// # Errors
    ///
    /// Parameter validation errors (bad `p`, empty plan reported as
    /// [`Error::EmptyDatabase`]).
    ///
    /// # Panics
    ///
    /// As [`min_sketch_bits`] for out-of-range `M`/`τ`.
    pub fn build(mut self) -> Result<Announcement, Error> {
        if self.subsets.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        self.subsets.sort();
        self.subsets.dedup();
        let sketch_bits = min_sketch_bits(self.expected_users, self.failure_budget, self.p);
        let ann = Announcement {
            database_id: self.database_id,
            p: self.p,
            sketch_bits,
            global_key: self.global_key,
            subsets: self.subsets,
        };
        ann.validate()?;
        Ok(ann)
    }
}

/// The result of a batch ingestion: how many submissions landed and how
/// many were rejected (malformed or duplicate).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Submissions accepted into the pool.
    pub accepted: usize,
    /// Submissions rejected (also added to the coordinator's running
    /// rejection counter).
    pub rejected: usize,
}

/// A point-in-time snapshot of the coordinator's ingestion counters —
/// the observability surface reported by the server's Stats frame.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Submissions accepted into the pool.
    pub accepted: u64,
    /// Submissions rejected because the user already submitted.
    pub duplicates: u64,
    /// Submissions rejected because the bundle failed to decode.
    pub malformed: u64,
    /// Individual sketch records ingested across all subsets.
    pub records: u64,
}

impl CoordinatorStats {
    /// Total rejected submissions (duplicates + malformed).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.duplicates + self.malformed
    }

    /// Adds another node's counters into this one. Shards partition the
    /// user population, so per-shard counters sum to exactly the
    /// counters a single node ingesting the same records would hold —
    /// this is the cluster-status merge.
    pub fn merge(&mut self, other: &CoordinatorStats) {
        self.accepted += other.accepted;
        self.duplicates += other.duplicates;
        self.malformed += other.malformed;
        self.records += other.records;
    }

    /// Sums a set of per-shard counter snapshots.
    #[must_use]
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a CoordinatorStats>) -> CoordinatorStats {
        let mut total = CoordinatorStats::default();
        for s in stats {
            total.merge(s);
        }
        total
    }
}

/// Lock-free running counters behind [`CoordinatorStats`].
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    duplicates: AtomicU64,
    malformed: AtomicU64,
    records: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CoordinatorStats {
        CoordinatorStats {
            // ord: fuzzy stats snapshot; fields may tear across readers
            accepted: self.accepted.load(Ordering::Relaxed),
            // ord: fuzzy stats snapshot; fields may tear across readers
            duplicates: self.duplicates.load(Ordering::Relaxed),
            // ord: fuzzy stats snapshot; fields may tear across readers
            malformed: self.malformed.load(Ordering::Relaxed),
            // ord: fuzzy stats snapshot; fields may tear across readers
            records: self.records.load(Ordering::Relaxed),
        }
    }

    fn restore(stats: CoordinatorStats) -> Self {
        Self {
            accepted: AtomicU64::new(stats.accepted),
            duplicates: AtomicU64::new(stats.duplicates),
            malformed: AtomicU64::new(stats.malformed),
            records: AtomicU64::new(stats.records),
        }
    }
}

/// The coordinator: holds the announcement and the public pool.
#[derive(Debug)]
pub struct Coordinator {
    announcement: Announcement,
    db: SketchDb,
    seen: Mutex<HashSet<UserId>>,
    counters: Counters,
}

impl Coordinator {
    /// Creates a coordinator from a finalized announcement.
    #[must_use]
    pub fn new(announcement: Announcement) -> Self {
        Self {
            announcement,
            db: SketchDb::new(),
            seen: Mutex::new(HashSet::new()),
            counters: Counters::default(),
        }
    }

    /// Rebuilds a coordinator from previously persisted state (a snapshot
    /// file): the announcement, the set of users already accepted, the
    /// restored pool, and the counter values at snapshot time.
    ///
    /// The restored coordinator keeps rejecting duplicates of every user
    /// in `seen`, exactly as the original would have.
    #[must_use]
    pub fn restore(
        announcement: Announcement,
        seen: impl IntoIterator<Item = UserId>,
        db: SketchDb,
        stats: CoordinatorStats,
    ) -> Self {
        Self {
            announcement,
            db,
            seen: Mutex::new(seen.into_iter().collect()),
            counters: Counters::restore(stats),
        }
    }

    /// The public announcement.
    #[must_use]
    pub fn announcement(&self) -> &Announcement {
        &self.announcement
    }

    /// Accepts a submission into the pool.
    ///
    /// # Errors
    ///
    /// * [`Error::Codec`] for malformed bundles or duplicate users (a
    ///   duplicate would double-count one person's data in every
    ///   estimate);
    /// * alignment errors from [`Submission::decode`].
    pub fn accept(&self, submission: &Submission) -> Result<(), Error> {
        let records = match submission.decode(&self.announcement) {
            Ok(r) => r,
            Err(e) => {
                // ord: monotonic stat counter, eventual totals suffice
                self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        {
            let mut seen = self.seen.lock();
            if !seen.insert(submission.user) {
                // ord: monotonic stat counter, eventual totals suffice
                self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                return Err(Error::Codec {
                    reason: format!("duplicate submission from {}", submission.user),
                });
            }
        }
        // ord: monotonic stat counter, eventual totals suffice
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.ingest(std::iter::once((submission.user, records)));
        Ok(())
    }

    /// Accepts a whole batch of submissions at once.
    ///
    /// Malformed or duplicate submissions are rejected (and counted)
    /// individually without failing the batch — ingestion at scale must
    /// not let one hostile bundle stall everyone else's. All decoded
    /// records are grouped per subset and appended through the pool's
    /// columnar batch insert, so a batch of `m` submissions over `k`
    /// subsets costs `k` shard appends instead of `m·k` map probes.
    pub fn accept_batch<'a, I>(&self, submissions: I) -> BatchOutcome
    where
        I: IntoIterator<Item = &'a Submission>,
    {
        let mut outcome = BatchOutcome::default();
        // Decode outside any lock: bundle parsing is the expensive part
        // and must not serialize concurrent ingestion.
        let mut decoded: Vec<(UserId, Vec<(BitSubset, psketch_core::Sketch)>)> = Vec::new();
        for submission in submissions {
            match submission.decode(&self.announcement) {
                Ok(records) => decoded.push((submission.user, records)),
                Err(_) => {
                    // ord: monotonic stat counter, eventual totals suffice
                    self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    outcome.rejected += 1;
                }
            }
        }
        // Dedup under a short lock covering only the membership check.
        {
            let mut seen = self.seen.lock();
            decoded.retain(|(user, _)| {
                if seen.insert(*user) {
                    true
                } else {
                    // ord: monotonic stat counter, eventual totals suffice
                    self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
                    outcome.rejected += 1;
                    false
                }
            });
        }
        outcome.accepted = decoded.len();
        self.counters
            .accepted
            // ord: monotonic stat counter, eventual totals suffice
            .fetch_add(outcome.accepted as u64, Ordering::Relaxed);
        self.ingest(decoded);
        outcome
    }

    /// Groups decoded records by subset and lands them in the pool's
    /// columnar shards via `SketchDb::insert_batch`.
    fn ingest<I>(&self, decoded: I)
    where
        I: IntoIterator<Item = (UserId, Vec<(BitSubset, psketch_core::Sketch)>)>,
    {
        let mut grouped: HashMap<BitSubset, Vec<SketchRecord>> = HashMap::new();
        let mut total = 0u64;
        for (user, records) in decoded {
            for (subset, sketch) in records {
                total += 1;
                grouped
                    .entry(subset)
                    .or_default()
                    .push(SketchRecord { id: user, sketch });
            }
        }
        // ord: monotonic stat counter, eventual totals suffice
        self.counters.records.fetch_add(total, Ordering::Relaxed);
        for (subset, records) in grouped {
            self.db.insert_batch(subset, records);
        }
    }

    /// Number of accepted participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.seen.lock().len()
    }

    /// Number of rejected submissions (duplicates + malformed).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.stats().rejected()
    }

    /// A point-in-time snapshot of the ingestion counters.
    #[must_use]
    pub fn stats(&self) -> CoordinatorStats {
        self.counters.snapshot()
    }

    /// The users accepted so far, in unspecified order — what a snapshot
    /// file persists so a restored coordinator keeps deduplicating.
    #[must_use]
    pub fn seen_users(&self) -> Vec<UserId> {
        self.seen.lock().iter().copied().collect()
    }

    /// The public sketch pool (what analysts query).
    #[must_use]
    pub fn pool(&self) -> &SketchDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::UserAgent;
    use psketch_core::{BitString, ConjunctiveEstimator, ConjunctiveQuery, Profile};
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn build_announcement() -> Announcement {
        AnnouncementBuilder::new(42, 0.45, 10_000, 1e-6)
            .global_key(*GlobalKey::from_seed(3).as_bytes())
            .subset(BitSubset::new(vec![0, 1]).unwrap())
            .subset(BitSubset::single(0))
            .subset(BitSubset::new(vec![1, 0]).unwrap()) // duplicate, canonicalized
            .build()
            .unwrap()
    }

    #[test]
    fn builder_dedupes_and_sizes_sketches() {
        let ann = build_announcement();
        assert_eq!(ann.subsets.len(), 2);
        assert_eq!(ann.sketch_bits, min_sketch_bits(10_000, 1e-6, 0.45));
    }

    #[test]
    fn builder_rejects_empty_plan() {
        let r = AnnouncementBuilder::new(1, 0.3, 100, 1e-3).build();
        assert!(matches!(r, Err(Error::EmptyDatabase)));
    }

    #[test]
    fn full_protocol_round() {
        let ann = build_announcement();
        let coordinator = Coordinator::new(ann.clone());
        let mut rng = Prg::seed_from_u64(10);
        let m = 8_000u64;
        for i in 0..m {
            let profile = Profile::from_bits(&[i % 4 == 0, i % 2 == 0]);
            let mut agent = UserAgent::new(UserId(i), profile, 0.45, 1e6);
            let sub = agent.participate(&ann, &mut rng).unwrap();
            coordinator.accept(&sub).unwrap();
        }
        assert_eq!(coordinator.participants(), m as usize);
        assert_eq!(coordinator.rejected(), 0);

        // An analyst queries the pool directly.
        let params = ann.validate().unwrap();
        let estimator = ConjunctiveEstimator::new(params);
        let q = ConjunctiveQuery::new(
            BitSubset::new(vec![0, 1]).unwrap(),
            BitString::from_bits(&[true, true]),
        )
        .unwrap();
        let est = estimator.estimate(coordinator.pool(), &q).unwrap();
        // truth: i%4==0 ∧ i%2==0 ⇔ i%4==0 → 0.25, but note p=0.45 noise
        // at m=8k: σ ≈ 1/(0.1·√8000) ≈ 0.11.
        assert!(
            (est.fraction - 0.25).abs() < 0.3,
            "estimate {} strayed",
            est.fraction
        );
    }

    #[test]
    fn batch_ingestion_matches_one_by_one() {
        let ann = build_announcement();
        let one_by_one = Coordinator::new(ann.clone());
        let batched = Coordinator::new(ann.clone());
        let mut rng = Prg::seed_from_u64(12);
        let submissions: Vec<Submission> = (0..500u64)
            .map(|i| {
                let profile = Profile::from_bits(&[i % 4 == 0, i % 2 == 0]);
                let mut agent = UserAgent::new(UserId(i), profile, 0.45, 1e6);
                agent.participate(&ann, &mut rng).unwrap()
            })
            .collect();
        for sub in &submissions {
            one_by_one.accept(sub).unwrap();
        }
        let outcome = batched.accept_batch(&submissions);
        assert_eq!(
            outcome,
            BatchOutcome {
                accepted: 500,
                rejected: 0
            }
        );
        assert_eq!(batched.participants(), one_by_one.participants());

        // Both pools answer identically: same records per subset (batch
        // grouping must not lose or duplicate anything).
        for subset in one_by_one.pool().subsets() {
            let mut a = one_by_one.pool().records(&subset).unwrap();
            let mut b = batched.pool().records(&subset).unwrap();
            a.sort_by_key(|r| r.id);
            b.sort_by_key(|r| r.id);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn batch_rejects_bad_submissions_without_failing() {
        let ann = build_announcement();
        let coordinator = Coordinator::new(ann.clone());
        let mut rng = Prg::seed_from_u64(13);
        let mut agent = UserAgent::new(UserId(1), Profile::from_bits(&[true, true]), 0.45, 1e6);
        let good = agent.participate(&ann, &mut rng).unwrap();
        let duplicate = good.clone();
        let malformed = Submission {
            user: UserId(2),
            database_id: 999,
            bundle: vec![1, 2, 3],
            skipped: vec![],
        };
        let outcome = coordinator.accept_batch([&good, &duplicate, &malformed]);
        assert_eq!(
            outcome,
            BatchOutcome {
                accepted: 1,
                rejected: 2
            }
        );
        assert_eq!(coordinator.participants(), 1);
        assert_eq!(coordinator.rejected(), 2);
    }

    #[test]
    fn duplicates_are_rejected() {
        let ann = build_announcement();
        let coordinator = Coordinator::new(ann.clone());
        let mut rng = Prg::seed_from_u64(11);
        let mut agent = UserAgent::new(UserId(1), Profile::from_bits(&[true, true]), 0.45, 1e6);
        let sub = agent.participate(&ann, &mut rng).unwrap();
        coordinator.accept(&sub).unwrap();
        assert!(coordinator.accept(&sub).is_err());
        assert_eq!(coordinator.participants(), 1);
        assert_eq!(coordinator.rejected(), 1);
    }

    #[test]
    fn stats_track_every_outcome() {
        let ann = build_announcement();
        let coordinator = Coordinator::new(ann.clone());
        let mut rng = Prg::seed_from_u64(14);
        let mut agent = UserAgent::new(UserId(1), Profile::from_bits(&[true, false]), 0.45, 1e6);
        let good = agent.participate(&ann, &mut rng).unwrap();
        let malformed = Submission {
            user: UserId(2),
            database_id: 999,
            bundle: vec![0xAB],
            skipped: vec![],
        };
        coordinator.accept(&good).unwrap();
        assert!(coordinator.accept(&good).is_err()); // duplicate
        assert!(coordinator.accept(&malformed).is_err());
        let stats = coordinator.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.rejected(), 2);
        // Two subsets announced, none skipped: 2 records ingested.
        assert_eq!(stats.records, 2);
        assert_eq!(coordinator.rejected(), 2);
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = CoordinatorStats {
            accepted: 10,
            duplicates: 1,
            malformed: 2,
            records: 30,
        };
        let b = CoordinatorStats {
            accepted: 5,
            duplicates: 0,
            malformed: 4,
            records: 15,
        };
        let merged = CoordinatorStats::merged([&a, &b]);
        assert_eq!(merged.accepted, 15);
        assert_eq!(merged.duplicates, 1);
        assert_eq!(merged.malformed, 6);
        assert_eq!(merged.records, 45);
        assert_eq!(merged.rejected(), 7);
        assert_eq!(CoordinatorStats::merged([]), CoordinatorStats::default());
    }

    #[test]
    fn restore_preserves_dedup_pool_and_counters() {
        let ann = build_announcement();
        let original = Coordinator::new(ann.clone());
        let mut rng = Prg::seed_from_u64(15);
        let submissions: Vec<Submission> = (0..50u64)
            .map(|i| {
                let profile = Profile::from_bits(&[i % 4 == 0, i % 2 == 0]);
                let mut agent = UserAgent::new(UserId(i), profile, 0.45, 1e6);
                agent.participate(&ann, &mut rng).unwrap()
            })
            .collect();
        original.accept_batch(&submissions);

        // Persist (announcement, seen, pool columns, stats) and restore.
        let db = psketch_core::SketchDb::from_columns(original.pool().subsets().into_iter().map(
            |subset| {
                let snap = original.pool().snapshot(&subset).unwrap();
                (subset, snap.ids().to_vec(), snap.keys().to_vec())
            },
        ));
        let restored = Coordinator::restore(ann, original.seen_users(), db, original.stats());
        assert_eq!(restored.participants(), 50);
        assert_eq!(restored.stats(), original.stats());
        // A replayed submission is still a duplicate.
        assert!(restored.accept(&submissions[0]).is_err());
        assert_eq!(restored.stats().duplicates, 1);
        // Pools answer identically.
        for subset in original.pool().subsets() {
            let mut a = original.pool().records(&subset).unwrap();
            let mut b = restored.pool().records(&subset).unwrap();
            a.sort_by_key(|r| r.id);
            b.sort_by_key(|r| r.id);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn malformed_submissions_counted() {
        let ann = build_announcement();
        let coordinator = Coordinator::new(ann);
        let bogus = Submission {
            user: UserId(5),
            database_id: 999,
            bundle: vec![1, 2, 3],
            skipped: vec![],
        };
        assert!(coordinator.accept(&bogus).is_err());
        assert_eq!(coordinator.rejected(), 1);
        assert_eq!(coordinator.participants(), 0);
    }
}
