//! # psketch-protocol — the deployment layer
//!
//! The paper's scenario (§1) is an *untrusted-collector* protocol: users
//! keep their data and publish only sketches; a coordinator merely
//! publishes parameters and accumulates the public pool. This crate is
//! that protocol, shaped the way a downstream system would embed it:
//!
//! * [`messages`] — serde-serializable [`messages::Announcement`]
//!   and [`messages::Submission`] (bit-packed sketch bundles);
//! * [`agent`] — [`agent::UserAgent`]: owns the profile and an
//!   ε budget, *refuses* over-budget plans (Corollary 3.4 enforced on the
//!   user's side, where the paper puts it), sketches with private
//!   randomness;
//! * [`coordinator`] — [`coordinator::AnnouncementBuilder`]
//!   (Lemma 3.1 sketch sizing, canonical subset plans) and
//!   [`coordinator::Coordinator`] (validation, duplicate
//!   rejection, the public [`SketchDb`](psketch_core::SketchDb) pool).
//!
//! Nothing in this crate is trusted with private data: the coordinator
//! sees only sketches, and every parameter it publishes is public —
//! including the PRF key, since privacy is PRF-independent (Lemma 3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod coordinator;
pub mod messages;

pub use agent::UserAgent;
pub use coordinator::{AnnouncementBuilder, BatchOutcome, Coordinator, CoordinatorStats};
pub use messages::{Announcement, QueryCounts, ShardIdentity, Submission};
