//! Integer-attribute demographic populations (salary, age, …).
//!
//! §4.1 of the paper computes means, inner products, interval queries
//! ("How many users have salary less than c?") and combined constraints
//! over k-bit integer attributes stored in binary inside the profile.
//! [`DemographicsModel`] generates such populations with a configurable
//! distribution per field and exposes the field layout for the query layer.

use crate::population::Population;
use psketch_core::{IntField, Profile};
use rand::{Rng, RngExt};

/// Distribution of one integer attribute.
#[derive(Debug, Clone)]
pub enum FieldDistribution {
    /// Uniform over `[lo, hi]` (inclusive).
    Uniform {
        /// Smallest value.
        lo: u64,
        /// Largest value.
        hi: u64,
    },
    /// Truncated geometric-like decay: `P[v] ∝ decay^v` over the field's
    /// range. Models skewed quantities like salaries.
    Geometric {
        /// Per-step decay in `(0, 1)`.
        decay: f64,
    },
    /// Binomial over the field range: sum of `width` fair coins, scaled.
    /// Models roughly bell-shaped quantities like age brackets.
    Bell,
}

/// One named integer attribute with its layout and distribution.
#[derive(Debug, Clone)]
pub struct DemographicField {
    /// Attribute name.
    pub name: String,
    /// Bit layout within the profile.
    pub field: IntField,
    /// Sampling distribution.
    pub distribution: FieldDistribution,
}

/// A population generator over several integer attributes.
#[derive(Debug, Clone, Default)]
pub struct DemographicsModel {
    fields: Vec<DemographicField>,
    total_bits: u32,
}

impl DemographicsModel {
    /// An empty model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `width`-bit field with the given distribution; returns its
    /// layout (fields are packed contiguously in declaration order).
    pub fn field(
        &mut self,
        name: impl Into<String>,
        width: u32,
        distribution: FieldDistribution,
    ) -> IntField {
        let field = IntField::new(self.total_bits, width);
        self.total_bits += width;
        self.fields.push(DemographicField {
            name: name.into(),
            field,
            distribution,
        });
        field
    }

    /// Total profile width in bits.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// The declared fields.
    #[must_use]
    pub fn fields(&self) -> &[DemographicField] {
        &self.fields
    }

    /// Samples one value from a distribution over a field's range.
    fn sample_value<R: Rng + ?Sized>(
        field: &IntField,
        dist: &FieldDistribution,
        rng: &mut R,
    ) -> u64 {
        match *dist {
            FieldDistribution::Uniform { lo, hi } => {
                assert!(lo <= hi && hi <= field.max_value(), "range exceeds field");
                rng.random_range(lo..=hi)
            }
            FieldDistribution::Geometric { decay } => {
                assert!(decay > 0.0 && decay < 1.0, "decay must be in (0,1)");
                // Inverse-CDF sampling of the truncated geometric.
                let n = field.max_value() + 1;
                let total = 1.0 - decay.powi(n as i32);
                let u: f64 = rng.random::<f64>() * total;
                // v = ⌊log_decay(1 − u)⌋ clamped to the range.
                let v = (1.0 - u).ln() / decay.ln();
                (v.floor() as u64).min(field.max_value())
            }
            FieldDistribution::Bell => {
                // Sum of `width` fair bits spread over the range.
                let ones: u32 = (0..field.width())
                    .map(|_| u32::from(rng.random::<bool>()))
                    .sum();
                let span = field.max_value();
                span * u64::from(ones) / u64::from(field.width())
            }
        }
    }

    /// Generates `m` users.
    ///
    /// # Panics
    ///
    /// Panics if no fields are declared or `m == 0`.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Population {
        assert!(!self.fields.is_empty(), "no fields declared");
        let profiles = (0..m)
            .map(|_| {
                let mut profile = Profile::zeros(self.total_bits as usize);
                for df in &self.fields {
                    let v = Self::sample_value(&df.field, &df.distribution, rng);
                    df.field.write(&mut profile, v);
                }
                profile
            })
            .collect();
        Population::new(profiles)
    }

    /// A ready-made workload: 8-bit salary (geometric, skewed) and 7-bit
    /// age (bell). Returns `(model, salary_field, age_field)`.
    #[must_use]
    pub fn salary_age() -> (Self, IntField, IntField) {
        let mut model = Self::new();
        let salary = model.field("salary", 8, FieldDistribution::Geometric { decay: 0.985 });
        let age = model.field("age", 7, FieldDistribution::Bell);
        (model, salary, age)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::SeedableRng;

    #[test]
    fn uniform_field_mean() {
        let mut model = DemographicsModel::new();
        let f = model.field("u", 6, FieldDistribution::Uniform { lo: 0, hi: 63 });
        let mut rng = Prg::seed_from_u64(30);
        let pop = model.generate(30_000, &mut rng);
        let mean = pop.true_mean(&f);
        assert!((mean - 31.5).abs() < 0.5, "uniform mean {mean}");
    }

    #[test]
    fn geometric_is_skewed_low() {
        let mut model = DemographicsModel::new();
        let f = model.field("s", 8, FieldDistribution::Geometric { decay: 0.97 });
        let mut rng = Prg::seed_from_u64(31);
        let pop = model.generate(20_000, &mut rng);
        let mean = pop.true_mean(&f);
        // Truncated geometric with decay .97 over [0,255]: mean well below
        // the midpoint 127.5.
        assert!(mean < 60.0, "geometric mean {mean} not skewed");
        assert!(mean > 10.0, "geometric mean {mean} degenerate");
    }

    #[test]
    fn bell_is_centered() {
        let mut model = DemographicsModel::new();
        let f = model.field("a", 7, FieldDistribution::Bell);
        let mut rng = Prg::seed_from_u64(32);
        let pop = model.generate(20_000, &mut rng);
        let mean = pop.true_mean(&f);
        let mid = f.max_value() as f64 / 2.0;
        assert!((mean - mid).abs() < 2.0, "bell mean {mean} vs mid {mid}");
    }

    #[test]
    fn fields_are_packed_contiguously() {
        let (model, salary, age) = DemographicsModel::salary_age();
        assert_eq!(salary.offset(), 0);
        assert_eq!(salary.width(), 8);
        assert_eq!(age.offset(), 8);
        assert_eq!(model.total_bits(), 15);
        assert_eq!(model.fields().len(), 2);
    }

    #[test]
    fn generated_values_fit_fields() {
        let (model, salary, age) = DemographicsModel::salary_age();
        let mut rng = Prg::seed_from_u64(33);
        let pop = model.generate(2_000, &mut rng);
        for i in 0..pop.len() {
            assert!(salary.read(pop.profile(i)) <= salary.max_value());
            assert!(age.read(pop.profile(i)) <= age.max_value());
        }
    }

    #[test]
    #[should_panic(expected = "no fields declared")]
    fn empty_model_rejected() {
        let mut rng = Prg::seed_from_u64(34);
        let _ = DemographicsModel::new().generate(5, &mut rng);
    }
}
