//! # psketch-data — synthetic workload substrate
//!
//! The paper evaluates no public data set; its examples are sensitive
//! surveys, market baskets and salary analytics. This crate generates
//! those workloads synthetically with **exact ground truth**, which is
//! what the error experiments need:
//!
//! * [`population`] — the in-the-clear world state: profiles plus exact
//!   evaluation of every query the privacy layer estimates, and bulk
//!   publishing into a [`SketchDb`](psketch_core::SketchDb);
//! * [`planted`] — populations with an exactly planted conjunction
//!   frequency (experiment E5's workload);
//! * [`survey`] — correlated boolean surveys (the HIV/AIDS example);
//! * [`basket`] — sparse market-basket transactions (the Evfimievski
//!   comparison regime);
//! * [`demographics`] — k-bit integer attributes (salary/age) for the
//!   §4.1 mean, interval and combined-constraint queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basket;
pub mod demographics;
pub mod planted;
pub mod population;
pub mod survey;

pub use basket::{BasketModel, PlantedItemset};
pub use demographics::{DemographicField, DemographicsModel, FieldDistribution};
pub use planted::PlantedConjunction;
pub use population::Population;
pub use survey::{AttributeLaw, SurveyAttribute, SurveyModel};
