//! Populations: collections of (id, profile) pairs with exact ground truth.
//!
//! The paper's data model is "a collection of individuals who each possess
//! private data". A [`Population`] owns that collection *in the clear* —
//! it plays the role of the world's true state, against which every
//! experiment compares its privacy-preserving estimates. Ground-truth
//! queries here are exact by construction.

use psketch_core::{BitString, BitSubset, Error, IntField, Profile, SketchDb, Sketcher, UserId};
use rand::Rng;

/// A population of users with known (non-private) profiles.
#[derive(Debug, Clone)]
pub struct Population {
    profiles: Vec<Profile>,
    num_attributes: usize,
}

impl Population {
    /// Builds a population from profiles (user `i` gets `UserId(i)`).
    ///
    /// # Panics
    ///
    /// Panics if profiles have inconsistent attribute counts or the
    /// population is empty.
    #[must_use]
    pub fn new(profiles: Vec<Profile>) -> Self {
        assert!(!profiles.is_empty(), "population must be non-empty");
        let num_attributes = profiles[0].num_attributes();
        assert!(
            profiles
                .iter()
                .all(|p| p.num_attributes() == num_attributes),
            "all profiles must have the same attribute count"
        );
        Self {
            profiles,
            num_attributes,
        }
    }

    /// Number of users `M`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the population is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Number of attributes `q` per profile.
    #[must_use]
    pub fn num_attributes(&self) -> usize {
        self.num_attributes
    }

    /// The profile of user `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ len()`.
    #[must_use]
    pub fn profile(&self, i: usize) -> &Profile {
        &self.profiles[i]
    }

    /// Iterates `(id, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &Profile)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (UserId(i as u64), p))
    }

    /// Exact fraction of users satisfying the conjunction `d_B = v`
    /// (the ground truth for the paper's `I(B, v)/M`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch (as [`Profile::satisfies`]).
    #[must_use]
    pub fn true_fraction(&self, subset: &BitSubset, value: &BitString) -> f64 {
        let count = self
            .profiles
            .iter()
            .filter(|p| p.satisfies(subset, value))
            .count();
        count as f64 / self.len() as f64
    }

    /// Exact fraction of users whose profiles satisfy `predicate`.
    #[must_use]
    pub fn true_fraction_by(&self, predicate: impl Fn(&Profile) -> bool) -> f64 {
        let count = self.profiles.iter().filter(|p| predicate(p)).count();
        count as f64 / self.len() as f64
    }

    /// Exact mean of an integer field over the population.
    #[must_use]
    pub fn true_mean(&self, field: &IntField) -> f64 {
        let total: u64 = self.profiles.iter().map(|p| field.read(p)).sum();
        total as f64 / self.len() as f64
    }

    /// Exact mean of `field_b` among users with `field_a ≤ c`
    /// (`None` when no user qualifies).
    #[must_use]
    pub fn true_conditional_mean(
        &self,
        field_a: &IntField,
        c: u64,
        field_b: &IntField,
    ) -> Option<f64> {
        let values: Vec<u64> = self
            .profiles
            .iter()
            .filter(|p| field_a.read(p) <= c)
            .map(|p| field_b.read(p))
            .collect();
        if values.is_empty() {
            return None;
        }
        Some(values.iter().sum::<u64>() as f64 / values.len() as f64)
    }

    /// Exact mean inner product `E[a·b]` of two integer fields.
    #[must_use]
    pub fn true_mean_product(&self, a: &IntField, b: &IntField) -> f64 {
        let total: u128 = self
            .profiles
            .iter()
            .map(|p| u128::from(a.read(p)) * u128::from(b.read(p)))
            .sum();
        total as f64 / self.len() as f64
    }

    /// Publishes one sketch per user for `subset` into `db`.
    ///
    /// Returns the number of users whose sketching *failed* (Algorithm 1
    /// exhaustion) — they publish nothing, exactly as the paper's failure
    /// semantics prescribe.
    ///
    /// # Errors
    ///
    /// Propagates non-exhaustion errors (none currently possible).
    pub fn publish<R: Rng + ?Sized>(
        &self,
        sketcher: &Sketcher,
        subset: &BitSubset,
        db: &SketchDb,
        rng: &mut R,
    ) -> Result<usize, Error> {
        let mut failures = 0;
        for (id, profile) in self.iter() {
            match sketcher.sketch(id, profile, subset, rng) {
                Ok(sketch) => db.insert(subset.clone(), id, sketch),
                Err(Error::KeySpaceExhausted { .. }) => failures += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(failures)
    }

    /// Publishes sketches for several subsets (one sketch per user per
    /// subset), returning total failures.
    ///
    /// # Errors
    ///
    /// As [`Population::publish`].
    pub fn publish_all<R: Rng + ?Sized>(
        &self,
        sketcher: &Sketcher,
        subsets: &[BitSubset],
        db: &SketchDb,
        rng: &mut R,
    ) -> Result<usize, Error> {
        let mut failures = 0;
        for subset in subsets {
            failures += self.publish(sketcher, subset, db, rng)?;
        }
        Ok(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::SketchParams;
    use psketch_prf::{GlobalKey, Prg};
    use rand::SeedableRng;

    fn tiny() -> Population {
        Population::new(vec![
            Profile::from_bits(&[true, true, false]),
            Profile::from_bits(&[true, false, false]),
            Profile::from_bits(&[false, false, false]),
            Profile::from_bits(&[true, true, true]),
        ])
    }

    #[test]
    fn ground_truth_fractions() {
        let pop = tiny();
        let b = BitSubset::range(0, 2);
        assert_eq!(
            pop.true_fraction(&b, &BitString::from_bits(&[true, true])),
            0.5
        );
        assert_eq!(
            pop.true_fraction(&b, &BitString::from_bits(&[false, true])),
            0.0
        );
        assert_eq!(pop.true_fraction_by(|p| p.get(2)), 0.25);
    }

    #[test]
    fn mean_and_product_ground_truth() {
        // Two 2-bit fields side by side.
        let a = IntField::new(0, 2);
        let b = IntField::new(2, 2);
        let mut profiles = Vec::new();
        for (va, vb) in [(3u64, 1u64), (2, 0), (1, 3), (0, 2)] {
            let mut p = Profile::zeros(4);
            a.write(&mut p, va);
            b.write(&mut p, vb);
            profiles.push(p);
        }
        let pop = Population::new(profiles);
        assert_eq!(pop.true_mean(&a), 1.5);
        assert_eq!(pop.true_mean(&b), 1.5);
        // products: 3, 0, 3, 0 → mean 1.5
        assert_eq!(pop.true_mean_product(&a, &b), 1.5);
        // conditional: a ≤ 1 → users with a ∈ {1, 0}, b ∈ {3, 2} → 2.5
        assert_eq!(pop.true_conditional_mean(&a, 1, &b), Some(2.5));
        assert_eq!(pop.true_conditional_mean(&a, 1, &a), Some(0.5));
    }

    #[test]
    fn conditional_mean_empty_is_none() {
        let a = IntField::new(0, 2);
        let mut p = Profile::zeros(2);
        a.write(&mut p, 3);
        let pop = Population::new(vec![p]);
        assert_eq!(pop.true_conditional_mean(&a, 1, &a), None);
    }

    #[test]
    fn publish_fills_database() {
        let pop = tiny();
        let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(2)).unwrap();
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        let b = BitSubset::range(0, 3);
        let mut rng = Prg::seed_from_u64(1);
        let failures = pop.publish(&sketcher, &b, &db, &mut rng).unwrap();
        assert_eq!(failures, 0);
        assert_eq!(db.count(&b), 4);
    }

    #[test]
    fn publish_all_covers_every_subset() {
        let pop = tiny();
        let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(2)).unwrap();
        let sketcher = Sketcher::new(params);
        let db = SketchDb::new();
        let subsets = vec![BitSubset::single(0), BitSubset::single(1)];
        let mut rng = Prg::seed_from_u64(1);
        pop.publish_all(&sketcher, &subsets, &db, &mut rng).unwrap();
        assert_eq!(db.total_records(), 8);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_rejected() {
        let _ = Population::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "same attribute count")]
    fn inconsistent_widths_rejected() {
        let _ = Population::new(vec![Profile::zeros(2), Profile::zeros(3)]);
    }
}
