//! Planted-conjunction populations with exactly known frequencies.
//!
//! The error experiments (E5 in particular) need populations where the true
//! answer to a conjunctive query is known *exactly* and independent of the
//! generator's randomness. [`PlantedConjunction`] plants a target value on
//! a subset in an exact fraction of users; all other bits are i.i.d. noise.

use crate::population::Population;
use psketch_core::{BitString, BitSubset, Profile};
use rand::{Rng, RngExt};

/// Generator configuration for a planted-conjunction population.
#[derive(Debug, Clone)]
pub struct PlantedConjunction {
    /// Total number of attributes `q` per profile.
    pub num_attributes: usize,
    /// The planted subset `B`.
    pub subset: BitSubset,
    /// The planted value `v` on `B`.
    pub value: BitString,
    /// Exact fraction of users that satisfy `d_B = v`.
    pub fraction: f64,
}

impl PlantedConjunction {
    /// Convenience: plant the all-ones value on the first `k` attributes.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ num_attributes` and `0 ≤ fraction ≤ 1`.
    #[must_use]
    pub fn all_ones(num_attributes: usize, k: usize, fraction: f64) -> Self {
        assert!(k >= 1 && k <= num_attributes);
        assert!((0.0..=1.0).contains(&fraction));
        Self {
            num_attributes,
            subset: BitSubset::range(0, k as u32),
            value: BitString::from_bits(&vec![true; k]),
            fraction,
        }
    }

    /// Generates a population of `m` users.
    ///
    /// Exactly `⌊fraction·m⌋` users satisfy the planted conjunction; every
    /// non-satisfying user differs from `v` in at least one planted bit
    /// (chosen at random), and all non-planted bits are fair coins.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or the subset exceeds `num_attributes`.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Population {
        assert!(m > 0, "population must be non-empty");
        assert!(
            (self.subset.max_position() as usize) < self.num_attributes,
            "subset exceeds attribute count"
        );
        let satisfying = (self.fraction * m as f64).floor() as usize;
        let profiles = (0..m)
            .map(|i| {
                let mut profile = Profile::zeros(self.num_attributes);
                // Background noise on every bit.
                for pos in 0..self.num_attributes {
                    profile.set(pos, rng.random::<bool>());
                }
                if i < satisfying {
                    // Plant the value.
                    for (j, &pos) in self.subset.positions().iter().enumerate() {
                        profile.set(pos as usize, self.value.get(j));
                    }
                } else {
                    // Plant the value, then break one random planted bit:
                    // guarantees non-satisfaction without skewing others.
                    for (j, &pos) in self.subset.positions().iter().enumerate() {
                        profile.set(pos as usize, self.value.get(j));
                    }
                    let j = rng.random_range(0..self.subset.len());
                    let pos = self.subset.positions()[j] as usize;
                    profile.set(pos, !self.value.get(j));
                }
                profile
            })
            .collect();
        Population::new(profiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::SeedableRng;

    #[test]
    fn planted_fraction_is_exact() {
        let mut rng = Prg::seed_from_u64(3);
        for &(m, f) in &[(100usize, 0.25f64), (1000, 0.5), (777, 0.0), (64, 1.0)] {
            let gen = PlantedConjunction::all_ones(16, 4, f);
            let pop = gen.generate(m, &mut rng);
            let truth = pop.true_fraction(&gen.subset, &gen.value);
            let expected = (f * m as f64).floor() / m as f64;
            assert!(
                (truth - expected).abs() < 1e-12,
                "m={m} f={f}: planted {truth}, expected {expected}"
            );
        }
    }

    #[test]
    fn non_planted_bits_are_balanced() {
        let mut rng = Prg::seed_from_u64(4);
        let gen = PlantedConjunction::all_ones(16, 4, 0.3);
        let pop = gen.generate(20_000, &mut rng);
        // Attribute 10 is outside the planted subset: frequency ≈ 1/2.
        let f = pop.true_fraction_by(|p| p.get(10));
        assert!((f - 0.5).abs() < 0.02, "background bit biased: {f}");
    }

    #[test]
    fn arbitrary_value_and_subset() {
        let mut rng = Prg::seed_from_u64(5);
        let gen = PlantedConjunction {
            num_attributes: 8,
            subset: BitSubset::new(vec![1, 4, 6]).unwrap(),
            value: BitString::from_bits(&[true, false, true]),
            fraction: 0.4,
        };
        let pop = gen.generate(500, &mut rng);
        let truth = pop.true_fraction(&gen.subset, &gen.value);
        assert!((truth - 0.4).abs() < 2e-3);
    }

    #[test]
    #[should_panic(expected = "exceeds attribute count")]
    fn oversized_subset_rejected() {
        let mut rng = Prg::seed_from_u64(6);
        let gen = PlantedConjunction {
            num_attributes: 4,
            subset: BitSubset::new(vec![9]).unwrap(),
            value: BitString::from_bits(&[true]),
            fraction: 0.5,
        };
        let _ = gen.generate(10, &mut rng);
    }
}
