//! Sparse market-basket transactions — the frequent-itemset workload.
//!
//! The paper positions conjunctive queries as "a natural generalization of
//! frequent item-set mining" and contrasts its approach with Evfimievski et
//! al., whose scheme "only applies to databases where each user has a small
//! number of items in their transaction". [`BasketModel`] generates exactly
//! that regime: a large universe of items, each transaction containing few,
//! with a handful of planted frequent itemsets on top of background noise.

use crate::population::Population;
use psketch_core::Profile;
use rand::{Rng, RngExt};

/// A planted frequent itemset.
#[derive(Debug, Clone)]
pub struct PlantedItemset {
    /// The item indices forming the set.
    pub items: Vec<u32>,
    /// Probability a transaction contains the *whole* set.
    pub support: f64,
}

/// Generator for sparse transaction populations.
#[derive(Debug, Clone)]
pub struct BasketModel {
    /// Universe size (number of item attributes).
    pub num_items: usize,
    /// Per-item background inclusion probability (kept small for sparsity).
    pub background_rate: f64,
    /// Planted frequent itemsets.
    pub planted: Vec<PlantedItemset>,
}

impl BasketModel {
    /// A model with no planted sets.
    ///
    /// # Panics
    ///
    /// Panics if `background_rate ∉ [0, 1]` or `num_items == 0`.
    #[must_use]
    pub fn new(num_items: usize, background_rate: f64) -> Self {
        assert!(num_items > 0);
        assert!((0.0..=1.0).contains(&background_rate));
        Self {
            num_items,
            background_rate,
            planted: Vec::new(),
        }
    }

    /// Plants an itemset with the given support.
    ///
    /// # Panics
    ///
    /// Panics if any item is out of range or support invalid.
    #[must_use]
    pub fn with_itemset(mut self, items: Vec<u32>, support: f64) -> Self {
        assert!(items.iter().all(|&i| (i as usize) < self.num_items));
        assert!((0.0..=1.0).contains(&support));
        self.planted.push(PlantedItemset { items, support });
        self
    }

    /// Samples one transaction profile.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Profile {
        let mut profile = Profile::zeros(self.num_items);
        for i in 0..self.num_items {
            if rng.random::<f64>() < self.background_rate {
                profile.set(i, true);
            }
        }
        for set in &self.planted {
            if rng.random::<f64>() < set.support {
                for &item in &set.items {
                    profile.set(item as usize, true);
                }
            }
        }
        profile
    }

    /// Generates `m` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Population {
        Population::new((0..m).map(|_| self.sample(rng)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{BitString, BitSubset};
    use psketch_prf::Prg;
    use rand::SeedableRng;

    #[test]
    fn transactions_are_sparse() {
        let model = BasketModel::new(100, 0.03);
        let mut rng = Prg::seed_from_u64(20);
        let pop = model.generate(5_000, &mut rng);
        let avg_items: f64 = (0..pop.len())
            .map(|i| pop.profile(i).bits().count_ones() as f64)
            .sum::<f64>()
            / pop.len() as f64;
        assert!(
            (avg_items - 3.0).abs() < 0.3,
            "expected ≈3 items/transaction, got {avg_items}"
        );
    }

    #[test]
    fn planted_support_is_recovered() {
        let model = BasketModel::new(50, 0.02).with_itemset(vec![3, 7, 11], 0.25);
        let mut rng = Prg::seed_from_u64(21);
        let pop = model.generate(40_000, &mut rng);
        let subset = BitSubset::new(vec![3, 7, 11]).unwrap();
        let all_ones = BitString::from_bits(&[true, true, true]);
        let support = pop.true_fraction(&subset, &all_ones);
        // Background can also complete the set, but at rate 0.02³ ≈ 8e−6.
        assert!(
            (support - 0.25).abs() < 0.02,
            "planted support drifted: {support}"
        );
    }

    #[test]
    fn multiple_itemsets_coexist() {
        let model = BasketModel::new(30, 0.01)
            .with_itemset(vec![0, 1], 0.4)
            .with_itemset(vec![2, 3, 4], 0.1);
        let mut rng = Prg::seed_from_u64(22);
        let pop = model.generate(30_000, &mut rng);
        let s1 = pop.true_fraction(
            &BitSubset::new(vec![0, 1]).unwrap(),
            &BitString::from_bits(&[true, true]),
        );
        let s2 = pop.true_fraction(
            &BitSubset::new(vec![2, 3, 4]).unwrap(),
            &BitString::from_bits(&[true, true, true]),
        );
        assert!((s1 - 0.4).abs() < 0.03, "s1 = {s1}");
        assert!((s2 - 0.1).abs() < 0.02, "s2 = {s2}");
    }

    #[test]
    #[should_panic]
    fn out_of_range_item_rejected() {
        let _ = BasketModel::new(5, 0.1).with_itemset(vec![7], 0.5);
    }
}
