//! Correlated boolean survey populations — the paper's motivating workload.
//!
//! The introduction's running examples are sensitive surveys: "whether they
//! ever inhaled", "what fraction of individuals are HIV+ and do not have
//! AIDS". [`SurveyModel`] generates boolean profiles from a simple causal
//! chain: each attribute has a base rate, optionally modulated by one
//! parent attribute (conditional rates given the parent's value). That is
//! enough structure to produce the correlated conjunctions the paper's
//! queries target while keeping ground truth trivially computable.

use crate::population::Population;
use psketch_core::Profile;
use rand::{Rng, RngExt};

/// One survey question (attribute) and its generative law.
#[derive(Debug, Clone)]
pub struct SurveyAttribute {
    /// Attribute name (for reports).
    pub name: String,
    /// Generation law.
    pub law: AttributeLaw,
}

/// How an attribute is generated.
#[derive(Debug, Clone)]
pub enum AttributeLaw {
    /// Independent Bernoulli with probability `rate`.
    Independent {
        /// `P[attribute = 1]`.
        rate: f64,
    },
    /// Conditional on an earlier attribute: `P[1 | parent = 1]` and
    /// `P[1 | parent = 0]`.
    Conditional {
        /// Index of the parent attribute (must be smaller than this one's).
        parent: usize,
        /// `P[1 | parent = 1]`.
        rate_if_parent: f64,
        /// `P[1 | parent = 0]`.
        rate_otherwise: f64,
    },
}

/// A survey generation model: an ordered list of attributes.
#[derive(Debug, Clone, Default)]
pub struct SurveyModel {
    attributes: Vec<SurveyAttribute>,
}

impl SurveyModel {
    /// An empty model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an independent attribute; returns its index.
    pub fn independent(&mut self, name: impl Into<String>, rate: f64) -> usize {
        assert!((0.0..=1.0).contains(&rate), "rate out of [0,1]");
        self.attributes.push(SurveyAttribute {
            name: name.into(),
            law: AttributeLaw::Independent { rate },
        });
        self.attributes.len() - 1
    }

    /// Adds an attribute conditioned on `parent`; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an earlier attribute or rates are invalid.
    pub fn conditional(
        &mut self,
        name: impl Into<String>,
        parent: usize,
        rate_if_parent: f64,
        rate_otherwise: f64,
    ) -> usize {
        assert!(parent < self.attributes.len(), "parent must precede child");
        assert!((0.0..=1.0).contains(&rate_if_parent));
        assert!((0.0..=1.0).contains(&rate_otherwise));
        self.attributes.push(SurveyAttribute {
            name: name.into(),
            law: AttributeLaw::Conditional {
                parent,
                rate_if_parent,
                rate_otherwise,
            },
        });
        self.attributes.len() - 1
    }

    /// Number of attributes.
    #[must_use]
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names in index order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Samples one profile.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Profile {
        let mut profile = Profile::zeros(self.attributes.len());
        for (i, attr) in self.attributes.iter().enumerate() {
            let rate = match attr.law {
                AttributeLaw::Independent { rate } => rate,
                AttributeLaw::Conditional {
                    parent,
                    rate_if_parent,
                    rate_otherwise,
                } => {
                    if profile.get(parent) {
                        rate_if_parent
                    } else {
                        rate_otherwise
                    }
                }
            };
            profile.set(i, rng.random::<f64>() < rate);
        }
        profile
    }

    /// Generates a population of `m` users.
    ///
    /// # Panics
    ///
    /// Panics if the model has no attributes or `m == 0`.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Population {
        assert!(!self.attributes.is_empty(), "model has no attributes");
        Population::new((0..m).map(|_| self.sample(rng)).collect())
    }

    /// The paper's epidemiology example: HIV status, AIDS conditioned on
    /// HIV, an "ever inhaled" question, and two demographic bits.
    ///
    /// Index map: 0 = HIV+, 1 = AIDS, 2 = inhaled, 3 = smoker, 4 = urban.
    #[must_use]
    pub fn epidemiology() -> Self {
        let mut model = Self::new();
        let hiv = model.independent("hiv_positive", 0.02);
        model.conditional("aids", hiv, 0.60, 0.0005);
        model.independent("ever_inhaled", 0.35);
        let smoker = model.independent("smoker", 0.25);
        model.conditional("urban", smoker, 0.55, 0.45);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_prf::Prg;
    use rand::SeedableRng;

    #[test]
    fn independent_rates_are_respected() {
        let mut model = SurveyModel::new();
        model.independent("a", 0.2);
        model.independent("b", 0.7);
        let mut rng = Prg::seed_from_u64(10);
        let pop = model.generate(30_000, &mut rng);
        let fa = pop.true_fraction_by(|p| p.get(0));
        let fb = pop.true_fraction_by(|p| p.get(1));
        assert!((fa - 0.2).abs() < 0.01, "a rate {fa}");
        assert!((fb - 0.7).abs() < 0.01, "b rate {fb}");
    }

    #[test]
    fn conditional_structure_creates_correlation() {
        let model = SurveyModel::epidemiology();
        let mut rng = Prg::seed_from_u64(11);
        let pop = model.generate(120_000, &mut rng);
        // P[AIDS | HIV+] ≈ 0.6, P[AIDS | HIV−] ≈ 0.0005.
        let hiv = pop.true_fraction_by(|p| p.get(0));
        let both = pop.true_fraction_by(|p| p.get(0) && p.get(1));
        assert!((hiv - 0.02).abs() < 0.005, "hiv rate {hiv}");
        assert!(
            (both / hiv - 0.6).abs() < 0.06,
            "P[aids|hiv] = {}",
            both / hiv
        );
        // The paper's query: HIV+ and NOT AIDS ≈ 0.02·0.4 = 0.008.
        let target = pop.true_fraction_by(|p| p.get(0) && !p.get(1));
        assert!((target - 0.008).abs() < 0.003, "hiv∧¬aids = {target}");
    }

    #[test]
    fn names_and_indices() {
        let model = SurveyModel::epidemiology();
        assert_eq!(model.num_attributes(), 5);
        assert_eq!(
            model.names(),
            ["hiv_positive", "aids", "ever_inhaled", "smoker", "urban"]
        );
    }

    #[test]
    #[should_panic(expected = "parent must precede child")]
    fn forward_reference_rejected() {
        let mut model = SurveyModel::new();
        model.conditional("orphan", 0, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "rate out of")]
    fn invalid_rate_rejected() {
        let mut model = SurveyModel::new();
        model.independent("bad", 1.5);
    }
}
