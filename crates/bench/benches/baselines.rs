//! Criterion: baseline estimators vs the sketch path at equal width.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psketch_baselines::randomize_profiles;
use psketch_core::{BitString, BitSubset, Profile};
use psketch_prf::Prg;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_rr_estimators(c: &mut Criterion) {
    let m = 10_000usize;
    let k = 8usize;
    let mut rng = Prg::seed_from_u64(11);
    let profiles: Vec<Profile> = (0..m)
        .map(|i| Profile::from_bits(&vec![i % 2 == 0; k]))
        .collect();
    let db = randomize_profiles(0.3, profiles, &mut rng).unwrap();
    let subset = BitSubset::range(0, k as u32);
    let value = BitString::from_bits(&vec![true; k]);

    let mut group = c.benchmark_group("rr_estimators_10k_width8");
    group.throughput(Throughput::Elements(m as u64));
    group.bench_function("product", |b| {
        b.iter(|| db.product_estimate(black_box(&subset), &value).unwrap())
    });
    group.bench_function("matrix", |b| {
        b.iter(|| db.matrix_estimate(black_box(&subset), &value).unwrap())
    });
    group.finish();
}

fn bench_warner_channel(c: &mut Criterion) {
    let channel = psketch_baselines::WarnerChannel::new(0.3).unwrap();
    let profile = Profile::from_bits(&vec![true; 256]);
    let mut rng = Prg::seed_from_u64(12);
    c.bench_function("warner_flip_256bit_profile", |b| {
        b.iter(|| channel.flip_profile(black_box(&profile), &mut rng))
    });
}

criterion_group!(benches, bench_rr_estimators, bench_warner_channel);
criterion_main!(benches);
