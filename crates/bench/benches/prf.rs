//! Criterion: PRF evaluation throughput (the cost of one `H` call).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use psketch_core::{BitString, BitSubset, HFunction, SketchParams, UserId};
use psketch_prf::{AnyPrf, GlobalKey, Prf, PrfKind};
use std::hint::black_box;

fn bench_prf_families(c: &mut Criterion) {
    let key = GlobalKey::from_seed(1);
    let input = [0xABu8; 48];
    let mut group = c.benchmark_group("prf_eval_48B");
    for (name, kind) in [("siphash", PrfKind::Sip), ("chacha", PrfKind::ChaCha)] {
        let prf = AnyPrf::new(kind, &key);
        group.bench_function(name, |b| b.iter(|| prf.eval_u64(black_box(&input))));
    }
    group.finish();
}

fn bench_h_function(c: &mut Criterion) {
    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(2)).unwrap();
    let h = HFunction::new(&params);
    let mut group = c.benchmark_group("h_function");
    for k in [1usize, 8, 64] {
        let subset = BitSubset::range(0, k as u32);
        let value = BitString::from_bits(&vec![true; k]);
        group.bench_function(format!("width_{k}"), |b| {
            b.iter_batched(
                || (),
                |()| h.eval(black_box(UserId(7)), &subset, &value, black_box(5)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prf_families, bench_h_function);
criterion_main!(benches);
