//! Criterion: Algorithm 2 query evaluation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile, SketchDb, SketchParams,
    Sketcher, UserId,
};
use psketch_data::{DemographicsModel, FieldDistribution};
use psketch_prf::{GlobalKey, Prg};
use psketch_queries::{less_equal_query, mean_query, QueryEngine};
use rand::SeedableRng;
use std::hint::black_box;

fn build_db(m: u64, k: usize) -> (SketchParams, SketchDb, BitSubset) {
    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(7)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(8);
    for i in 0..m {
        let profile = Profile::from_bits(&vec![i % 3 == 0; k]);
        let s = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .unwrap();
        db.insert(subset.clone(), UserId(i), s);
    }
    (params, db, subset)
}

fn bench_conjunctive_estimate(c: &mut Criterion) {
    let m = 10_000u64;
    let mut group = c.benchmark_group("algorithm2_estimate");
    group.throughput(Throughput::Elements(m));
    for k in [2usize, 16] {
        let (params, db, subset) = build_db(m, k);
        let estimator = ConjunctiveEstimator::new(params);
        let query = ConjunctiveQuery::new(subset, BitString::from_bits(&vec![true; k])).unwrap();
        group.bench_function(format!("10k_users_width_{k}"), |b| {
            b.iter(|| estimator.estimate(black_box(&db), &query).unwrap())
        });
    }
    group.finish();
}

fn bench_compiled_queries(c: &mut Criterion) {
    // A salary field with all prefix/bit subsets sketched.
    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(9)).unwrap();
    let mut model = DemographicsModel::new();
    let salary = model.field("salary", 8, FieldDistribution::Uniform { lo: 0, hi: 255 });
    let mut rng = Prg::seed_from_u64(10);
    let pop = model.generate(5_000, &mut rng);
    let sketcher = Sketcher::new(params);
    let db = SketchDb::new();
    let mut subsets = psketch_queries::mean_required_subsets(&salary);
    subsets.extend(psketch_queries::interval_required_subsets(&salary));
    subsets.sort();
    subsets.dedup();
    pop.publish_all(&sketcher, &subsets, &db, &mut rng).unwrap();
    let engine = QueryEngine::new(params);

    let mut group = c.benchmark_group("compiled_queries_5k_users");
    let mq = mean_query(&salary);
    group.bench_function("mean_8bit", |b| {
        b.iter(|| engine.linear(black_box(&db), &mq).unwrap())
    });
    let iq = less_equal_query(&salary, 170);
    group.bench_function("interval_le_170", |b| {
        b.iter(|| engine.linear(black_box(&db), &iq).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_conjunctive_estimate, bench_compiled_queries);
criterion_main!(benches);
