//! Criterion: Algorithm 1 sketching throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psketch_core::{BitSubset, Profile, SketchParams, Sketcher, UserId};
use psketch_prf::{GlobalKey, Prg};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sketch_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_one_user");
    for &p in &[0.25f64, 0.45] {
        let params = SketchParams::with_sip(p, 10, GlobalKey::from_seed(3)).unwrap();
        let sketcher = Sketcher::new(params);
        let profile = Profile::from_bits(&[true; 16]);
        let subset = BitSubset::range(0, 16);
        let mut rng = Prg::seed_from_u64(4);
        let mut id = 0u64;
        group.bench_function(format!("p_{p}"), |b| {
            b.iter(|| {
                id += 1;
                sketcher
                    .sketch(black_box(UserId(id)), &profile, &subset, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_population_publish(c: &mut Criterion) {
    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(5)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, 8);
    let m = 1_000u64;
    let mut group = c.benchmark_group("publish_population");
    group.throughput(Throughput::Elements(m));
    group.bench_function("1000_users_8bit_subset", |b| {
        b.iter(|| {
            let mut rng = Prg::seed_from_u64(6);
            let db = psketch_core::SketchDb::new();
            for i in 0..m {
                let profile = Profile::from_bits(&[i % 2 == 0; 8]);
                let s = sketcher
                    .sketch(UserId(i), &profile, &subset, &mut rng)
                    .unwrap();
                db.insert(subset.clone(), UserId(i), s);
            }
            db
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sketch_one, bench_population_publish);
criterion_main!(benches);
