//! Criterion: scalar vs batched Algorithm 2 over a million-sketch shard.
//!
//! The acceptance bar for the columnar/batched read path: at 1M records
//! the batched scan must beat the pre-refactor scalar path (per-record
//! encoder allocation + re-encoding) by ≥ 5x.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile, SketchDb, SketchParams,
    Sketcher, UserId,
};
use psketch_prf::{GlobalKey, Prg};
use rand::SeedableRng;
use std::hint::black_box;

const M: u64 = 1_000_000;
const WIDTH: usize = 8;

fn build_db(m: u64, k: usize) -> (SketchParams, SketchDb, BitSubset) {
    let params = SketchParams::with_sip(0.3, 10, GlobalKey::from_seed(20)).unwrap();
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let db = SketchDb::new();
    let mut rng = Prg::seed_from_u64(21);
    for i in 0..m {
        let profile = Profile::from_bits(&vec![i % 3 == 0; k]);
        let s = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .unwrap();
        db.insert(subset.clone(), UserId(i), s);
    }
    (params, db, subset)
}

fn bench_scalar_vs_batched(c: &mut Criterion) {
    let (params, db, subset) = build_db(M, WIDTH);
    let estimator = ConjunctiveEstimator::new(params);
    let query = ConjunctiveQuery::new(subset, BitString::from_bits(&[true; WIDTH])).unwrap();
    // Publish the snapshot once so neither path pays it in the loop.
    let warm = estimator.estimate(&db, &query).unwrap();
    assert_eq!(
        warm.raw.to_bits(),
        estimator
            .estimate_scalar(&db, &query)
            .unwrap()
            .raw
            .to_bits(),
        "scalar and batched paths must agree before timing them"
    );

    let mut group = c.benchmark_group("algorithm2_1M_width8");
    group.throughput(Throughput::Elements(M));
    group.bench_function("scalar", |b| {
        b.iter(|| estimator.estimate_scalar(black_box(&db), &query).unwrap())
    });
    group.bench_function("batched", |b| {
        b.iter(|| estimator.estimate(black_box(&db), &query).unwrap())
    });
    group.finish();
}

fn bench_distribution_one_pass(c: &mut Criterion) {
    let m = 100_000;
    let k = 4usize;
    let (params, db, subset) = build_db(m, k);
    let estimator = ConjunctiveEstimator::new(params);
    let _ = estimator.estimate_distribution(&db, &subset).unwrap();

    let mut group = c.benchmark_group("distribution_100k_width4");
    group.throughput(Throughput::Elements(m));
    group.bench_function("one_pass", |b| {
        b.iter(|| {
            estimator
                .estimate_distribution(black_box(&db), &subset)
                .unwrap()
        })
    });
    group.bench_function("per_value_scalar", |b| {
        b.iter(|| {
            (0..1u64 << k)
                .map(|value| {
                    let q = ConjunctiveQuery::new(subset.clone(), BitString::from_u64(value, k))
                        .unwrap();
                    estimator.estimate_scalar(black_box(&db), &q).unwrap().raw
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scalar_vs_batched,
    bench_distribution_one_pass
);
criterion_main!(benches);
