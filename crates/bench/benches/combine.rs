//! Criterion: Appendix F machinery — transition matrices and recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use psketch_core::{recover_from_bits, transition_matrix};
use psketch_linalg::{inverse, Lu};
use std::hint::black_box;

fn bench_transition_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_matrix_build");
    for k in [4usize, 8, 16] {
        group.bench_function(format!("k_{k}"), |b| {
            b.iter(|| transition_matrix(black_box(k), black_box(0.3)))
        });
    }
    group.finish();
}

fn bench_lu_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu");
    for k in [8usize, 16] {
        let v = transition_matrix(k, 0.3);
        group.bench_function(format!("factorize_inverse_k_{k}"), |b| {
            b.iter(|| inverse(black_box(&v)).unwrap())
        });
        let lu = Lu::factorize(&v).unwrap();
        let rhs = vec![1.0 / (k + 1) as f64; k + 1];
        group.bench_function(format!("solve_k_{k}"), |b| {
            b.iter(|| lu.solve(black_box(&rhs)).unwrap())
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    // 10k users, 8 virtual bits.
    let rows: Vec<Vec<bool>> = (0..10_000)
        .map(|i| (0..8).map(|j| (i + j) % 3 == 0).collect())
        .collect();
    c.bench_function("recover_from_bits_10k_k8", |b| {
        b.iter(|| recover_from_bits(8, 0.3, black_box(rows.clone())).unwrap())
    });
}

criterion_group!(
    benches,
    bench_transition_matrix,
    bench_lu_solve,
    bench_recovery
);
criterion_main!(benches);
