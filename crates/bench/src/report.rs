//! Table rendering for the experiment harness.
//!
//! Every experiment produces one or more [`Table`]s; the harness prints
//! them in an aligned, paper-style plain-text format so EXPERIMENTS.md can
//! quote rows verbatim.

use std::fmt::Write as _;

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "E5a — RMS error vs conjunction width").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (cells rendered by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}", self.title);
        let line = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let _ = writeln!(out, "{}", line(&widths));
        let mut header = String::from("|");
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(header, " {h:>w$} |");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", line(&widths));
        for row in &self.rows {
            let mut r = String::from("|");
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(r, " {cell:>w$} |");
            }
            let _ = writeln!(out, "{r}");
        }
        let _ = writeln!(out, "{}", line(&widths));
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with `prec` decimals.
#[must_use]
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a float in scientific notation with 2 significant decimals.
#[must_use]
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

/// Root-mean-square of a slice.
///
/// # Panics
///
/// Panics on empty input.
#[must_use]
pub fn rms(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Mean of a slice.
///
/// # Panics
///
/// Panics on empty input.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| 100 |"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(f(1.23456, 2), "1.23");
        assert!(sci(0.000123).contains('e'));
    }
}
