//! Shared experiment plumbing: configurations, seeding, publishing.

use psketch_core::{BitSubset, SketchDb, SketchParams, Sketcher};
use psketch_data::Population;
use psketch_prf::{GlobalKey, Prg};

/// Global experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Quick mode: smaller populations and fewer repetitions, for CI and
    /// smoke runs. Full mode reproduces the EXPERIMENTS.md numbers.
    pub quick: bool,
    /// Base seed; every (experiment, repetition) derives its own stream.
    pub seed: u64,
}

impl Config {
    /// The default full-fidelity configuration.
    #[must_use]
    pub fn full() -> Self {
        Self {
            quick: false,
            seed: 0xC0FFEE,
        }
    }

    /// The quick smoke configuration.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            seed: 0xC0FFEE,
        }
    }

    /// Scales a population size down in quick mode.
    #[must_use]
    pub fn m(&self, full: usize) -> usize {
        if self.quick {
            (full / 10).clamp(500, 5_000)
        } else {
            full
        }
    }

    /// Scales a repetition count down in quick mode.
    #[must_use]
    pub fn reps(&self, full: u64) -> u64 {
        if self.quick {
            (full / 3).max(2)
        } else {
            full
        }
    }

    /// A deterministic RNG for (experiment id, repetition).
    #[must_use]
    pub fn rng(&self, experiment: u64, rep: u64) -> Prg {
        Prg::from_key_and_stream(&GlobalKey::from_seed(self.seed), experiment << 32 | rep)
    }

    /// Deterministic sketch parameters for an experiment.
    ///
    /// # Panics
    ///
    /// Panics on invalid `p`/`bits` (experiment programming error).
    #[must_use]
    pub fn params(&self, p: f64, bits: u8, experiment: u64) -> SketchParams {
        SketchParams::with_sip(p, bits, GlobalKey::from_seed(self.seed ^ experiment))
            .expect("experiment parameters are valid")
    }
}

/// Publishes one sketch per user per subset and returns the database and
/// the number of sketching failures.
#[must_use]
pub fn publish(
    pop: &Population,
    sketcher: &Sketcher,
    subsets: &[BitSubset],
    rng: &mut Prg,
) -> (SketchDb, usize) {
    let db = SketchDb::new();
    let failures = pop
        .publish_all(sketcher, subsets, &db, rng)
        .expect("publishing cannot fail except by exhaustion");
    (db, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_scales_down() {
        let c = Config::quick();
        assert_eq!(c.m(100_000), 5_000);
        assert_eq!(c.m(600), 500);
        assert_eq!(c.reps(12), 4);
        assert_eq!(c.reps(3), 2);
        let fc = Config::full();
        assert_eq!(fc.m(100_000), 100_000);
        assert_eq!(fc.reps(12), 12);
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        use rand::Rng;
        let c = Config::full();
        let mut a = c.rng(1, 0);
        let mut a2 = c.rng(1, 0);
        let mut b = c.rng(1, 1);
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(c.rng(1, 0).next_u64(), b.next_u64());
    }
}
