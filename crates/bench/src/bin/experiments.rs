//! The experiment harness binary.
//!
//! Usage:
//! ```text
//! experiments [ids…] [--quick]
//! ```
//! With no ids, runs the full E1–E15 suite. `--quick` scales populations
//! and repetitions down for smoke runs.

use psketch_bench::exp::registry;
use psketch_bench::Config;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let cfg = if quick {
        Config::quick()
    } else {
        Config::full()
    };

    let reg = registry();
    if ids.iter().any(|id| id == "list") {
        for (id, desc, _) in &reg {
            println!("{id:>4}  {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<_> = if ids.is_empty() {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match reg.iter().find(|(rid, _, _)| rid == id) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown experiment '{id}'; try 'list'");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    println!(
        "psketch experiment harness — {} mode, seed {:#x}",
        if quick { "quick" } else { "full" },
        cfg.seed
    );
    for (id, desc, runner) in selected {
        println!("\n=== {} — {desc} ===", id.to_uppercase());
        let start = std::time::Instant::now();
        for table in runner(&cfg) {
            table.print();
        }
        println!(
            "[{} finished in {:.2?}]",
            id.to_uppercase(),
            start.elapsed()
        );
    }
    ExitCode::SUCCESS
}
