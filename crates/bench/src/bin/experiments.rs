//! The experiment harness binary.
//!
//! Usage:
//! ```text
//! experiments [ids…] [--quick] [--lanes N]
//! ```
//! With no ids, runs the full E1–E15 suite. `--quick` scales populations
//! and repetitions down for smoke runs. `--lanes` pins the PRF lane
//! width (0 = auto-probe, 1 = scalar, 4/8 = that many SIMD lanes) for
//! every scan the experiments run; answers are identical at any width.

use psketch_bench::exp::registry;
use psketch_bench::Config;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(at) = args.iter().position(|a| a == "--lanes") {
        let parsed = args
            .get(at + 1)
            .and_then(|raw| raw.parse::<usize>().ok())
            .ok_or_else(|| "--lanes needs an unsigned integer argument".to_string())
            .and_then(|w| psketch_core::set_lane_width(w).map_err(|e| format!("--lanes: {e}")));
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    let mut skip_next = false;
    let ids: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--lanes" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(|a| a.to_lowercase())
        .collect();
    let cfg = if quick {
        Config::quick()
    } else {
        Config::full()
    };

    let reg = registry();
    if ids.iter().any(|id| id == "list") {
        for (id, desc, _) in &reg {
            println!("{id:>4}  {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<_> = if ids.is_empty() {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match reg.iter().find(|(rid, _, _)| rid == id) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown experiment '{id}'; try 'list'");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    println!(
        "psketch experiment harness — {} mode, seed {:#x}",
        if quick { "quick" } else { "full" },
        cfg.seed
    );
    for (id, desc, runner) in selected {
        println!("\n=== {} — {desc} ===", id.to_uppercase());
        let start = std::time::Instant::now();
        for table in runner(&cfg) {
            table.print();
        }
        println!(
            "[{} finished in {:.2?}]",
            id.to_uppercase(),
            start.elapsed()
        );
    }
    ExitCode::SUCCESS
}
