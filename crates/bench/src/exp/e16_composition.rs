//! E16 — the Conclusions' claim: relaxing to a negligible leak probability
//! allows *quadratically more* sketches at the same budget.
//!
//! Basic composition (Cor 3.4) affords `ε/ε₀` sketches; advanced
//! composition (δ-relaxed) affords `≈ (ε/ε₀)²/(2·ln(1/δ))`.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::composition::{
    epsilon_advanced, epsilon_basic, max_sketches_advanced, max_sketches_basic, per_sketch_epsilon,
};

/// Runs E16.
#[must_use]
pub fn run(_cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E16a — sketches affordable at budget ε = 1 (δ = 1e-9 for advanced)",
        &["p", "eps0 per sketch", "basic l", "advanced l", "gain"],
    );
    for &p in &[0.49f64, 0.4995, 0.49995, 0.499995, 0.4999995] {
        let basic = max_sketches_basic(p, 1.0);
        let advanced = max_sketches_advanced(p, 1.0, 1e-9);
        let gain = if basic == 0 {
            String::new()
        } else {
            f(f64::from(advanced) / f64::from(basic), 2)
        };
        t.row(vec![
            format!("{p}"),
            f(per_sketch_epsilon(p), 5),
            basic.to_string(),
            advanced.to_string(),
            gain,
        ]);
    }
    t.note("paper §5: 'quadratically more sketches while giving essentially same privacy'");
    t.note(
        "gain ~ eps/(2 eps0 ln(1/δ)): each 10x smaller eps0 gives 10x more gain (quadratic law)",
    );
    t.note("advanced pays a sqrt(2 ln 1/δ) entry fee, so it loses when eps0 is not tiny");

    let mut t2 = Table::new(
        "E16b — total ε after l sketches at p = 0.4999 (basic vs advanced, δ = 1e-9)",
        &["l", "basic eps", "advanced eps"],
    );
    for &l in &[1u32, 10, 100, 1_000, 10_000] {
        t2.row(vec![
            l.to_string(),
            f(epsilon_basic(0.4999, l), 3),
            f(epsilon_advanced(0.4999, l, 1e-9), 3),
        ]);
    }
    t2.note("crossover: advanced pays a sqrt(ln 1/δ) entry fee, then grows like sqrt(l) not l");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advanced_dominates_for_large_l_and_tables_are_consistent() {
        let tables = run(&Config::quick());
        // E16a: advanced >= basic at every near-half p, and the gain grows.
        let gains: Vec<f64> = tables[0]
            .rows
            .iter()
            .filter(|r| !r[4].is_empty())
            .map(|r| r[4].parse().unwrap())
            .collect();
        assert!(gains.windows(2).all(|w| w[1] >= w[0] * 0.9));
        assert!(*gains.last().unwrap() > 10.0, "final gain {:?}", gains);
        // E16b: at l = 10_000 advanced is far below basic.
        let last = tables[1].rows.last().unwrap();
        let basic: f64 = last[1].parse().unwrap();
        let adv: f64 = last[2].parse().unwrap();
        assert!(adv < basic / 5.0);
    }
}
