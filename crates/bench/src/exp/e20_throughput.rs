//! E20 — analyst read-path throughput: scalar vs batched Algorithm 2.
//!
//! The paper's mechanism is built for population scale, so the analyst
//! pipeline must sustain shard scans over millions of sketches. This
//! experiment measures queries/second of the pre-refactor scalar path
//! (one input encoding and allocation per record) against the columnar
//! batched pipeline (snapshot + template splicing + batch PRF), plus the
//! one-pass distribution scan against 2^k independent scans.
//!
//! Besides the printed table it emits `BENCH_throughput.json` in the
//! working directory so the numbers accumulate a performance trajectory
//! across revisions.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile, SketchDb, Sketcher,
    UserId,
};
use std::time::Instant;

const EXP: u64 = 20;

/// Repetitions for one timing sample (the shard scan is measured
/// `reps` times and the best rate is reported, minimizing scheduler
/// noise).
fn best_rate(reps: u64, records: usize, mut scan: impl FnMut()) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            scan();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

/// Runs E20.
///
/// # Panics
///
/// Panics if `BENCH_throughput.json` cannot be written.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(1_000_000);
    let k = 8usize;
    let params = cfg.params(0.3, 10, EXP);
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let db = SketchDb::new();
    let mut rng = cfg.rng(EXP, 0);
    for i in 0..m as u64 {
        let profile = Profile::from_bits(&vec![i % 3 == 0; k]);
        let sketch = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .expect("sketching at ell=10 cannot exhaust");
        db.insert(subset.clone(), UserId(i), sketch);
    }

    let estimator = ConjunctiveEstimator::new(params);
    let query = ConjunctiveQuery::new(subset.clone(), BitString::from_bits(&vec![true; k]))
        .expect("widths match");
    // Publish the snapshot once so neither contender pays it.
    let warm = estimator.estimate(&db, &query).expect("database populated");
    let reps = cfg.reps(5);

    let scalar_rate = best_rate(reps, m, || {
        let e = estimator.estimate_scalar(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), warm.raw.to_bits(), "scalar diverged");
    });
    let batched_rate = best_rate(reps, m, || {
        let e = estimator.estimate(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), warm.raw.to_bits(), "batched diverged");
    });

    // Distribution scan over a narrower subset (2^4 values), one-pass vs
    // 2^k scalar scans.
    let dist_subset = BitSubset::range(0, 4);
    let dist_m = cfg.m(200_000);
    let dist_db = SketchDb::new();
    for i in 0..dist_m as u64 {
        let profile = Profile::from_bits(&[i % 5 == 0; 4]);
        let sketch = sketcher
            .sketch(UserId(i), &profile, &dist_subset, &mut rng)
            .expect("sketching at ell=10 cannot exhaust");
        dist_db.insert(dist_subset.clone(), UserId(i), sketch);
    }
    let _ = estimator
        .estimate_distribution(&dist_db, &dist_subset)
        .expect("populated");
    let one_pass_rate = best_rate(reps, dist_m, || {
        let _ = estimator
            .estimate_distribution(&dist_db, &dist_subset)
            .expect("populated");
    });
    let per_value_rate = best_rate(reps, dist_m, || {
        for value in 0..16u64 {
            let q = ConjunctiveQuery::new(dist_subset.clone(), BitString::from_u64(value, 4))
                .expect("widths match");
            let _ = estimator.estimate_scalar(&dist_db, &q).expect("populated");
        }
    });

    let speedup = batched_rate / scalar_rate;
    let mut t = Table::new(
        format!("E20 — Algorithm 2 throughput at M = {m} (k = {k}, p = 0.3)"),
        &["path", "records/s", "queries/s (1 conj.)", "speedup"],
    );
    t.row(vec![
        "scalar (per-record encode)".into(),
        f(scalar_rate, 0),
        f(scalar_rate / m as f64, 2),
        "1.00x".into(),
    ]);
    t.row(vec![
        "batched (columnar + template)".into(),
        f(batched_rate, 0),
        f(batched_rate / m as f64, 2),
        format!("{speedup:.2}x"),
    ]);
    t.note(format!(
        "full 2^4-value distribution at M = {dist_m}: one-pass {} records/s \
         vs 16 per-value scans {} records/s ({:.2}x)",
        f(one_pass_rate, 0),
        f(per_value_rate, 0),
        one_pass_rate / per_value_rate,
    ));

    let json = format!(
        "{{\n  \"experiment\": \"e20_throughput\",\n  \"records\": {m},\n  \"width\": {k},\n  \"p\": 0.3,\n  \
         \"scalar_records_per_sec\": {scalar_rate:.1},\n  \"batched_records_per_sec\": {batched_rate:.1},\n  \
         \"batched_speedup\": {speedup:.3},\n  \"scalar_queries_per_sec\": {:.3},\n  \
         \"batched_queries_per_sec\": {:.3},\n  \"distribution_records\": {dist_m},\n  \
         \"distribution_one_pass_records_per_sec\": {one_pass_rate:.1},\n  \
         \"distribution_per_value_records_per_sec\": {per_value_rate:.1}\n}}\n",
        scalar_rate / m as f64,
        batched_rate / m as f64,
    );
    if cfg.quick {
        // Quick mode runs tiny populations; don't clobber the committed
        // full-scale trajectory numbers.
        t.note("quick mode: BENCH_throughput.json not written");
    } else {
        std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
        t.note("wrote BENCH_throughput.json");
    }

    vec![t]
}
