//! E26 — observability overhead: the instrumented estimator scan vs the
//! same scan with metric recording switched off.
//!
//! The obs layer promises to be "free when off and cheap when on": the
//! off-path is one relaxed atomic load per scan, and the on-path adds
//! one `Instant` pair plus one registry lookup *per scan* (never per
//! record), so at 1M records the cost must vanish into the scan itself.
//! This experiment measures both modes over the e25-style 1M-record
//! conjunctive scan, asserts the answers are float-bit-identical with
//! metrics on or off (recording never touches the estimate arithmetic),
//! and emits `BENCH_obs.json` with the measured overhead.
//!
//! In quick mode the identity checks still run and the throughput guard
//! loosens to a catastrophic-regression bound (smoke sizes are noisy).

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile, SketchDb, Sketcher,
    UserId,
};
use std::time::Instant;

const EXP: u64 = 26;

/// Best observed records/s over `reps` runs of `scan`.
fn best_rate(reps: u64, records: usize, mut scan: impl FnMut()) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            scan();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

/// Runs E26.
///
/// # Panics
///
/// Panics if the instrumented estimate differs from the metrics-off
/// estimate in any float bit, if recording was measurably *not* running
/// in the instrumented pass, if the overhead exceeds the acceptance
/// bound, or if `BENCH_obs.json` cannot be written.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(1_000_000);
    let k = 8usize;
    let params = cfg.params(0.3, 10, EXP);
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let db = SketchDb::new();
    let mut rng = cfg.rng(EXP, 0);
    for i in 0..m as u64 {
        let profile = Profile::from_bits(&vec![i % 3 == 0; k]);
        let sketch = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .expect("sketching at ell=10 cannot exhaust");
        db.insert(subset.clone(), UserId(i), sketch);
    }

    let estimator = ConjunctiveEstimator::new(params);
    let value = BitString::from_bits(&vec![true; k]);
    let query = ConjunctiveQuery::new(subset, value).expect("widths match");
    let reps = if cfg.quick { 20 } else { cfg.reps(9) };

    // Instrumented pass: recording on (the process default).
    psketch_obs::set_enabled(true);
    let scans_before = scan_observations();
    let on_estimate = estimator.estimate(&db, &query).expect("populated");
    let on_rate = best_rate(reps, m, || {
        let e = estimator.estimate(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), on_estimate.raw.to_bits());
    });
    let scans_recorded = scan_observations() - scans_before;
    assert!(
        scans_recorded >= reps,
        "instrumented pass recorded {scans_recorded} scans for {reps} reps — \
         metrics were not actually on"
    );

    // Runtime-off pass: one relaxed load per scan, nothing recorded.
    psketch_obs::set_enabled(false);
    let off_estimate = estimator.estimate(&db, &query).expect("populated");
    let off_rate = best_rate(reps, m, || {
        let e = estimator.estimate(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), off_estimate.raw.to_bits());
    });
    psketch_obs::set_enabled(true);

    // Recording must never perturb the arithmetic: same inputs, same
    // float bits, metrics on or off.
    assert_eq!(
        on_estimate.fraction.to_bits(),
        off_estimate.fraction.to_bits(),
        "estimate differs with metrics on vs off"
    );
    assert_eq!(
        on_estimate.raw.to_bits(),
        off_estimate.raw.to_bits(),
        "raw estimate differs with metrics on vs off"
    );

    let overhead = 1.0 - on_rate / off_rate;
    // Acceptance: ≤2% throughput cost at full size. Quick-mode smoke
    // sizes finish scans in microseconds where scheduler noise dwarfs
    // the instrumentation, so the guard loosens to catch only a real
    // per-record cost sneaking in.
    let floor = if cfg.quick { 0.80 } else { 0.98 };
    assert!(
        on_rate >= floor * off_rate,
        "instrumentation overhead {:.1}% exceeds the bound ({} records/s on vs {} off)",
        overhead * 100.0,
        f(on_rate, 0),
        f(off_rate, 0)
    );

    let mut t = Table::new(
        format!("E26 — observability overhead at M = {m} (k = {k}, p = 0.3)"),
        &["mode", "records/s", "relative"],
    );
    t.row(vec![
        "metrics off (runtime switch)".into(),
        f(off_rate, 0),
        "1.000x".into(),
    ]);
    t.row(vec![
        "metrics on (instrumented)".into(),
        f(on_rate, 0),
        format!("{:.3}x", on_rate / off_rate),
    ]);
    t.note(format!(
        "overhead {:.2}% (acceptance: ≤2% at full size) | answers float-bit-identical \
         in both modes | {scans_recorded} scan observations recorded",
        overhead * 100.0
    ));

    let json = format!(
        "{{\n  \"experiment\": \"e26_obs\",\n  \"records\": {m},\n  \"width\": {k},\n  \"p\": 0.3,\n  \
         \"metrics_off_records_per_sec\": {off_rate:.1},\n  \
         \"metrics_on_records_per_sec\": {on_rate:.1},\n  \
         \"overhead_fraction\": {overhead:.5},\n  \
         \"answers_bit_identical\": true,\n  \
         \"scan_observations\": {scans_recorded}\n}}\n"
    );
    if cfg.quick {
        t.note("quick mode: BENCH_obs.json not written");
    } else {
        std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
        t.note("wrote BENCH_obs.json");
    }

    vec![t]
}

/// Total conjunctive-scan observations across every label combination
/// (lane width and thread count vary by host, so sum the family).
fn scan_observations() -> u64 {
    psketch_obs::snapshot()
        .counters
        .iter()
        .filter(|(id, _)| id.family == "psketch_scans_total")
        .map(|&(_, v)| v)
        .sum()
}
