//! E11 — Appendix E: `a + b < 2^r` with linearly many virtual-bit queries.
//!
//! The naive conjunctive expansion needs `2^{r+1} − 1` queries; XOR virtual
//! bits (flip `2p(1−p)`) cut that to `r + 1` product-estimator
//! conjunctions. Bit-level sketches supply the perturbed physical bits.

use crate::common::{publish, Config};
use crate::report::{f, Table};
use psketch_core::{BitString, BitSubset, IntField, Sketcher};
use psketch_data::{DemographicsModel, FieldDistribution};
use psketch_queries::{sum_less_than_pow2, sum_lt_truth, PerturbedBitTable};

const EXP: u64 = 11;
// Appendix E inherits randomized-response-style variance; a small p keeps
// the virtual-bit product estimator usable (documented tradeoff).
const P: f64 = 0.1;

/// Runs E11.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E11 — Appendix E: freq(a + b < 2^r) via XOR virtual bits (k = 6, p = 0.1)",
        &[
            "r",
            "queries used",
            "naive queries",
            "truth",
            "estimate",
            "|err|",
        ],
    );
    let m = cfg.m(60_000);
    let mut model = DemographicsModel::new();
    let a = model.field("a", 6, FieldDistribution::Uniform { lo: 0, hi: 40 });
    let b = model.field("b", 6, FieldDistribution::Uniform { lo: 0, hi: 40 });
    let mut rng = cfg.rng(EXP, 0);
    let pop = model.generate(m, &mut rng);
    let params = cfg.params(P, 10, EXP);
    let sketcher = Sketcher::new(params);

    // Publish single-bit sketches for every bit of both fields.
    let columns: Vec<(BitSubset, BitString)> =
        bit_columns(&a).into_iter().chain(bit_columns(&b)).collect();
    let subsets: Vec<BitSubset> = columns.iter().map(|(s, _)| s.clone()).collect();
    let (db, _) = publish(&pop, &sketcher, &subsets, &mut rng);
    let table =
        PerturbedBitTable::from_sketches(&params, &db, &columns).expect("all columns published");
    let a_cols: Vec<usize> = (0..6).collect();
    let b_cols: Vec<usize> = (6..12).collect();

    for r in [2u32, 3, 4, 5, 6] {
        let est = sum_less_than_pow2(&table, &a_cols, &b_cols, r).expect("non-empty table");
        let truth = pop.true_fraction_by(|p| sum_lt_truth(a.read(p), b.read(p), r));
        t.row(vec![
            r.to_string(),
            est.conjunctions_used.to_string(),
            est.naive_conjunctions.to_string(),
            f(truth, 4),
            f(est.fraction, 4),
            f((est.fraction - truth).abs(), 4),
        ]);
    }
    t.note("r+1 virtual-bit conjunctions replace 2^(r+1)-1 raw ones");
    t.note("unlike E5, this path inherits RR-style variance (hence the small p)");
    vec![t]
}

fn bit_columns(field: &IntField) -> Vec<(BitSubset, BitString)> {
    (1..=field.width())
        .map(|i| (field.bit_subset(i), BitString::from_bits(&[true])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sumlt_estimates_track_truth() {
        let tables = run(&Config::quick());
        assert_eq!(tables[0].rows.len(), 5);
        for row in &tables[0].rows {
            let err: f64 = row[5].parse().unwrap();
            assert!(err < 0.25, "r={}: error {err}", row[0]);
        }
        // Query accounting: r=6 → 7 used vs 127 naive.
        let last = tables[0].rows.last().unwrap();
        assert_eq!(last[1], "7");
        assert_eq!(last[2], "127");
    }
}
