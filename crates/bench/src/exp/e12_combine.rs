//! E12 — Appendix F: combining sketches, and the conditioning of `V`.
//!
//! (a) Accuracy of the combined estimator on unions of `q` sketched
//! subsets; (b) the condition number `κ₁(V)` versus conjunction width,
//! which the paper reports as growing exponentially with base
//! proportional to `1/(p − 1/2)`.

use crate::common::{publish, Config};
use crate::report::{f, sci, Table};
use psketch_core::{
    transition_condition_number, BitString, BitSubset, CombinedEstimator, ConjunctiveQuery,
    Profile, Sketcher,
};
use psketch_data::Population;
use psketch_prf::Prg;
use rand::RngExt;

const EXP: u64 = 12;
const P: f64 = 0.25;

/// Runs E12.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    vec![accuracy_table(cfg), conditioning_table()]
}

/// Plants profiles over `q` disjoint 2-bit subsets such that exactly 30%
/// of users satisfy the all-ones conjunction on the union.
fn planted_population(m: usize, q: usize, rng: &mut Prg) -> Population {
    let width = 2 * q;
    let profiles = (0..m)
        .map(|i| {
            let mut profile = Profile::zeros(width);
            if i % 10 < 3 {
                for j in 0..width {
                    profile.set(j, true);
                }
            } else {
                // Random background, then break one random component.
                for j in 0..width {
                    profile.set(j, rng.random());
                }
                let broken = rng.random_range(0..q);
                profile.set(2 * broken, false);
            }
            profile
        })
        .collect();
    Population::new(profiles)
}

fn accuracy_table(cfg: &Config) -> Table {
    let mut t = Table::new(
        "E12a — Appendix F combined estimator over q sketched subsets (truth = 0.3)",
        &["q subsets", "M", "estimate", "|err|"],
    );
    let m = cfg.m(40_000);
    for &q in &[2usize, 4, 6, 8] {
        let mut rng = cfg.rng(EXP, q as u64);
        let pop = planted_population(m, q, &mut rng);
        let params = cfg.params(P, 10, EXP);
        let sketcher = Sketcher::new(params);
        let subsets: Vec<BitSubset> = (0..q).map(|j| BitSubset::range(2 * j as u32, 2)).collect();
        let (db, _) = publish(&pop, &sketcher, &subsets, &mut rng);
        let estimator = CombinedEstimator::new(params);
        let components: Vec<ConjunctiveQuery> = subsets
            .iter()
            .map(|s| {
                ConjunctiveQuery::new(s.clone(), BitString::from_bits(&[true, true]))
                    .expect("widths")
            })
            .collect();
        let est = estimator.estimate(&db, &components).expect("published");
        let truth = pop.true_fraction_by(|p| (0..2 * q).all(|j| p.get(j)));
        t.row(vec![
            q.to_string(),
            m.to_string(),
            f(est.all_satisfied(), 4),
            f((est.all_satisfied() - truth).abs(), 4),
        ]);
    }
    t.note("error grows with q (the V-system amplifies noise) but stays usable for small unions");
    t
}

fn conditioning_table() -> Table {
    let mut t = Table::new(
        "E12b — condition number κ₁(V) of the Appendix F recovery matrix",
        &[
            "k",
            "p=0.25",
            "p=0.35",
            "p=0.45",
            "growth @0.45 (κ(k)/κ(k-2))",
        ],
    );
    let mut prev_45 = None;
    for &k in &[2usize, 4, 6, 8, 10, 12] {
        let k25 = transition_condition_number(k, 0.25);
        let k35 = transition_condition_number(k, 0.35);
        let k45 = transition_condition_number(k, 0.45);
        let growth = prev_45.map_or_else(String::new, |p: f64| f(k45 / p, 1));
        prev_45 = Some(k45);
        t.row(vec![k.to_string(), sci(k25), sci(k35), sci(k45), growth]);
    }
    t.note("paper (App. F): conditioning degrades exponentially in k, base ∝ 1/(p − 1/2)");
    t.note("per-k growth factor ≈ ((1-2p))^-2: 4x @p=.25, 25x @p=.35, 100x @p=.45 per 2 bits -> see columns");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_accuracy_degrades_gracefully() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let err: f64 = row[3].parse().unwrap();
            assert!(err < 0.25, "q={}: err {err}", row[0]);
        }
    }

    #[test]
    fn conditioning_grows_exponentially_with_k_and_near_half_p() {
        let tables = run(&Config::quick());
        let rows = &tables[1].rows;
        let parse = |s: &str| s.parse::<f64>().unwrap();
        // Within a row, κ grows towards p = 1/2.
        for row in rows {
            assert!(parse(&row[1]) <= parse(&row[2]));
            assert!(parse(&row[2]) <= parse(&row[3]));
        }
        // Down a column, κ grows with k — multiplicatively.
        let first = parse(&rows[0][3]);
        let last = parse(&rows[rows.len() - 1][3]);
        assert!(last > first * 1e4, "κ growth too slow: {first} -> {last}");
    }
}
