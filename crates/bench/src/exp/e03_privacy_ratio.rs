//! E3 — Lemma 3.3: the exact worst-case likelihood ratio vs the bound.
//!
//! The exact `Z^(q)` analysis computes, for every key-space size, the
//! worst likelihood ratio over *all* evaluation tables (adversarial `H`)
//! and all sketch values; the paper bounds it by `((1−p)/p)⁴`.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::theory::privacy_ratio_bound;
use psketch_core::{exact::max_privacy_ratio, BitString, BitSubset, Sketcher, UserId};

const EXP: u64 = 3;

/// Runs E3.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    vec![exact_table(), empirical_table(cfg)]
}

fn exact_table() -> Table {
    let mut t = Table::new(
        "E3a — exact worst-case privacy ratio vs Lemma 3.3 bound ((1-p)/p)^4",
        &["p", "l(bits)", "exact ratio", "bound", "tightness"],
    );
    for &p in &[0.25f64, 0.3, 0.4, 0.45] {
        let r = (p / (1.0 - p)).powi(2);
        for bits in [2u8, 4, 8] {
            let ratio = max_privacy_ratio(1 << bits, r);
            let bound = privacy_ratio_bound(p);
            t.row(vec![
                f(p, 2),
                bits.to_string(),
                f(ratio, 4),
                f(bound, 4),
                f(ratio / bound, 3),
            ]);
        }
    }
    t.note("ratio <= bound always; tightness shows how much of the bound is realized");
    t
}

/// Monte-Carlo cross-check: empirical sketch distributions for two fixed
/// candidate profiles under the *real* `H`, worst observed per-key ratio.
fn empirical_table(cfg: &Config) -> Table {
    let mut t = Table::new(
        "E3b — empirical Pr[s|d']/Pr[s|d''] from the real sketcher",
        &["p", "l(bits)", "worst key ratio", "bound"],
    );
    let trials = cfg.m(60_000) as u64;
    for &p in &[0.3f64, 0.45] {
        for bits in [2u8, 4] {
            let params = cfg.params(p, bits, EXP);
            let sketcher = Sketcher::new(params);
            let subset = BitSubset::range(0, 3);
            let d1 = BitString::from_bits(&[false, false, false]);
            let d2 = BitString::from_bits(&[true, true, true]);
            let id = UserId(7);
            let l = params.key_space() as usize;
            let mut c1 = vec![0u64; l];
            let mut c2 = vec![0u64; l];
            let mut rng = cfg.rng(EXP, u64::from(bits) * 100 + (p * 100.0) as u64);
            for _ in 0..trials {
                let s1 = sketcher
                    .sketch_value_with_stats(id, &subset, &d1, &mut rng)
                    .expect("no exhaustion at these params");
                let s2 = sketcher
                    .sketch_value_with_stats(id, &subset, &d2, &mut rng)
                    .expect("no exhaustion at these params");
                c1[s1.sketch.key as usize] += 1;
                c2[s2.sketch.key as usize] += 1;
            }
            let worst = (0..l)
                .filter(|&s| c1[s] > 0 && c2[s] > 0)
                .map(|s| {
                    let r = c1[s] as f64 / c2[s] as f64;
                    r.max(1.0 / r)
                })
                .fold(1.0, f64::max);
            t.row(vec![
                f(p, 2),
                bits.to_string(),
                f(worst, 3),
                f(privacy_ratio_bound(p), 3),
            ]);
        }
    }
    t.note("empirical worst ratio stays within the bound (sampling noise aside)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ratios_respect_bound() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let ratio: f64 = row[2].parse().unwrap();
            let bound: f64 = row[3].parse().unwrap();
            assert!(ratio <= bound * 1.0001, "{ratio} > {bound}");
        }
        for row in &tables[1].rows {
            let worst: f64 = row[2].parse().unwrap();
            let bound: f64 = row[3].parse().unwrap();
            // Sampling slack.
            assert!(worst <= bound * 1.4, "{worst} vs {bound}");
        }
    }
}
