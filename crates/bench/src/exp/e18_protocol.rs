//! E18 — the deployment protocol end to end, plus non-binary mining.
//!
//! A coordinator announces a plan sized by Lemma 3.1; budget-enforcing
//! user agents participate (or refuse); an analyst mines a categorical
//! attribute's histogram from the public pool. This is the §1 scenario
//! ("privacy in the hands of individuals") as a running system.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{IntField, Profile, UserId};
use psketch_prf::GlobalKey;
use psketch_protocol::{AnnouncementBuilder, Coordinator, UserAgent};
use psketch_queries::{CategoricalAttribute, CategoricalMiner};
use rand::RngExt;

const EXP: u64 = 18;
const P: f64 = 0.3;

/// Runs E18.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(40_000) as u64;
    let mut rng = cfg.rng(EXP, 0);

    // A 3-bit categorical attribute (6 levels) with a skewed law.
    let field = IntField::new(0, 3);
    let attr = CategoricalAttribute::new(field, 6);
    let weights = [0.30f64, 0.25, 0.20, 0.12, 0.08, 0.05];

    let announcement = AnnouncementBuilder::new(2006, P, m, 1e-6)
        .global_key(*GlobalKey::from_seed(cfg.seed ^ EXP).as_bytes())
        .subset(attr.required_subset())
        .build()
        .expect("valid plan");
    let coordinator = Coordinator::new(announcement.clone());

    // Users with heterogeneous budgets: 10% are too privacy-conscious to
    // participate at this p.
    let mut truth = [0u64; 6];
    let mut refusals = 0u64;
    for i in 0..m {
        let mut u = rng.random::<f64>();
        let mut level = 5u64;
        for (j, &w) in weights.iter().enumerate() {
            if u < w {
                level = j as u64;
                break;
            }
            u -= w;
        }
        let mut profile = Profile::zeros(3);
        field.write(&mut profile, level);
        let budget = if i % 10 == 0 { 1.0 } else { 100.0 };
        let mut agent = UserAgent::new(UserId(i), profile, P, budget);
        if !agent.can_participate(&announcement) {
            refusals += 1;
            continue;
        }
        truth[level as usize] += 1;
        let submission = agent
            .participate(&announcement, &mut rng)
            .expect("in budget");
        coordinator.accept(&submission).expect("well-formed");
    }

    let mut t = Table::new(
        "E18a — protocol round: participation and pool integrity",
        &["metric", "value"],
    );
    t.row(vec!["announced subsets".into(), "1".into()]);
    t.row(vec![
        "sketch bits (Lemma 3.1)".into(),
        announcement.sketch_bits.to_string(),
    ]);
    t.row(vec![
        "eps per participant".into(),
        f(announcement.epsilon_cost(), 3),
    ]);
    t.row(vec![
        "participants".into(),
        coordinator.participants().to_string(),
    ]);
    t.row(vec!["budget refusals".into(), refusals.to_string()]);
    t.row(vec![
        "rejected submissions".into(),
        coordinator.rejected().to_string(),
    ]);
    t.note("refusals are user-side: agents enforce Corollary 3.4 themselves");

    // The analyst mines the categorical histogram from the pool.
    let params = announcement.validate().expect("validated at build");
    let miner = CategoricalMiner::new(params);
    let hist = miner
        .histogram(coordinator.pool(), &attr)
        .expect("pool populated");
    let n_participants: u64 = truth.iter().sum();
    let mut t2 = Table::new(
        "E18b — categorical histogram mined from the public pool (6 levels)",
        &["level", "truth", "estimate", "|err|"],
    );
    for (level, &count) in truth.iter().enumerate() {
        let tr = count as f64 / n_participants as f64;
        let est = hist.frequencies[level];
        t2.row(vec![
            level.to_string(),
            f(tr, 4),
            f(est, 4),
            f((est - tr).abs(), 4),
        ]);
    }
    let truth_dist: Vec<f64> = truth
        .iter()
        .map(|&c| c as f64 / n_participants as f64)
        .collect();
    t2.note(format!(
        "total variation to truth: {:.4}; mode recovered: {}",
        hist.total_variation(&truth_dist),
        hist.mode()
    ));
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_round_mines_the_histogram() {
        let tables = run(&Config::quick());
        // Refusals happened (the 10% low-budget cohort) and nothing bogus
        // got in.
        let metric = |name: &str| -> f64 {
            tables[0].rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(metric("budget refusals") > 0.0);
        assert_eq!(metric("rejected submissions"), 0.0);
        assert!(metric("participants") > 0.0);
        // Histogram errors are small.
        for row in &tables[1].rows {
            let err: f64 = row[3].parse().unwrap();
            assert!(err < 0.07, "level {}: err {err}", row[0]);
        }
    }
}
