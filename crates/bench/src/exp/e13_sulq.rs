//! E13 — Appendix A: input perturbation vs output perturbation.
//!
//! The output-perturbation (SULQ-style) server answers with `√M`-scale
//! noise but refuses after its budget of `min(E², M)` queries; the
//! sketch-based server answers an *unlimited* stream at `O(√M)` noise.

use crate::common::{publish, Config};
use crate::report::{f, Table};
use psketch_baselines::{SulqServer, Tier, TieredServer};
use psketch_core::{BitString, ConjunctiveEstimator, ConjunctiveQuery, Sketcher};
use psketch_data::PlantedConjunction;

const EXP: u64 = 13;
const P: f64 = 0.3;

/// Runs E13.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E13 — Appendix A: output perturbation (budgeted) vs sketches (unlimited)",
        &["mode", "M", "noise std (counts)", "answered", "refused"],
    );
    let m = cfg.m(10_000);
    let mut rng = cfg.rng(EXP, 0);
    let gen = PlantedConjunction::all_ones(8, 4, 0.4);
    let pop = gen.generate(m, &mut rng);
    let query_stream = 2 * m; // more queries than the SULQ budget allows

    // Output perturbation: noise E = sqrt(M), budget min(E^2, M) = M...
    // use E = M^(1/4) style small budget to make refusal visible too:
    // follow the paper exactly with E = sqrt(M) => budget = M.
    let noise_std = (m as f64).sqrt();
    let budget = SulqServer::default_budget(noise_std, m);
    let profiles: Vec<_> = (0..pop.len()).map(|i| pop.profile(i).clone()).collect();
    let mut server = SulqServer::new(profiles, noise_std, budget).expect("non-empty");
    let truth_count = pop.true_fraction(&gen.subset, &gen.value) * m as f64;
    let mut sulq_errs = Vec::new();
    let mut refused = 0u64;
    for _ in 0..query_stream {
        match server.answer_count(&gen.subset, &gen.value, &mut rng) {
            Ok(ans) => sulq_errs.push(ans - truth_count),
            Err(_) => refused += 1,
        }
    }
    let sulq_std = crate::report::rms(&sulq_errs);
    t.row(vec![
        "output perturbation".into(),
        m.to_string(),
        f(sulq_std, 1),
        server.answered().to_string(),
        refused.to_string(),
    ]);

    // Input perturbation: publish sketches once, answer the same stream.
    let params = cfg.params(P, 10, EXP);
    let sketcher = Sketcher::new(params);
    let (db, _) = publish(&pop, &sketcher, std::slice::from_ref(&gen.subset), &mut rng);
    let estimator = ConjunctiveEstimator::new(params);
    // The sketch answer is deterministic given the published data; its
    // "noise" is the estimation error, measured across the 2^k value
    // queries the single sketch supports.
    let mut sketch_errs = Vec::new();
    let mut answered = 0u64;
    for _ in 0..(query_stream / 16).max(1) {
        for v in 0..16u64 {
            let value = BitString::from_u64(v, 4);
            let truth = pop.true_fraction(&gen.subset, &value) * m as f64;
            let q = ConjunctiveQuery::new(gen.subset.clone(), value).expect("widths");
            let est = estimator.estimate(&db, &q).expect("published").fraction * m as f64;
            sketch_errs.push(est - truth);
            answered += 1;
        }
    }
    let sketch_std = crate::report::rms(&sketch_errs);
    t.row(vec![
        "sketches (input pert.)".into(),
        m.to_string(),
        f(sketch_std, 1),
        answered.to_string(),
        "0".into(),
    ]);
    t.note("both noise levels are O(sqrt(M)); only the output-perturbation server refuses queries");
    t.note(format!(
        "sketch noise / sqrt(M) = {:.2}; SULQ noise / sqrt(M) = {:.2}",
        sketch_std / (m as f64).sqrt(),
        sulq_std / (m as f64).sqrt()
    ));

    vec![t, tiered_table(cfg)]
}

/// Appendix A's explicit hybrid: "offer two types of access (for example
/// paid and free)" — one server, the paid tier degrading into the free
/// sketch tier when its budget runs out.
fn tiered_table(cfg: &Config) -> Table {
    let mut t = Table::new(
        "E13b — Appendix A hybrid server: paid tier degrades to free tier",
        &["phase", "queries", "tier", "RMS error (counts)"],
    );
    let m = cfg.m(4_000);
    let mut rng = cfg.rng(EXP, 99);
    let gen = PlantedConjunction::all_ones(4, 2, 0.3);
    let pop = gen.generate(m, &mut rng);
    let profiles: Vec<_> = (0..pop.len()).map(|i| pop.profile(i).clone()).collect();
    let params = cfg.params(P, 10, EXP ^ 1);
    let mut server = TieredServer::new(
        profiles,
        params,
        std::slice::from_ref(&gen.subset),
        &mut rng,
    )
    .expect("non-empty population");
    let truth = pop.true_fraction(&gen.subset, &gen.value) * m as f64;
    let budget = server.paid_remaining();
    let mut record_phase =
        |label: &str, n: u64, server: &mut TieredServer, rng: &mut psketch_prf::Prg| {
            let mut errs = Vec::new();
            let mut tier = Tier::Paid;
            for _ in 0..n {
                let ans = server
                    .answer_count(&gen.subset, &gen.value, rng)
                    .expect("sketched subset");
                errs.push(ans.count - truth);
                tier = ans.tier;
            }
            t.row(vec![
                label.to_string(),
                n.to_string(),
                format!("{tier:?}"),
                f(crate::report::rms(&errs), 1),
            ]);
        };
    record_phase("within budget", budget, &mut server, &mut rng);
    record_phase("after budget", (m / 2) as u64, &mut server, &mut rng);
    t.note("one server, two tiers: noise stays O(sqrt(M)) across the hand-off, availability never ends");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sulq_refuses_sketches_do_not() {
        let tables = run(&Config::quick());
        let sulq = &tables[0].rows[0];
        let sketch = &tables[0].rows[1];
        let refused: u64 = sulq[4].parse().unwrap();
        assert!(refused > 0, "SULQ must exhaust its budget");
        assert_eq!(sketch[4], "0", "sketches answer everything");
        // Both noise levels are O(sqrt(M)): within 10x of sqrt(M).
        let m: f64 = sulq[1].parse().unwrap();
        for row in [sulq, sketch] {
            let noise: f64 = row[2].parse().unwrap();
            assert!(noise < 10.0 * m.sqrt(), "noise {noise} not O(sqrt(M))");
        }
    }
}
