//! E4 — Corollary 3.4: privacy budgets across multiple sketch releases.
//!
//! Releasing `l` sketches costs ratio `((1−p)/p)^{4l}`; the paper's
//! sufficient bias is `p = 1/2 − ε/(16l)` (first order in ε), this repo's
//! accountant uses the exact inversion `p = 1/(1 + (1+ε)^{1/4l})`.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::theory::{epsilon_for, p_for_epsilon, privacy_ratio_bound_multi};
use psketch_core::PrivacyAccountant;

/// Runs E4.
#[must_use]
pub fn run(_cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E4 — Corollary 3.4: bias needed for an ε budget over l sketches",
        &[
            "eps",
            "l",
            "paper p",
            "eps @ paper p",
            "exact p",
            "eps @ exact p",
        ],
    );
    for &eps in &[0.1f64, 0.5, 1.0] {
        for &l in &[1u32, 4, 16, 64] {
            let paper_p = p_for_epsilon(eps, l);
            let acct = PrivacyAccountant::plan(eps, l);
            t.row(vec![
                f(eps, 2),
                l.to_string(),
                f(paper_p, 6),
                f(epsilon_for(paper_p, l), 4),
                f(acct.p(), 6),
                f(epsilon_for(acct.p(), l), 4),
            ]);
        }
    }
    t.note("paper p overshoots the budget by the first-order gap (e^eps - 1 vs eps); exact p lands on it");

    let mut t2 = Table::new(
        "E4b — multi-sketch ratio composition ((1-p)/p)^(4l)",
        &["p", "l", "ratio"],
    );
    for &p in &[0.45f64, 0.49] {
        for &l in &[1u32, 2, 4, 8] {
            t2.row(vec![
                f(p, 2),
                l.to_string(),
                f(privacy_ratio_bound_multi(p, l), 4),
            ]);
        }
    }
    t2.note("ratios compose multiplicatively: privacy degrades exponentially in releases");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_p_meets_budget_paper_p_overshoots_slightly() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let eps: f64 = row[0].parse().unwrap();
            let at_paper: f64 = row[3].parse().unwrap();
            let at_exact: f64 = row[5].parse().unwrap();
            assert!(
                at_exact <= eps * 1.001,
                "exact p overspends: {at_exact} > {eps}"
            );
            assert!(
                at_paper >= at_exact - 1e-9,
                "paper p should spend at least as much"
            );
        }
    }
}
