//! E9 — §4.1 interval queries: "How many users have salary less than c?"
//!
//! The compilation uses popcount(c) prefix conjunctions; the error stays
//! `O(1/√M)` regardless of how many terms the threshold needs.

use crate::common::{publish, Config};
use crate::report::{f, Table};
use psketch_core::Sketcher;
use psketch_data::DemographicsModel;
use psketch_queries::{interval_required_subsets, less_equal_query, QueryEngine};

const EXP: u64 = 9;
const P: f64 = 0.25;

/// Runs E9.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E9 — interval queries freq(salary <= c) via prefix conjunctions",
        &["c", "queries (popcount+1)", "truth", "estimate", "|err|"],
    );
    let m = cfg.m(50_000);
    let (model, salary, _age) = DemographicsModel::salary_age();
    let mut rng = cfg.rng(EXP, 0);
    let pop = model.generate(m, &mut rng);
    let params = cfg.params(P, 10, EXP);
    let sketcher = Sketcher::new(params);
    let engine = QueryEngine::new(params);
    let subsets = interval_required_subsets(&salary);
    let (db, _) = publish(&pop, &sketcher, &subsets, &mut rng);

    for &c in &[15u64, 32, 63, 100, 170, 255] {
        let lq = less_equal_query(&salary, c);
        let ans = engine.linear(&db, &lq).expect("prefixes published");
        let truth = pop.true_fraction_by(|p| salary.read(p) <= c);
        t.row(vec![
            c.to_string(),
            ans.queries_used.to_string(),
            f(truth, 4),
            f(ans.value, 4),
            f((ans.value - truth).abs(), 4),
        ]);
    }
    t.note("8 prefix subsets sketched once answer every threshold on the field");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_estimates_track_truth() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let err: f64 = row[4].parse().unwrap();
            assert!(err < 0.12, "c={}: error {err}", row[0]);
        }
        // Query count = popcount(c) + 1 (the <= equality term).
        let row_63 = &tables[0].rows[2];
        assert_eq!(row_63[1], "7"); // 63 = 0b111111 → 6 + 1
    }
}
