//! E8 — §4.1 means and inner products through sketches.
//!
//! Mean salary via k single-bit queries; mean inner product `E[salary·age]`
//! via k² two-bit queries on pair subsets.

use crate::common::{publish, Config};
use crate::report::{f, Table};
use psketch_core::{BitSubset, Sketcher};
use psketch_data::DemographicsModel;
use psketch_queries::{inner_product_query, mean_query, moment_query, QueryEngine};

const EXP: u64 = 8;
const P: f64 = 0.25;

/// Runs E8.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E8 — §4.1 means and inner products (salary: 8-bit, age: 7-bit)",
        &["quantity", "M", "queries", "truth", "estimate", "rel. err"],
    );
    let m = cfg.m(50_000);
    let (model, salary, age) = DemographicsModel::salary_age();
    let mut rng = cfg.rng(EXP, 0);
    let pop = model.generate(m, &mut rng);
    let params = cfg.params(P, 10, EXP);
    let sketcher = Sketcher::new(params);
    let engine = QueryEngine::new(params);

    // Subsets: every single bit of both fields, plus every (salary, age)
    // bit pair for the inner product.
    let mean_salary_q = mean_query(&salary);
    let mean_age_q = mean_query(&age);
    let product_q = inner_product_query(&salary, &age);
    let second_moment_q = moment_query(&salary, 2);
    let mut subsets: Vec<BitSubset> = Vec::new();
    subsets.extend(mean_salary_q.required_subsets());
    subsets.extend(mean_age_q.required_subsets());
    subsets.extend(product_q.required_subsets());
    subsets.extend(second_moment_q.required_subsets());
    subsets.sort();
    subsets.dedup();
    let (db, failures) = publish(&pop, &sketcher, &subsets, &mut rng);
    assert_eq!(failures, 0, "no failures expected at l=10");

    let mut record = |name: &str, truth: f64, lq: &psketch_queries::LinearQuery| {
        let ans = engine.linear(&db, lq).expect("all subsets published");
        let rel = (ans.value - truth).abs() / truth.abs().max(1e-9);
        t.row(vec![
            name.to_string(),
            m.to_string(),
            ans.queries_used.to_string(),
            f(truth, 2),
            f(ans.value, 2),
            f(rel, 4),
        ]);
    };
    record("mean(salary)", pop.true_mean(&salary), &mean_salary_q);
    record("mean(age)", pop.true_mean(&age), &mean_age_q);
    record(
        "E[salary*age]",
        pop.true_mean_product(&salary, &age),
        &product_q,
    );
    let truth_m2 = (0..pop.len())
        .map(|i| {
            let v = salary.read(pop.profile(i)) as f64;
            v * v
        })
        .sum::<f64>()
        / pop.len() as f64;
    record("E[salary^2]", truth_m2, &second_moment_q);
    t.note("k single-bit queries per mean; k_a*k_b = 56 two-bit queries for the product");
    t.note("second moment: C(8,1)+C(8,2) = 36 conjunctions of width <= 2 (§1's 'higher moments')");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_close_in_quick_mode() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let rel: f64 = row[5].parse().unwrap();
            // Quick mode uses few users; allow a loose but meaningful band.
            assert!(rel < 0.35, "{}: relative error {rel}", row[0]);
        }
        // Query counts are as the paper prescribes.
        assert_eq!(tables[0].rows[0][2], "8");
        assert_eq!(tables[0].rows[1][2], "7");
        assert_eq!(tables[0].rows[2][2], "56");
        assert_eq!(tables[0].rows[3][2], "36");
    }
}
