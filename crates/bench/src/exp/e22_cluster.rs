//! E22 — sharded cluster throughput: scatter-gather over loopback TCP.
//!
//! The paper's Lemma 4.1 error improves with the population `M`; serving
//! a large `M` means sharding the pool. This experiment measures the
//! `psketch-cluster` stack — shard-map routing, parallel per-shard
//! ingest, scatter-gather partial-count queries — at 1, 2 and 4 shards
//! over loopback TCP, against the e21 single-node numbers as the
//! baseline shape:
//!
//! * ingest submissions/second through one parallel connection per
//!   shard (each shard appends to its own pool, so ingest scales with
//!   shard count until the loopback stack saturates);
//! * conjunctive and distribution queries/second through the router
//!   (each query is one partial-counts round trip per shard; per-shard
//!   scan work shrinks as `1/N`);
//! * **bit-identical** agreement between every cluster answer and the
//!   single-node oracle over the same records, at every shard count.
//!
//! Emits `BENCH_cluster.json` so the scaling trajectory accumulates
//! across revisions.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_cluster::{parallel_ingest, Router, RouterConfig, ShardMap};
use psketch_core::{BitString, BitSubset, ConjunctiveEstimator, Profile, UserId};
use psketch_prf::GlobalKey;
use psketch_protocol::{
    Announcement, AnnouncementBuilder, Coordinator, ShardIdentity, Submission, UserAgent,
};
use psketch_server::{Server, ServerConfig};
use std::time::{Duration, Instant};

const EXP: u64 = 22;
const TIMEOUT: Duration = Duration::from_secs(30);

fn announcement(cfg: &Config, m: usize) -> Announcement {
    AnnouncementBuilder::new(EXP, 0.3, m as u64, 1e-6)
        .global_key(*GlobalKey::from_seed(cfg.seed ^ EXP).as_bytes())
        .subset(BitSubset::single(0))
        .subset(BitSubset::single(1))
        .subset(BitSubset::range(0, 2))
        .build()
        .expect("static announcement is valid")
}

fn make_submissions(cfg: &Config, ann: &Announcement, m: usize) -> Vec<Submission> {
    let mut rng = cfg.rng(EXP, 0);
    (0..m as u64)
        .map(|i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, f64::MAX);
            agent
                .participate(ann, &mut rng)
                .expect("participation cannot fail at these parameters")
        })
        .collect()
}

struct ShardRun {
    shards: u32,
    ingest_per_sec: f64,
    conj_qps: f64,
    dist_qps: f64,
}

/// Runs one shard-count configuration and verifies bit-identity against
/// the oracle.
fn run_shards(
    ann: &Announcement,
    subs: &[Submission],
    oracle: &Coordinator,
    estimator: &ConjunctiveEstimator,
    shards: u32,
    reps: u64,
) -> ShardRun {
    let servers: Vec<Server> = (0..shards)
        .map(|shard_id| {
            Server::start(
                "127.0.0.1:0",
                ann.clone(),
                ServerConfig {
                    workers: 4,
                    shard: Some(ShardIdentity {
                        shard_id,
                        shard_count: shards,
                    }),
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback")
        })
        .collect();
    let map = ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string()))
        .expect("non-empty map");

    // --- Parallel ingest, one connection per shard. ---
    let start = Instant::now();
    let report = parallel_ingest(&map, subs, TIMEOUT, 500);
    let ingest_per_sec = subs.len() as f64 / start.elapsed().as_secs_f64();
    let (accepted, rejected) = report.totals().expect("cluster ingest");
    assert_eq!(accepted, subs.len() as u64, "every submission lands");
    assert_eq!(rejected, 0);

    // --- Scatter-gather query rates through a warm router. ---
    let mut router = Router::new(
        map,
        RouterConfig {
            timeout: TIMEOUT,
            ..RouterConfig::default()
        },
    )
    .expect("valid map");
    let pair = BitSubset::range(0, 2);
    let value = BitString::from_bits(&[true, true]);
    let start = Instant::now();
    for _ in 0..reps {
        let _ = router
            .conjunctive(pair.clone(), value.clone())
            .expect("conjunctive");
    }
    let conj_qps = reps as f64 / start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..reps {
        let _ = router.distribution(pair.clone()).expect("distribution");
    }
    let dist_qps = reps as f64 / start.elapsed().as_secs_f64();

    // --- Bit-identity against the single-node oracle. ---
    for v in 0..4u64 {
        let value = BitString::from_u64(v, 2);
        let clustered = router
            .conjunctive(pair.clone(), value.clone())
            .expect("conjunctive");
        assert!(clustered.coverage.is_complete());
        let q = psketch_core::ConjunctiveQuery::new(pair.clone(), value).expect("widths match");
        let local = estimator.estimate(oracle.pool(), &q).expect("oracle");
        assert_eq!(
            clustered.estimate.fraction.to_bits(),
            local.fraction.to_bits(),
            "cluster at {shards} shards diverged from the single-node oracle"
        );
    }
    let clustered = router.distribution(pair.clone()).expect("distribution");
    let local = estimator
        .estimate_distribution(oracle.pool(), &pair)
        .expect("oracle distribution");
    for (c, l) in clustered.estimates.iter().zip(&local) {
        assert_eq!(c.fraction.to_bits(), l.fraction.to_bits());
    }

    for server in servers {
        server.shutdown();
    }
    ShardRun {
        shards,
        ingest_per_sec,
        conj_qps,
        dist_qps,
    }
}

/// Runs E22.
///
/// # Panics
///
/// Panics if the loopback cluster misbehaves, an answer diverges from
/// the single-node oracle, or the output file cannot be written.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(40_000);
    let records = m * 3;
    let reps = cfg.reps(200);
    let ann = announcement(cfg, m);
    let subs = make_submissions(cfg, &ann, m);

    // The single-node oracle every configuration must match.
    let oracle = Coordinator::new(ann.clone());
    oracle.accept_batch(&subs);
    let estimator = ConjunctiveEstimator::new(ann.validate().expect("announcement validates"));

    let runs: Vec<ShardRun> = [1u32, 2, 4]
        .iter()
        .map(|&shards| run_shards(&ann, &subs, &oracle, &estimator, shards, reps))
        .collect();

    let mut t = Table::new(
        format!(
            "E22 — sharded cluster throughput ({m} users x 3 subsets = {records} records, \
             scatter-gather router)"
        ),
        &[
            "shards",
            "ingest (subs/s)",
            "conjunctive q/s",
            "distribution q/s",
        ],
    );
    for run in &runs {
        t.row(vec![
            run.shards.to_string(),
            f(run.ingest_per_sec, 0),
            f(run.conj_qps, 1),
            f(run.dist_qps, 1),
        ]);
    }
    t.note("every answer at every shard count verified bit-identical to the single-node oracle");
    t.note("ingest uses one parallel connection per shard; queries one scatter round per query");

    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"submissions_per_sec\": {:.1}, \
                 \"conjunctive_queries_per_sec\": {:.1}, \
                 \"distribution_queries_per_sec\": {:.1}}}",
                r.shards, r.ingest_per_sec, r.conj_qps, r.dist_qps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e22_cluster\",\n  \"users\": {m},\n  \"records\": {records},\n  \
         \"baseline\": \"BENCH_service.json (e21 single node)\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if cfg.quick {
        t.note("quick mode: BENCH_cluster.json not written");
    } else {
        std::fs::write("BENCH_cluster.json", json).expect("write BENCH_cluster.json");
        t.note("wrote BENCH_cluster.json");
    }

    vec![t]
}
