//! E2 — Lemma 3.2: the published sketch biases `H` correctly.
//!
//! After Algorithm 1, `H(id, B, d_B, s) = 1` with probability `1 − p` on
//! the user's true value and `p` on every other value, independent of the
//! subset width.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{BitString, BitSubset, Profile, Sketcher, UserId};
use psketch_prf::PrfKind;

const EXP: u64 = 2;

/// Runs E2.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E2 — Lemma 3.2: Pr[H = 1] on true vs other values",
        &["prf", "k", "p", "on true (want 1-p)", "on other (want p)"],
    );
    let m = cfg.m(30_000) as u64;
    for kind in [PrfKind::Sip, PrfKind::ChaCha] {
        for &k in &[1usize, 4, 8, 16] {
            let p = 0.3;
            let params = psketch_core::SketchParams::new(
                p,
                10,
                psketch_prf::GlobalKey::from_seed(cfg.seed ^ EXP),
                kind,
            )
            .expect("valid");
            let sketcher = Sketcher::new(params);
            let subset = BitSubset::range(0, k as u32);
            let profile = Profile::from_bits(&vec![true; k]);
            let mut other_bits = vec![true; k];
            other_bits[0] = false;
            let other = BitString::from_bits(&other_bits);
            let mut rng = cfg.rng(EXP, k as u64);
            let mut hits_true = 0u64;
            let mut hits_other = 0u64;
            for i in 0..m {
                let id = UserId(i);
                let s = sketcher
                    .sketch(id, &profile, &subset, &mut rng)
                    .expect("10-bit space cannot exhaust at p=0.3");
                let proj = profile.project(&subset);
                hits_true += u64::from(sketcher.h().eval(id, &subset, &proj, s.key));
                hits_other += u64::from(sketcher.h().eval(id, &subset, &other, s.key));
            }
            t.row(vec![
                format!("{kind:?}"),
                k.to_string(),
                f(p, 2),
                f(hits_true as f64 / m as f64, 4),
                f(hits_other as f64 / m as f64, 4),
            ]);
        }
    }
    t.note("both PRF instantiations agree with the lemma; width k has no effect");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_lemma_in_quick_mode() {
        let tables = run(&Config::quick());
        assert_eq!(tables[0].rows.len(), 8);
        for row in &tables[0].rows {
            let on_true: f64 = row[3].parse().unwrap();
            let on_other: f64 = row[4].parse().unwrap();
            assert!((on_true - 0.7).abs() < 0.05, "on-true {on_true}");
            assert!((on_other - 0.3).abs() < 0.05, "on-other {on_other}");
        }
    }
}
