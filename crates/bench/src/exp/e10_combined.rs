//! E10 — §4.1 combined constraints and conditional averages.
//!
//! `freq(salary = c ∧ age < d)` via per-set-bit merged conjunctions, and
//! the conditional mean `avg(age | salary ≤ c)` as a ratio of two linear
//! queries, exactly as the paper prescribes.

use crate::common::{publish, Config};
use crate::report::{f, Table};
use psketch_core::{BitSubset, Sketcher};
use psketch_data::DemographicsModel;
use psketch_queries::{
    conditional_sum_query_inclusive, eq_and_less_than, less_equal_query, QueryEngine,
};

const EXP: u64 = 10;
const P: f64 = 0.25;

/// Runs E10.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(60_000);
    let (model, salary, age) = DemographicsModel::salary_age();
    let mut rng = cfg.rng(EXP, 0);
    let pop = model.generate(m, &mut rng);
    let params = cfg.params(P, 10, EXP);
    let sketcher = Sketcher::new(params);
    let engine = QueryEngine::new(params);

    // Queries under test.
    let combos: Vec<(u64, u64)> = vec![(10, 64), (25, 100), (3, 32)];
    let cond_cs: Vec<u64> = vec![20, 60, 120];
    let mut subsets: Vec<BitSubset> = Vec::new();
    for &(c, d) in &combos {
        subsets.extend(eq_and_less_than(&salary, c, &age, d).required_subsets());
    }
    for &c in &cond_cs {
        subsets.extend(conditional_sum_query_inclusive(&salary, c, &age).required_subsets());
        subsets.extend(less_equal_query(&salary, c).required_subsets());
    }
    subsets.sort();
    subsets.dedup();
    let (db, _) = publish(&pop, &sketcher, &subsets, &mut rng);

    let mut t = Table::new(
        "E10a — freq(salary = c && age < d)",
        &["c", "d", "queries", "truth", "estimate", "|err|"],
    );
    for &(c, d) in &combos {
        let lq = eq_and_less_than(&salary, c, &age, d);
        let ans = engine.linear(&db, &lq).expect("subsets published");
        let truth = pop.true_fraction_by(|p| salary.read(p) == c && age.read(p) < d);
        t.row(vec![
            c.to_string(),
            d.to_string(),
            lq.num_queries().to_string(),
            f(truth, 4),
            f(ans.value, 4),
            f((ans.value - truth).abs(), 4),
        ]);
    }
    t.note("query count = popcount(d): one merged conjunction per set bit");

    let mut t2 = Table::new(
        "E10b — conditional mean avg(age | salary <= c) as a ratio query",
        &["c", "truth", "estimate", "|err|"],
    );
    for &c in &cond_cs {
        let num = conditional_sum_query_inclusive(&salary, c, &age);
        let den = less_equal_query(&salary, c);
        let est = engine
            .ratio(&db, &num, &den)
            .expect("subsets published")
            .unwrap_or(f64::NAN);
        let truth = pop
            .true_conditional_mean(&salary, c, &age)
            .unwrap_or(f64::NAN);
        t2.row(vec![
            c.to_string(),
            f(truth, 2),
            f(est, 2),
            f((est - truth).abs(), 2),
        ]);
    }
    t2.note("numerator: sum-of-bits slices within the interval event; denominator: E9 interval");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_estimates_track_truth() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let err: f64 = row[5].parse().unwrap();
            assert!(err < 0.1, "combined error {err}");
        }
        for row in &tables[1].rows {
            let truth: f64 = row[1].parse().unwrap();
            let err: f64 = row[3].parse().unwrap();
            // Conditional means on ~100-point scales: allow coarse noise in
            // quick mode, but stay in the right region.
            assert!(err < truth.abs() * 0.8 + 25.0, "conditional error {err}");
        }
    }
}
