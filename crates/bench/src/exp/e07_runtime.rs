//! E7 — §3 running-time analysis: Algorithm 1 iteration counts.
//!
//! Per iteration the algorithm stops with probability `p + (1−p)·r =
//! p/(1−p)`, so typical runs take `(1−p)/p` iterations; the paper's
//! worst-case expected bound (all keys evaluating 0) is `((1−p)/p)²`.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::theory::{expected_iterations, expected_iterations_worst_case};
use psketch_core::{BitString, BitSubset, Sketcher, UserId};

const EXP: u64 = 7;

/// Runs E7.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E7 — Algorithm 1 iterations: measured vs theory",
        &[
            "p",
            "mean measured",
            "theory (1-p)/p",
            "p99",
            "max",
            "worst-case bound",
        ],
    );
    let trials = cfg.m(50_000) as u64;
    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);
    for &p in &[0.1f64, 0.25, 0.4, 0.45] {
        let params = cfg.params(p, 12, EXP);
        let sketcher = Sketcher::new(params);
        let mut rng = cfg.rng(EXP, (p * 1000.0) as u64);
        let mut counts: Vec<u64> = Vec::with_capacity(trials as usize);
        for i in 0..trials {
            let run = sketcher
                .sketch_value_with_stats(UserId(i), &subset, &value, &mut rng)
                .expect("12-bit space cannot exhaust here");
            counts.push(run.iterations);
        }
        counts.sort_unstable();
        let mean = counts.iter().sum::<u64>() as f64 / trials as f64;
        let p99 = counts[(trials as usize * 99) / 100];
        let max = *counts.last().expect("non-empty");
        t.row(vec![
            f(p, 2),
            f(mean, 3),
            f(expected_iterations(p), 3),
            p99.to_string(),
            max.to_string(),
            f(expected_iterations_worst_case(p), 2),
        ]);
    }
    t.note("measured mean tracks (1-p)/p; the paper's ((1-p)/p)^2 bound covers the all-zero worst case");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_mean_matches_theory() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let mean: f64 = row[1].parse().unwrap();
            let theory: f64 = row[2].parse().unwrap();
            assert!(
                (mean - theory).abs() < 0.2 * theory + 0.05,
                "mean {mean} vs theory {theory}"
            );
            let worst: f64 = row[5].parse().unwrap();
            assert!(mean <= worst + 1e-9);
        }
    }
}
