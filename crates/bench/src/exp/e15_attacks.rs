//! E15 — the attack gallery: hashing and retention replacement fall,
//! sketches stand.
//!
//! Measures attacker success probability (posterior mass on the truth,
//! or exact-recovery rate) under identical partial knowledge.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_baselines::{
    dictionary_attack, retention_posterior, sketch_posterior, HashPublisher, RetentionChannel,
};
use psketch_core::theory::privacy_ratio_bound;
use psketch_core::{BitString, BitSubset, Profile, Sketcher, UserId};
use psketch_prf::GlobalKey;

const EXP: u64 = 15;

/// Runs E15.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E15 — attacker success under partial knowledge",
        &["scheme", "attack", "prior", "attacker posterior on truth"],
    );
    let trials = cfg.reps(300);

    // 1. Hashing vs a 100-candidate dictionary.
    let publisher = HashPublisher::new(&GlobalKey::from_seed(cfg.seed ^ EXP));
    let subset = BitSubset::range(0, 7);
    let mut exact_hits = 0u64;
    for i in 0..trials {
        let secret = BitString::from_u64(i % 100, 7);
        let mut profile = Profile::zeros(7);
        for (j, b) in secret.iter().enumerate() {
            profile.set(j, b);
        }
        let published = publisher.publish(UserId(i), &subset, &profile);
        let candidates: Vec<BitString> = (0..100u64).map(|v| BitString::from_u64(v, 7)).collect();
        let recovered = dictionary_attack(&publisher, UserId(i), &subset, published, &candidates);
        if recovered == vec![secret] {
            exact_hits += 1;
        }
    }
    t.row(vec![
        "hashing (§3 strawman)".into(),
        "dictionary, 100 candidates".into(),
        f(0.01, 2),
        f(exact_hits as f64 / trials as f64, 3),
    ]);

    // 2. Retention replacement vs the intro's two-candidate attack.
    let channel = RetentionChannel::new(0.5, 10).expect("valid channel");
    let cand_a = vec![1u64, 1, 2, 2, 3, 3];
    let cand_b = vec![4u64, 4, 5, 5, 6, 6];
    let mut rng = cfg.rng(EXP, 1);
    let mut mass = 0.0;
    for _ in 0..trials {
        let observed = channel.perturb_sequence(&cand_a, &mut rng);
        mass += retention_posterior(&channel, &observed, &[cand_a.clone(), cand_b.clone()])[0];
    }
    t.row(vec![
        "retention replacement".into(),
        "intro's 2-candidate example".into(),
        f(0.5, 2),
        f(mass / trials as f64, 3),
    ]);

    // 3. Sketches vs the same two-candidate attacker (exact posterior).
    let p = 0.45;
    let params = cfg.params(p, 6, EXP);
    let sketcher = Sketcher::new(params);
    let subset6 = BitSubset::range(0, 6);
    let ca = BitString::from_u64(17, 6);
    let cb = BitString::from_u64(44, 6);
    let mut rng = cfg.rng(EXP, 2);
    let mut mass = 0.0;
    for i in 0..trials {
        let id = UserId(i);
        let run = sketcher
            .sketch_value_with_stats(id, &subset6, &ca, &mut rng)
            .expect("no exhaustion");
        mass += sketch_posterior(&params, id, &subset6, run.sketch, &[ca.clone(), cb.clone()])[0];
    }
    let bound = privacy_ratio_bound(p);
    t.row(vec![
        format!("sketches (p = {p})"),
        "same 2-candidate attacker".into(),
        f(0.5, 2),
        f(mass / trials as f64, 3),
    ]);
    t.note(format!(
        "sketch posterior provably capped at bound/(bound+1) = {:.3} per observation",
        bound / (bound + 1.0)
    ));
    t.note("hashing: recovered exactly; retention: nearly revealed; sketches: prior barely moves");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_outcomes_separate_the_schemes() {
        let tables = run(&Config::quick());
        let rows = &tables[0].rows;
        let hash_success: f64 = rows[0][3].parse().unwrap();
        let retention_success: f64 = rows[1][3].parse().unwrap();
        let sketch_success: f64 = rows[2][3].parse().unwrap();
        assert!(hash_success > 0.99, "dictionary attack should be exact");
        assert!(retention_success > 0.9, "retention attack should succeed");
        assert!(
            sketch_success < 0.6,
            "sketch attacker should stay near the prior: {sketch_success}"
        );
    }
}
