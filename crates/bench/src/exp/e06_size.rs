//! E6 — the size claim: sketches are `⌈log log O(M)⌉` bits.
//!
//! Abstract: "the size of the sketch is minuscule: ⌈log log O(M)⌉ bits,
//! where M is the number of users." This experiment tabulates the Lemma
//! 3.1 length across twelve orders of magnitude of `M` and the concrete
//! wire-format cost of publishing bundles of sketches.

use crate::common::Config;
use crate::report::Table;
use psketch_core::codec::bundle_size_bytes;
use psketch_core::theory::min_sketch_bits;

/// Runs E6.
#[must_use]
pub fn run(_cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E6a — sketch length vs population size (tau = 1e-6)",
        &["M", "l @ p=0.25", "l @ p=0.45"],
    );
    for exp in [2u32, 4, 6, 9, 12] {
        let m = 10u64.pow(exp);
        t.row(vec![
            format!("1e{exp}"),
            min_sketch_bits(m, 1e-6, 0.25).to_string(),
            min_sketch_bits(m, 1e-6, 0.45).to_string(),
        ]);
    }
    t.note("doubly-logarithmic growth: 10^12 users still fit in ~10 bits");

    let mut t2 = Table::new(
        "E6b — published bytes per user (wire format, header included)",
        &["sketches/user", "l=10 bits", "l=13 bits"],
    );
    for &count in &[1usize, 8, 64, 256] {
        t2.row(vec![
            count.to_string(),
            bundle_size_bytes(10, count).to_string(),
            bundle_size_bytes(13, count).to_string(),
        ]);
    }
    t2.note("a user sketching 64 subsets publishes < 100 bytes total");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_grow_doubly_logarithmically() {
        let tables = run(&Config::quick());
        let first: u8 = tables[0].rows.first().unwrap()[1].parse().unwrap();
        let last: u8 = tables[0].rows.last().unwrap()[1].parse().unwrap();
        // 10 orders of magnitude more users costs only a few bits.
        assert!(last <= first + 4, "growth too fast: {first} -> {last}");
        assert!(last <= 12);
    }

    #[test]
    fn bundles_are_small() {
        let tables = run(&Config::quick());
        let bytes_64: usize = tables[1].rows[2][1].parse().unwrap();
        assert!(bytes_64 < 100, "64 sketches should fit under 100 bytes");
    }
}
