//! E24 — parallel scatter-gather: sequential vs concurrent fan-out.
//!
//! The router used to visit shards one at a time over a single mutable
//! connection, so every query paid `N × (RTT + per-shard scan)`. The
//! rewritten router — one long-lived connection-owning worker per
//! shard, per-shard retries in parallel, shard-order merge — pays
//! `max` instead of `sum`. This experiment measures both fan-outs
//! (`fanout = 1` preserves the old sequential visit order as an
//! oracle) at 1, 2 and 4 shards, per query family:
//!
//! * **conjunctive** — one term, the paper's atomic query (Cor. 3.4
//!   charges ε per scan, so this is the family the target tracks);
//! * **distribution** — a `2^k`-term plan over one subset;
//! * **mean** — a linear post-combination (the §4.1 workhorse);
//! * **dnf** — a compound plan with inclusion–exclusion terms.
//!
//! Two configurations:
//!
//! * **loopback** — servers on raw loopback sockets. Here the per-query
//!   cost is dominated by the PRF counting scan, which is CPU-bound:
//!   shard-count scaling therefore needs one core per shard, and on a
//!   single-core host (CI containers included — the harness prints the
//!   core count it saw) the per-shard scans serialize and throughput
//!   stays flat whatever the fan-out. The loopback numbers are still
//!   the honest baseline and the bit-identity check.
//! * **modeled network** — every shard sits behind a loopback proxy
//!   that delays each request frame by a fixed one-way latency (5 ms, a
//!   cross-datacenter RTT), modeling the network a real sharded
//!   deployment scatters across.
//!   Waiting, unlike scanning, overlaps even on one core — so this
//!   isolates exactly what the rewrite buys: the sequential router
//!   pays the latency once **per shard**, the parallel router once
//!   **per query**. The headline target — conjunctive q/s at 4 shards
//!   ≥ 2.5× the 1-connection-at-a-time figure — is measured here, where
//!   the fan-out (not the host's core count) is what's under test.
//!
//! Every parallel answer is verified float-bit-identical to an
//! in-process single-node oracle holding the same records, in both
//! configurations.
//!
//! Emits `BENCH_scatter.json`.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_cluster::{parallel_ingest, Router, RouterConfig, ShardMap};
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, IntField, Profile, UserId};
use psketch_prf::GlobalKey;
use psketch_protocol::{
    Announcement, AnnouncementBuilder, Coordinator, ShardIdentity, Submission, UserAgent,
};
use psketch_queries as q;
use psketch_queries::{QueryEngine, TermPlan};
use psketch_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const EXP: u64 = 24;
const TIMEOUT: Duration = Duration::from_secs(30);
const SHARD_COUNTS: [u32; 3] = [1, 2, 4];
/// One-way request latency injected by the modeled-network proxies (a
/// cross-datacenter RTT, the deployment shape that motivates sharding).
const LAN_LATENCY: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------
// A latency-injecting loopback proxy (bench-local; models the network
// between router and shard).
// ---------------------------------------------------------------------

/// Forwards the length-prefixed wire frames to `target`, sleeping
/// `latency` before relaying each client→server **frame** (the request
/// path — one delay per frame, however TCP segments it, exactly as a
/// pipelined network path behaves); responses stream back undelayed.
/// Dropping the proxy stops its accept loop.
struct LatencyProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl LatencyProxy {
    fn start(target: SocketAddr, latency: Duration) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let addr = listener.local_addr().expect("proxy addr");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            // ord: pairs with the release store in Drop
            if stop_accept.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok((client, _)) => {
                    let Ok(server) = TcpStream::connect(target) else {
                        continue;
                    };
                    client.set_nodelay(true).ok();
                    server.set_nodelay(true).ok();
                    let (c2, s2) = (
                        client.try_clone().expect("clone"),
                        server.try_clone().expect("clone"),
                    );
                    // Request path: delay each frame by the one-way latency.
                    std::thread::spawn(move || Self::pump_frames(client, server, latency));
                    // Response path: stream straight back.
                    std::thread::spawn(move || Self::pump(s2, c2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        });
        Self { addr, stop }
    }

    fn pump(mut from: TcpStream, mut to: TcpStream) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => {
                    let _ = to.shutdown(std::net::Shutdown::Write);
                    return;
                }
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        return;
                    }
                }
            }
        }
    }

    fn pump_frames(mut from: TcpStream, mut to: TcpStream, latency: Duration) {
        loop {
            let mut prefix = [0u8; 4];
            if from.read_exact(&mut prefix).is_err() {
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            let len = u32::from_le_bytes(prefix) as usize;
            let mut payload = vec![0u8; len];
            if from.read_exact(&mut payload).is_err() {
                let _ = to.shutdown(std::net::Shutdown::Write);
                return;
            }
            std::thread::sleep(latency);
            if to.write_all(&prefix).is_err() || to.write_all(&payload).is_err() {
                return;
            }
        }
    }
}

impl Drop for LatencyProxy {
    fn drop(&mut self) {
        // ord: release pairs with the proxy thread's acquire load
        self.stop.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Workload.
// ---------------------------------------------------------------------

/// The measured families. Few terms each — the point is scatter
/// latency, not plan width.
fn families() -> Vec<(&'static str, TermPlan)> {
    let a = IntField::new(0, 2);
    let pair = BitSubset::range(0, 2);
    let clause0 =
        ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap();
    let clause1 = ConjunctiveQuery::new(
        BitSubset::new(vec![1, 2]).unwrap(),
        BitString::from_bits(&[true, false]),
    )
    .unwrap();
    vec![
        (
            "conjunctive",
            TermPlan::for_conjunctive(
                ConjunctiveQuery::new(pair.clone(), BitString::from_bits(&[true, true])).unwrap(),
            ),
        ),
        ("distribution", TermPlan::for_distribution(&pair)),
        ("mean", q::mean_plan(&a)),
        ("dnf", q::dnf_plan(&[clause0, clause1]).unwrap()),
    ]
}

fn announcement(cfg: &Config, m: usize, plans: &[(&str, TermPlan)]) -> Announcement {
    let mut subsets: Vec<BitSubset> = plans
        .iter()
        .flat_map(|(_, plan)| plan.required_subsets())
        .collect();
    subsets.sort();
    subsets.dedup();
    let mut builder = AnnouncementBuilder::new(EXP, 0.3, m as u64, 1e-6)
        .global_key(*GlobalKey::from_seed(cfg.seed ^ EXP).as_bytes());
    for subset in subsets {
        builder = builder.subset(subset);
    }
    builder.build().expect("static announcement is valid")
}

fn make_submissions(cfg: &Config, ann: &Announcement, m: usize) -> Vec<Submission> {
    let mut rng = cfg.rng(EXP, 0);
    (0..m as u64)
        .map(|i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0, i % 5 < 2]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, f64::MAX);
            agent
                .participate(ann, &mut rng)
                .expect("participation cannot fail at these parameters")
        })
        .collect()
}

fn router_with_fanout(map: ShardMap, fanout: usize) -> Router {
    Router::new(
        map,
        RouterConfig {
            timeout: TIMEOUT,
            fanout,
            ..RouterConfig::default()
        },
    )
    .expect("valid map")
}

/// q/s of `plan` through `router` over `reps` repetitions.
fn measure(router: &mut Router, plan: &TermPlan, reps: u64) -> f64 {
    // One warm-up pass opens every worker's connection.
    let _ = router.execute_plan(plan).expect("warm-up");
    let start = Instant::now();
    for _ in 0..reps {
        let _ = router.execute_plan(plan).expect("measured query");
    }
    reps as f64 / start.elapsed().as_secs_f64()
}

struct FamilyAtShards {
    family: &'static str,
    shards: u32,
    seq_qps: f64,
    par_qps: f64,
}

/// Runs one configuration (all shard counts × families), optionally
/// behind latency proxies, asserting parallel answers bit-identical to
/// the single-node oracle throughout.
fn run_configuration(
    ann: &Announcement,
    subs: &[Submission],
    engine: &QueryEngine,
    oracle: &Coordinator,
    plans: &[(&'static str, TermPlan)],
    reps: u64,
    latency: Option<Duration>,
) -> Vec<FamilyAtShards> {
    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        let servers: Vec<Server> = (0..shards)
            .map(|shard_id| {
                Server::start(
                    "127.0.0.1:0",
                    ann.clone(),
                    ServerConfig {
                        workers: 4,
                        shard: Some(ShardIdentity {
                            shard_id,
                            shard_count: shards,
                        }),
                        ..ServerConfig::default()
                    },
                )
                .expect("bind loopback")
            })
            .collect();
        // Ingest always goes over raw loopback (latency under test is
        // the query path).
        let direct = ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string()))
            .expect("non-empty map");
        let (accepted, _) = parallel_ingest(&direct, subs, TIMEOUT, 500)
            .totals()
            .expect("cluster ingest");
        assert_eq!(accepted, subs.len() as u64, "every submission lands");

        // Queries go through the proxies when a latency is modeled.
        let proxies: Vec<LatencyProxy> = match latency {
            None => Vec::new(),
            Some(l) => servers
                .iter()
                .map(|s| LatencyProxy::start(s.local_addr(), l))
                .collect(),
        };
        let query_map = if proxies.is_empty() {
            direct
        } else {
            ShardMap::new(1, proxies.iter().map(|p| p.addr.to_string())).expect("non-empty map")
        };

        let mut sequential = router_with_fanout(query_map.clone(), 1);
        let mut parallel = router_with_fanout(query_map, 0);
        for (family, plan) in plans {
            let seq_qps = measure(&mut sequential, plan, reps);
            let par_qps = measure(&mut parallel, plan, reps);
            // Bit-identity of the parallel answer vs the single-node
            // oracle, output by output.
            let clustered = parallel.execute_plan(plan).expect("verification query");
            assert!(clustered.coverage.is_complete());
            let local = engine.execute_plan(oracle.pool(), plan).expect("oracle");
            for (c, l) in clustered.outputs.iter().zip(&local) {
                assert_eq!(
                    c.value.to_bits(),
                    l.value.to_bits(),
                    "{family}: parallel at {shards} shards diverged from the oracle"
                );
            }
            runs.push(FamilyAtShards {
                family,
                shards,
                seq_qps,
                par_qps,
            });
        }
        drop(proxies);
        for server in servers {
            server.shutdown();
        }
    }
    runs
}

fn table_for(title: String, runs: &[FamilyAtShards]) -> Table {
    let mut t = Table::new(
        title,
        &["family", "shards", "sequential q/s", "parallel q/s", "gain"],
    );
    for run in runs {
        t.row(vec![
            run.family.to_string(),
            run.shards.to_string(),
            f(run.seq_qps, 1),
            f(run.par_qps, 1),
            f(run.par_qps / run.seq_qps.max(1e-12), 2),
        ]);
    }
    t
}

fn json_entries(runs: &[FamilyAtShards]) -> String {
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "      {{\"family\": \"{}\", \"shards\": {}, \"sequential_qps\": {:.1}, \
                 \"parallel_qps\": {:.1}}}",
                r.family, r.shards, r.seq_qps, r.par_qps
            )
        })
        .collect();
    entries.join(",\n")
}

fn conj_at(runs: &[FamilyAtShards], shards: u32) -> &FamilyAtShards {
    runs.iter()
        .find(|r| r.family == "conjunctive" && r.shards == shards)
        .expect("conjunctive measured at every shard count")
}

/// Runs E24.
///
/// # Panics
///
/// Panics if the loopback cluster misbehaves, a parallel answer
/// diverges from the single-node oracle, or the output file cannot be
/// written.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(80_000);
    let reps = cfg.reps(300);
    let lan_reps = cfg.reps(60);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let plans = families();
    let ann = announcement(cfg, m, &plans);
    let subs = make_submissions(cfg, &ann, m);

    // The single-node oracle every parallel answer must match.
    let oracle = Coordinator::new(ann.clone());
    oracle.accept_batch(&subs);
    let params = ann.validate().expect("announcement validates");
    let engine = QueryEngine::new(params);

    let loopback = run_configuration(&ann, &subs, &engine, &oracle, &plans, reps, None);
    let lan = run_configuration(
        &ann,
        &subs,
        &engine,
        &oracle,
        &plans,
        lan_reps,
        Some(LAN_LATENCY),
    );

    // Headline metrics.
    let lan_4shard_gain = conj_at(&lan, 4).par_qps / conj_at(&lan, 4).seq_qps;
    let lan_4_vs_1 = conj_at(&lan, 4).par_qps / conj_at(&lan, 1).seq_qps;
    let loopback_4_vs_1 = conj_at(&loopback, 4).par_qps / conj_at(&loopback, 1).par_qps;

    let mut t1 = table_for(
        format!("E24a — scatter fan-out over raw loopback ({m} users, {cores} core(s))"),
        &loopback,
    );
    t1.note("every parallel answer verified bit-identical to the single-node oracle");
    t1.note(format!(
        "loopback queries are dominated by the CPU-bound PRF counting scan: shard scaling \
         needs one core per shard, and this host has {cores} — per-shard scans serialize \
         (conjunctive parallel 4-shard vs 1-shard here: {loopback_4_vs_1:.2}x)"
    ));

    let mut t2 = table_for(
        format!(
            "E24b — scatter fan-out over a modeled LAN ({}ms one-way request latency)",
            LAN_LATENCY.as_millis()
        ),
        &lan,
    );
    t2.note(
        "latency proxies model the network a real deployment scatters across; waiting \
         overlaps even on one core, isolating the fan-out itself",
    );
    t2.note(format!(
        "conjunctive at 4 shards: parallel {:.1} q/s vs one-connection-at-a-time {:.1} q/s \
         = {lan_4shard_gain:.2}x (target >= 2.5x); vs the 1-shard figure: {lan_4_vs_1:.2}x",
        conj_at(&lan, 4).par_qps,
        conj_at(&lan, 4).seq_qps,
    ));

    let json = format!(
        "{{\n  \"experiment\": \"e24_scatter\",\n  \"users\": {m},\n  \"host_cores\": {cores},\n  \
         \"modeled_lan_one_way_ms\": {},\n  \
         \"conjunctive_4_shard_parallel_vs_sequential_lan\": {lan_4shard_gain:.2},\n  \
         \"conjunctive_4_shard_parallel_vs_1_shard_lan\": {lan_4_vs_1:.2},\n  \
         \"conjunctive_4_shard_parallel_vs_1_shard_loopback\": {loopback_4_vs_1:.2},\n  \
         \"target_speedup\": 2.5,\n  \
         \"note\": \"loopback scans are CPU-bound; on a {cores}-core host per-shard scans \
         serialize, so the fan-out win is measured under the modeled LAN latency where \
         waiting (the thing parallel fan-out overlaps) exists\",\n  \
         \"loopback\": [\n{}\n  ],\n  \"modeled_lan\": [\n{}\n  ]\n}}\n",
        LAN_LATENCY.as_millis(),
        json_entries(&loopback),
        json_entries(&lan)
    );
    if cfg.quick {
        t2.note("quick mode: BENCH_scatter.json not written");
    } else {
        std::fs::write("BENCH_scatter.json", json).expect("write BENCH_scatter.json");
        t2.note("wrote BENCH_scatter.json");
    }

    vec![t1, t2]
}
