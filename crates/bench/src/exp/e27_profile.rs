//! E27 — query profiling overhead: the span-instrumented estimator scan
//! with profiling off, on, and with the whole obs layer dark.
//!
//! The span tracer promises the same deal the metrics registry made in
//! E26: **near-zero when off**. With no trace open, every
//! `obs::span::enter` call site is a single relaxed atomic load and the
//! returned guard is inert — so the production default (profiling off,
//! metrics on) must scan within the same ≤2% envelope E26 established,
//! measured here against the leanest configuration (metrics off too).
//! With a trace open, each scan records a handful of spans *per scan*
//! (never per record), so even profiled throughput stays close.
//!
//! The experiment also asserts the invariant the whole PR leans on:
//! profiling never touches estimate arithmetic. The estimate from a
//! profiled scan equals the unprofiled one in every float bit, and the
//! recorded trace actually contains the `estimator:scan` span with its
//! `records` attribute (profiling was really on, not silently inert).
//!
//! Emits `BENCH_profile.json` with the measured rates. In quick mode
//! the identity and span-content checks still run and the throughput
//! guard loosens to a catastrophic-regression bound (smoke sizes are
//! noisy).

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{
    BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile, SketchDb, Sketcher,
    UserId,
};
use psketch_obs::span::Trace;
use std::time::Instant;

const EXP: u64 = 27;

/// Best observed records/s over `reps` runs of `scan`.
fn best_rate(reps: u64, records: usize, mut scan: impl FnMut()) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            scan();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

/// Runs E27.
///
/// # Panics
///
/// Panics if a profiled estimate differs from an unprofiled one in any
/// float bit, if the profiled pass produced no `estimator:scan` span,
/// if the profiling-off overhead exceeds the acceptance bound, or if
/// `BENCH_profile.json` cannot be written.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(1_000_000);
    let k = 8usize;
    let params = cfg.params(0.3, 10, EXP);
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let db = SketchDb::new();
    let mut rng = cfg.rng(EXP, 0);
    for i in 0..m as u64 {
        let profile = Profile::from_bits(&vec![i % 3 == 0; k]);
        let sketch = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .expect("sketching at ell=10 cannot exhaust");
        db.insert(subset.clone(), UserId(i), sketch);
    }

    let estimator = ConjunctiveEstimator::new(params);
    let value = BitString::from_bits(&vec![true; k]);
    let query = ConjunctiveQuery::new(subset, value).expect("widths match");
    let reps = if cfg.quick { 20 } else { cfg.reps(9) };

    // Plain pass: metrics off, no trace — the leanest configuration
    // this binary can reach, the baseline the off-path is held to.
    psketch_obs::set_enabled(false);
    let plain_estimate = estimator.estimate(&db, &query).expect("populated");
    let plain_rate = best_rate(reps, m, || {
        let e = estimator.estimate(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), plain_estimate.raw.to_bits());
    });

    // Off pass: metrics on, profiling off — the production default.
    // Every span call site runs its one-relaxed-load off-path here.
    psketch_obs::set_enabled(true);
    let off_estimate = estimator.estimate(&db, &query).expect("populated");
    let off_rate = best_rate(reps, m, || {
        let e = estimator.estimate(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), off_estimate.raw.to_bits());
    });

    // On pass: a trace open around every scan, the way a `--explain`
    // query profiles a server-side request.
    let mut nonce = 0xE27_0000u64;
    let (on_estimate, spans_recorded) = {
        let trace = Trace::begin(nonce, "bench:profiled_scan");
        let e = estimator.estimate(&db, &query).expect("populated");
        let tree = trace.finish();
        let scan = tree
            .find("estimator:scan")
            .expect("profiled scan recorded no estimator:scan span");
        assert_eq!(
            scan.attr("records"),
            Some(m as u64),
            "scan span must carry the record count"
        );
        (e, tree.span_count())
    };
    let on_rate = best_rate(reps, m, || {
        nonce += 1;
        let trace = Trace::begin(nonce, "bench:profiled_scan");
        let e = estimator.estimate(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), on_estimate.raw.to_bits());
        let tree = trace.finish();
        assert!(tree.find("estimator:scan").is_some());
    });

    // Profiling must never perturb the arithmetic: same inputs, same
    // float bits, in all three modes.
    for (mode, estimate) in [("off", &off_estimate), ("on", &on_estimate)] {
        assert_eq!(
            estimate.fraction.to_bits(),
            plain_estimate.fraction.to_bits(),
            "estimate differs between plain and profiling-{mode}"
        );
        assert_eq!(
            estimate.raw.to_bits(),
            plain_estimate.raw.to_bits(),
            "raw estimate differs between plain and profiling-{mode}"
        );
    }

    let off_overhead = 1.0 - off_rate / plain_rate;
    let on_overhead = 1.0 - on_rate / plain_rate;
    // Acceptance: profiling off (the production default) costs ≤2% at
    // full size. Quick-mode smoke sizes finish scans in microseconds
    // where scheduler noise dwarfs an atomic load, so the guard loosens
    // to catch only a real per-record cost sneaking in.
    let floor = if cfg.quick { 0.80 } else { 0.98 };
    assert!(
        off_rate >= floor * plain_rate,
        "profiling-off overhead {:.1}% exceeds the bound ({} records/s off vs {} plain)",
        off_overhead * 100.0,
        f(off_rate, 0),
        f(plain_rate, 0)
    );

    let mut t = Table::new(
        format!("E27 — query-profiling overhead at M = {m} (k = {k}, p = 0.3)"),
        &["mode", "records/s", "relative"],
    );
    t.row(vec![
        "plain (metrics off, no trace)".into(),
        f(plain_rate, 0),
        "1.000x".into(),
    ]);
    t.row(vec![
        "profiling off (production default)".into(),
        f(off_rate, 0),
        format!("{:.3}x", off_rate / plain_rate),
    ]);
    t.row(vec![
        "profiling on (trace per scan)".into(),
        f(on_rate, 0),
        format!("{:.3}x", on_rate / plain_rate),
    ]);
    t.note(format!(
        "profiling-off overhead {:.2}% (acceptance: ≤2% at full size) | profiled trace \
         holds {spans_recorded} spans | answers float-bit-identical in all three modes",
        off_overhead * 100.0
    ));

    let json = format!(
        "{{\n  \"experiment\": \"e27_profile\",\n  \"records\": {m},\n  \"width\": {k},\n  \
         \"p\": 0.3,\n  \
         \"plain_records_per_sec\": {plain_rate:.1},\n  \
         \"profiling_off_records_per_sec\": {off_rate:.1},\n  \
         \"profiling_on_records_per_sec\": {on_rate:.1},\n  \
         \"off_overhead_fraction\": {off_overhead:.5},\n  \
         \"on_overhead_fraction\": {on_overhead:.5},\n  \
         \"answers_bit_identical\": true,\n  \
         \"profiled_trace_spans\": {spans_recorded}\n}}\n"
    );
    if cfg.quick {
        t.note("quick mode: BENCH_profile.json not written");
    } else {
        std::fs::write("BENCH_profile.json", json).expect("write BENCH_profile.json");
        t.note("wrote BENCH_profile.json");
    }

    vec![t]
}
