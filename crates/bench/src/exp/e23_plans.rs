//! E23 — the query-plan IR: plan-path vs legacy-path cost per family.
//!
//! Every query family now compiles to a `TermPlan` (deduplicated terms
//! plus linear post-combinations) and executes anywhere. This
//! experiment measures what that buys:
//!
//! * **local**: the legacy per-term evaluation (`QueryEngine::linear`
//!   with memoization — one estimator scan per distinct term, one
//!   snapshot take per scan) against the plan path
//!   (`QueryEngine::execute_plan` over the batched
//!   `count_terms` entry point: one snapshot per distinct *subset*,
//!   dense per-subset groups answered by the one-pass distribution
//!   tally);
//! * **cluster**: plan throughput through the scatter-gather router at
//!   1, 2 and 4 loopback shards — one generic `PartialTermCounts`
//!   round trip per shard per plan, whatever the family;
//! * **bit-identity**: every family's plan answer must equal the
//!   legacy answer exactly, locally and at every shard count.
//!
//! Emits `BENCH_plans.json`.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_cluster::{parallel_ingest, Router, RouterConfig, ShardMap};
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, IntField, Profile, UserId};
use psketch_prf::GlobalKey;
use psketch_protocol::{
    Announcement, AnnouncementBuilder, Coordinator, ShardIdentity, Submission, UserAgent,
};
use psketch_queries as q;
use psketch_queries::{LinearQuery, QueryEngine, TermPlan};
use psketch_server::{Server, ServerConfig};
use std::time::{Duration, Instant};

const EXP: u64 = 23;
const TIMEOUT: Duration = Duration::from_secs(30);

/// One family: a label and its compiled plan.
fn families() -> Vec<(&'static str, TermPlan)> {
    let a = IntField::new(0, 2);
    let b = IntField::new(2, 2);
    let attr = q::CategoricalAttribute::new(a, 4);
    let pair = BitSubset::range(0, 2);
    let clause0 =
        ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap();
    let clause1 = ConjunctiveQuery::new(
        BitSubset::new(vec![1, 2]).unwrap(),
        BitString::from_bits(&[true, false]),
    )
    .unwrap();
    let tree = q::DecisionTree::split(
        0,
        q::DecisionTree::split(2, q::DecisionTree::Leaf(true), q::DecisionTree::Leaf(false)),
        q::DecisionTree::split(1, q::DecisionTree::Leaf(false), q::DecisionTree::Leaf(true)),
    );
    let mut linear = LinearQuery::new("linear");
    linear.constant = -0.25;
    linear.push(1.5, clause0.clone());
    linear.push(-2.0, clause1.clone());
    linear.push(0.5, clause0.clone());
    vec![
        (
            "conjunction",
            TermPlan::for_conjunctive(
                ConjunctiveQuery::new(pair.clone(), BitString::from_bits(&[true, true])).unwrap(),
            ),
        ),
        ("distribution", TermPlan::for_distribution(&pair)),
        ("linear", TermPlan::compile(&linear)),
        ("dnf", q::dnf_plan(&[clause0, clause1]).unwrap()),
        ("interval", q::range_plan(&a, 1, 2)),
        ("mean", q::mean_plan(&a)),
        ("moment", q::moment_plan(&a, 2)),
        ("product", q::inner_product_plan(&a, &b)),
        ("combined", q::eq_and_less_than_plan(&a, 2, &b, 3)),
        ("tree", tree.to_plan()),
        ("sumlt", q::sum_lt_plan(&a, &b, 2)),
        ("categorical", q::histogram_plan(&attr)),
        (
            "bits",
            q::perturbed_conjunction_plan(&[
                (BitSubset::single(0), BitString::from_bits(&[true])),
                (BitSubset::single(3), BitString::from_bits(&[false])),
            ])
            .unwrap(),
        ),
    ]
}

/// The pre-refactor evaluation of a plan: one [`LinearQuery`] per
/// output, evaluated through the engine's per-term memoized path.
fn legacy_queries(plan: &TermPlan) -> Vec<LinearQuery> {
    plan.outputs()
        .iter()
        .map(|out| {
            let mut lq = LinearQuery::new(out.label.clone());
            lq.constant = out.constant;
            for &(coeff, slot) in out.combination() {
                lq.push(coeff, plan.terms()[slot].clone());
            }
            lq
        })
        .collect()
}

fn announcement(cfg: &Config, m: usize, plans: &[(&str, TermPlan)]) -> Announcement {
    let mut subsets: Vec<BitSubset> = plans
        .iter()
        .flat_map(|(_, plan)| plan.required_subsets())
        .collect();
    subsets.sort();
    subsets.dedup();
    let mut builder = AnnouncementBuilder::new(EXP, 0.3, m as u64, 1e-6)
        .global_key(*GlobalKey::from_seed(cfg.seed ^ EXP).as_bytes());
    for subset in subsets {
        builder = builder.subset(subset);
    }
    builder.build().expect("static announcement is valid")
}

fn make_submissions(cfg: &Config, ann: &Announcement, m: usize) -> Vec<Submission> {
    let mut rng = cfg.rng(EXP, 0);
    (0..m as u64)
        .map(|i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0, i % 5 < 2, i % 7 < 3]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, f64::MAX);
            agent
                .participate(ann, &mut rng)
                .expect("participation cannot fail at these parameters")
        })
        .collect()
}

struct FamilyRun {
    name: &'static str,
    terms: usize,
    legacy_ms: f64,
    plan_ms: f64,
    cluster_qps: Vec<(u32, f64)>,
}

/// Runs E23.
///
/// # Panics
///
/// Panics if any plan answer diverges from the legacy path, a loopback
/// cluster misbehaves, or the output file cannot be written.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(30_000);
    let reps = cfg.reps(40);
    let plans = families();
    let ann = announcement(cfg, m, &plans);
    let subs = make_submissions(cfg, &ann, m);

    let oracle = Coordinator::new(ann.clone());
    oracle.accept_batch(&subs);
    let params = ann.validate().expect("announcement validates");
    let engine = QueryEngine::new(params);

    // --- Local: legacy per-term path vs batched plan path. ---
    let mut runs: Vec<FamilyRun> = plans
        .iter()
        .map(|(name, plan)| {
            let lqs = legacy_queries(plan);
            let start = Instant::now();
            let mut legacy = Vec::new();
            for _ in 0..reps {
                legacy = engine.linear_batch(oracle.pool(), &lqs).expect("legacy");
            }
            let legacy_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
            let start = Instant::now();
            let mut answers = Vec::new();
            for _ in 0..reps {
                answers = engine.execute_plan(oracle.pool(), plan).expect("plan");
            }
            let plan_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
            for (a, l) in answers.iter().zip(&legacy) {
                assert_eq!(
                    a.value.to_bits(),
                    l.value.to_bits(),
                    "{name}: plan diverged from the legacy path"
                );
            }
            FamilyRun {
                name,
                terms: plan.cost(),
                legacy_ms,
                plan_ms,
                cluster_qps: Vec::new(),
            }
        })
        .collect();

    // --- Cluster: plan throughput at 1, 2, 4 shards. ---
    let cluster_reps = cfg.reps(25);
    for shards in [1u32, 2, 4] {
        let servers: Vec<Server> = (0..shards)
            .map(|shard_id| {
                Server::start(
                    "127.0.0.1:0",
                    ann.clone(),
                    ServerConfig {
                        workers: 4,
                        shard: Some(ShardIdentity {
                            shard_id,
                            shard_count: shards,
                        }),
                        ..ServerConfig::default()
                    },
                )
                .expect("bind loopback")
            })
            .collect();
        let map = ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string()))
            .expect("non-empty map");
        let (accepted, _) = parallel_ingest(&map, &subs, TIMEOUT, 500)
            .totals()
            .expect("cluster ingest");
        assert_eq!(accepted, subs.len() as u64);
        let mut router = Router::new(
            map,
            RouterConfig {
                timeout: TIMEOUT,
                ..RouterConfig::default()
            },
        )
        .expect("valid map");
        for (run, (name, plan)) in runs.iter_mut().zip(&plans) {
            let start = Instant::now();
            let mut clustered = None;
            for _ in 0..cluster_reps {
                clustered = Some(router.execute_plan(plan).expect("cluster plan"));
            }
            let qps = cluster_reps as f64 / start.elapsed().as_secs_f64();
            run.cluster_qps.push((shards, qps));
            // Bit-identity against the local plan path.
            let clustered = clustered.expect("at least one rep");
            assert!(clustered.coverage.is_complete());
            let local = engine.execute_plan(oracle.pool(), plan).expect("local");
            for (c, l) in clustered.outputs.iter().zip(&local) {
                assert_eq!(
                    c.value.to_bits(),
                    l.value.to_bits(),
                    "{name}: cluster at {shards} shards diverged"
                );
            }
        }
        for server in servers {
            server.shutdown();
        }
    }

    let mut t = Table::new(
        format!("E23 — query-plan IR: plan vs legacy path per family ({m} users)"),
        &[
            "family",
            "terms",
            "legacy (ms)",
            "plan (ms)",
            "speedup",
            "1-shard q/s",
            "2-shard q/s",
            "4-shard q/s",
        ],
    );
    for run in &runs {
        let mut row = vec![
            run.name.to_string(),
            run.terms.to_string(),
            f(run.legacy_ms, 3),
            f(run.plan_ms, 3),
            f(run.legacy_ms / run.plan_ms.max(1e-12), 2),
        ];
        for &(_, qps) in &run.cluster_qps {
            row.push(f(qps, 1));
        }
        t.row(row);
    }
    t.note("every plan answer verified bit-identical to the legacy per-term path");
    t.note("cluster: one generic PartialTermCounts round trip per shard per plan");

    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            let cluster: Vec<String> = r
                .cluster_qps
                .iter()
                .map(|(shards, qps)| format!("{{\"shards\": {shards}, \"qps\": {qps:.1}}}"))
                .collect();
            format!(
                "    {{\"family\": \"{}\", \"terms\": {}, \"legacy_ms\": {:.4}, \
                 \"plan_ms\": {:.4}, \"cluster\": [{}]}}",
                r.name,
                r.terms,
                r.legacy_ms,
                r.plan_ms,
                cluster.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e23_plans\",\n  \"users\": {m},\n  \"families\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if cfg.quick {
        t.note("quick mode: BENCH_plans.json not written");
    } else {
        std::fs::write("BENCH_plans.json", json).expect("write BENCH_plans.json");
        t.note("wrote BENCH_plans.json");
    }

    vec![t]
}
