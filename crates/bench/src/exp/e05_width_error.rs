//! E5 — the headline claim (Lemma 4.1 + §1): conjunctive-query error is
//! independent of query width for sketches, but grows exponentially in
//! width for randomized-response reconstructions.
//!
//! Planted populations with known frequency 0.5; RMS error over
//! repetitions for (a) the sketch estimator, (b) the RR product estimator,
//! (c) the RR matrix estimator, as width `k` grows at fixed `M`; and
//! error vs `M` at fixed `k` showing the `1/√M` decay.

use crate::common::{publish, Config};
use crate::report::{f, rms, sci, Table};
use psketch_baselines::randomize_profiles;
use psketch_core::theory::query_error_bound;
use psketch_core::{ConjunctiveEstimator, ConjunctiveQuery, Sketcher};
use psketch_data::PlantedConjunction;

const EXP: u64 = 5;
const P: f64 = 0.3;
const TRUTH: f64 = 0.5;

/// One repetition: returns (sketch error, product error, matrix error).
fn one_rep(cfg: &Config, m: usize, k: usize, rep: u64) -> (f64, f64, f64) {
    let mut rng = cfg.rng(EXP, (k as u64) << 32 | (m as u64) << 8 | rep);
    let gen = PlantedConjunction::all_ones(k.max(2), k, TRUTH);
    let pop = gen.generate(m, &mut rng);
    let truth = pop.true_fraction(&gen.subset, &gen.value);

    // Sketch path.
    let params = cfg.params(P, 10, EXP ^ rep);
    let sketcher = Sketcher::new(params);
    let (db, _failures) = publish(&pop, &sketcher, std::slice::from_ref(&gen.subset), &mut rng);
    let estimator = ConjunctiveEstimator::new(params);
    let query = ConjunctiveQuery::new(gen.subset.clone(), gen.value.clone()).expect("widths");
    let sketch_est = estimator
        .estimate(&db, &query)
        .expect("populated db")
        .fraction;

    // Randomized-response path (same population, same flip probability).
    let profiles: Vec<_> = (0..pop.len()).map(|i| pop.profile(i).clone()).collect();
    let rr = randomize_profiles(P, profiles, &mut rng).expect("valid RR database");
    let product_est = rr
        .product_estimate(&gen.subset, &gen.value)
        .expect("widths");
    let matrix_est = rr.matrix_estimate(&gen.subset, &gen.value).expect("widths");

    (sketch_est - truth, product_est - truth, matrix_est - truth)
}

/// RMS errors over repetitions, parallelized across reps.
fn rms_errors(cfg: &Config, m: usize, k: usize, reps: u64) -> (f64, f64, f64) {
    let results: Vec<(f64, f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..reps)
            .map(|rep| scope.spawn(move || one_rep(cfg, m, k, rep)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rep panicked"))
            .collect()
    });
    let col = |i: usize| {
        rms(&results
            .iter()
            .map(|r| match i {
                0 => r.0,
                1 => r.1,
                _ => r.2,
            })
            .collect::<Vec<_>>())
    };
    (col(0), col(1), col(2))
}

/// Runs E5.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    vec![width_table(cfg), scaling_table(cfg)]
}

fn width_table(cfg: &Config) -> Table {
    let mut t = Table::new(
        "E5a — RMS error vs conjunction width k (fixed M, p = 0.3, truth = 0.5)",
        &[
            "k",
            "M",
            "sketch",
            "RR product",
            "RR matrix",
            "RR var. inflation",
        ],
    );
    let m = cfg.m(20_000);
    let reps = cfg.reps(12);
    for &k in &[1usize, 2, 4, 8, 12] {
        let (s, pr, mx) = rms_errors(cfg, m, k, reps);
        let inflation = (1.0 - 2.0 * P).powi(-2 * k as i32);
        t.row(vec![
            k.to_string(),
            m.to_string(),
            f(s, 4),
            f(pr, 4),
            f(mx, 4),
            sci(inflation),
        ]);
    }
    t.note("sketch error is flat in k; RR errors grow with the exponential variance inflation");
    t
}

fn scaling_table(cfg: &Config) -> Table {
    let mut t = Table::new(
        "E5b — sketch RMS error vs M (fixed k = 8): the O(1/sqrt(M)) law",
        &["M", "measured RMS", "Lemma 4.1 bound (δ=0.32)"],
    );
    let reps = cfg.reps(12);
    let ms: &[usize] = if cfg.quick {
        &[1_000, 4_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    for &m in ms {
        let (s, _, _) = rms_errors(cfg, m, 8, reps);
        // δ = 0.32 ≈ 1σ coverage makes the bound comparable to an RMS.
        t.row(vec![
            m.to_string(),
            f(s, 4),
            f(query_error_bound(m as u64, P, 0.32), 4),
        ]);
    }
    t.note("error halves per 4x users, independent of the 8-bit width");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_error_flat_rr_error_grows() {
        let cfg = Config::quick();
        let m = 3_000;
        let reps = 4;
        let (s_narrow, p_narrow, _) = rms_errors(&cfg, m, 2, reps);
        let (s_wide, p_wide, _) = rms_errors(&cfg, m, 10, reps);
        // Sketch error roughly flat (generous factor for sampling noise).
        assert!(
            s_wide < s_narrow * 3.0 + 0.02,
            "sketch error grew: {s_narrow} -> {s_wide}"
        );
        // RR product error grows substantially.
        assert!(
            p_wide > p_narrow * 3.0,
            "RR error should blow up: {p_narrow} -> {p_wide}"
        );
        // At narrow width both are in the same ballpark.
        assert!(p_narrow < 0.2 && s_narrow < 0.2);
    }

    #[test]
    fn error_decays_with_m() {
        let cfg = Config::quick();
        let (small, _, _) = rms_errors(&cfg, 500, 4, 6);
        let (large, _, _) = rms_errors(&cfg, 8_000, 4, 6);
        assert!(
            large < small,
            "more users must not hurt: {small} -> {large}"
        );
    }
}
