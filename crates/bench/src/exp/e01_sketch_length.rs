//! E1 — Lemma 3.1: minimal sketch length and failure probability.
//!
//! Paper claim: with `ℓ = ⌈log log(M/τ)/|log(1−p²)|⌉` bits, the probability
//! that Algorithm 1 fails for *any* of `M` users is below `τ`; and "if
//! p > 1/4, then a 10 bit sketch is sufficient for any foreseeable
//! practical use".

use crate::common::Config;
use crate::report::{f, sci, Table};
use psketch_core::theory::{failure_prob_bound, failure_prob_exact, min_sketch_bits};
use psketch_core::{BitString, BitSubset, Sketcher, UserId};

const EXP: u64 = 1;

/// Runs E1 and returns its tables.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    vec![required_length_table(), measured_failure_table(cfg)]
}

/// Table E1a: the Lemma 3.1 length over a parameter grid, with the
/// union-bound failure estimate at ℓ and at ℓ−1 (showing minimality).
fn required_length_table() -> Table {
    let mut t = Table::new(
        "E1a — Lemma 3.1 minimal sketch length ℓ(M, τ, p)",
        &["p", "M", "tau", "l(bits)", "M*bound(l)", "M*bound(l-1)"],
    );
    for &p in &[0.25f64, 0.3, 0.4, 0.45] {
        for &(m, tau) in &[
            (1_000u64, 1e-3f64),
            (100_000, 1e-3),
            (1_000_000, 1e-6),
            (1_000_000_000, 1e-9),
        ] {
            let bits = min_sketch_bits(m, tau, p);
            let at = m as f64 * failure_prob_bound(bits, p);
            let below = if bits > 1 {
                m as f64 * failure_prob_bound(bits - 1, p)
            } else {
                f64::NAN
            };
            t.row(vec![
                f(p, 2),
                m.to_string(),
                sci(tau),
                bits.to_string(),
                sci(at),
                sci(below),
            ]);
        }
    }
    t.note(
        "paper: 'if p > 1/4, then a 10 bit sketch is sufficient for any foreseeable practical use'",
    );
    t.note("M*bound(l) <= tau everywhere; M*bound(l-1) > tau shows minimality");
    t
}

/// Table E1b: measured failure rates at deliberately short lengths,
/// against both the exact formula `((1−p)(1−r))^L` and the paper's bound
/// `(1−p²)^L`.
fn measured_failure_table(cfg: &Config) -> Table {
    let mut t = Table::new(
        "E1b — measured Algorithm 1 failure rate at short ℓ",
        &["p", "l", "measured", "exact", "paper bound"],
    );
    let trials = cfg.m(200_000) as u64;
    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);
    for &p in &[0.15f64, 0.25, 0.4] {
        for bits in [1u8, 2, 3] {
            let params = cfg.params(p, bits, EXP);
            let sketcher = Sketcher::new(params);
            let mut rng = cfg.rng(EXP, u64::from(bits));
            let failures = (0..trials)
                .filter(|&i| {
                    sketcher
                        .sketch_value_with_stats(UserId(i), &subset, &value, &mut rng)
                        .is_err()
                })
                .count();
            let measured = failures as f64 / trials as f64;
            t.row(vec![
                f(p, 2),
                bits.to_string(),
                f(measured, 5),
                f(failure_prob_exact(bits, p), 5),
                f(failure_prob_bound(bits, p), 5),
            ]);
        }
    }
    t.note("measured tracks the exact formula; the paper bound is loose but safe");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shape() {
        let tables = run(&Config::quick());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 16);
        assert_eq!(tables[1].rows.len(), 9);
    }

    #[test]
    fn measured_failures_match_exact_formula() {
        // Re-derive one cell with tight assertions.
        let cfg = Config::quick();
        let p = 0.25;
        let bits = 2u8;
        let params = cfg.params(p, bits, EXP);
        let sketcher = Sketcher::new(params);
        let subset = BitSubset::single(0);
        let value = BitString::from_bits(&[true]);
        let mut rng = cfg.rng(EXP, 99);
        let trials = 40_000u64;
        let failures = (0..trials)
            .filter(|&i| {
                sketcher
                    .sketch_value_with_stats(UserId(i), &subset, &value, &mut rng)
                    .is_err()
            })
            .count();
        let measured = failures as f64 / trials as f64;
        let exact = failure_prob_exact(bits, p);
        assert!(
            (measured - exact).abs() < 0.01,
            "measured {measured} vs exact {exact}"
        );
        assert!(measured <= failure_prob_bound(bits, p) + 0.01);
    }
}
