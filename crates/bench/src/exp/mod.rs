//! The experiment suite: one module per EXPERIMENTS.md entry.

pub mod e01_sketch_length;
pub mod e02_correctness;
pub mod e03_privacy_ratio;
pub mod e04_budget;
pub mod e05_width_error;
pub mod e06_size;
pub mod e07_runtime;
pub mod e08_means;
pub mod e09_intervals;
pub mod e10_combined;
pub mod e11_sumlt;
pub mod e12_combine;
pub mod e13_sulq;
pub mod e14_trees;
pub mod e15_attacks;
pub mod e16_composition;
pub mod e17_functions;
pub mod e18_protocol;
pub mod e19_frontier;
pub mod e20_throughput;
pub mod e21_service;
pub mod e22_cluster;
pub mod e23_plans;
pub mod e24_scatter;
pub mod e25_lanes;
pub mod e26_obs;
pub mod e27_profile;

use crate::common::Config;
use crate::report::Table;

/// Every experiment: id, one-line description, runner.
pub type Runner = fn(&Config) -> Vec<Table>;

/// The experiment registry in EXPERIMENTS.md order.
#[must_use]
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "e1",
            "Lemma 3.1: minimal sketch length & failure probability",
            e01_sketch_length::run,
        ),
        (
            "e2",
            "Lemma 3.2: sketch bias on true vs other values",
            e02_correctness::run,
        ),
        (
            "e3",
            "Lemma 3.3: exact privacy ratio vs bound",
            e03_privacy_ratio::run,
        ),
        (
            "e4",
            "Corollary 3.4: multi-sketch privacy budgets",
            e04_budget::run,
        ),
        (
            "e5",
            "Lemma 4.1: width-independent error vs RR baselines",
            e05_width_error::run,
        ),
        ("e6", "Size claim: loglog(M)-bit sketches", e06_size::run),
        (
            "e7",
            "Running time: Algorithm 1 iterations",
            e07_runtime::run,
        ),
        ("e8", "§4.1: means and inner products", e08_means::run),
        ("e9", "§4.1: interval queries", e09_intervals::run),
        (
            "e10",
            "§4.1: combined constraints & conditional means",
            e10_combined::run,
        ),
        (
            "e11",
            "Appendix E: a+b < 2^r via virtual bits",
            e11_sumlt::run,
        ),
        (
            "e12",
            "Appendix F: sketch combining & conditioning of V",
            e12_combine::run,
        ),
        (
            "e13",
            "Appendix A: input vs output perturbation",
            e13_sulq::run,
        ),
        ("e14", "§4.1: decision trees", e14_trees::run),
        (
            "e15",
            "Attack gallery: hashing/retention fall, sketches stand",
            e15_attacks::run,
        ),
        (
            "e16",
            "Conclusions: quadratically more sketches via advanced composition",
            e16_composition::run,
        ),
        (
            "e17",
            "Conclusions: sketching arbitrary functions of a profile",
            e17_functions::run,
        ),
        (
            "e18",
            "Deployment protocol + non-binary categorical mining",
            e18_protocol::run,
        ),
        (
            "e19",
            "Ablation: the privacy-utility frontier over p",
            e19_frontier::run,
        ),
        (
            "e20",
            "Throughput: scalar vs batched Algorithm 2 at 1M sketches",
            e20_throughput::run,
        ),
        (
            "e21",
            "Service: loopback TCP ingest + query throughput, WAL fidelity",
            e21_service::run,
        ),
        (
            "e22",
            "Cluster: sharded scatter-gather throughput at 1/2/4 shards",
            e22_cluster::run,
        ),
        (
            "e23",
            "Query plans: plan-path vs legacy-path per family, 1/2/4 shards",
            e23_plans::run,
        ),
        (
            "e24",
            "Scatter-gather: parallel vs sequential fan-out per family",
            e24_scatter::run,
        ),
        (
            "e25",
            "PRF lanes: SIMD multi-stream SipHash, lanes x cores matrix",
            e25_lanes::run,
        ),
        (
            "e26",
            "Observability: instrumented vs runtime-off scan overhead",
            e26_obs::run,
        ),
        (
            "e27",
            "Profiling: span-traced vs profiling-off scan overhead",
            e27_profile::run,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let reg = registry();
        assert_eq!(reg.len(), 27);
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 27);
    }
}
