//! E14 — §4.1 decision-tree queries on the epidemiology survey.
//!
//! The fraction of users accepted by a decision tree equals the sum of the
//! accepting-path conjunction frequencies; each path is one sketch query.

use crate::common::{publish, Config};
use crate::report::{f, Table};
use psketch_core::{BitSubset, Sketcher};
use psketch_data::SurveyModel;
use psketch_queries::{DecisionTree, QueryEngine};

const EXP: u64 = 14;
const P: f64 = 0.3;

/// The paper's intro query as a tree: HIV+ and NOT AIDS.
fn hiv_not_aids() -> DecisionTree {
    DecisionTree::split(
        0, // hiv_positive
        DecisionTree::Leaf(false),
        DecisionTree::split(1, DecisionTree::Leaf(true), DecisionTree::Leaf(false)),
    )
}

/// A deeper triage tree over smoker/inhaled/urban.
fn triage() -> DecisionTree {
    DecisionTree::split(
        3, // smoker
        DecisionTree::split(
            2, // inhaled
            DecisionTree::Leaf(false),
            DecisionTree::split(4, DecisionTree::Leaf(false), DecisionTree::Leaf(true)),
        ),
        DecisionTree::split(4, DecisionTree::Leaf(true), DecisionTree::Leaf(true)),
    )
}

/// Runs E14.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E14 — decision trees over the epidemiology survey",
        &["tree", "depth", "paths", "truth", "estimate", "|err|"],
    );
    let m = cfg.m(80_000);
    let model = SurveyModel::epidemiology();
    let mut rng = cfg.rng(EXP, 0);
    let pop = model.generate(m, &mut rng);
    let params = cfg.params(P, 10, EXP);
    let sketcher = Sketcher::new(params);
    let engine = QueryEngine::new(params);

    let trees = [("hiv+ & !aids", hiv_not_aids()), ("triage", triage())];
    let mut subsets: Vec<BitSubset> = Vec::new();
    for (_, tree) in &trees {
        subsets.extend(tree.to_linear_query().required_subsets());
    }
    subsets.sort();
    subsets.dedup();
    let (db, _) = publish(&pop, &sketcher, &subsets, &mut rng);

    for (name, tree) in &trees {
        let lq = tree.to_linear_query();
        let ans = engine.linear(&db, &lq).expect("paths published");
        let truth = pop.true_fraction_by(|p| tree.evaluate(p));
        t.row(vec![
            (*name).to_string(),
            tree.depth().to_string(),
            lq.num_queries().to_string(),
            f(truth, 4),
            f(ans.value, 4),
            f((ans.value - truth).abs(), 4),
        ]);
    }
    t.note("'hiv+ & !aids' is the paper's introductory motivating query");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_estimates_track_truth() {
        let tables = run(&Config::quick());
        assert_eq!(tables[0].rows.len(), 2);
        for row in &tables[0].rows {
            let err: f64 = row[5].parse().unwrap();
            assert!(err < 0.1, "{}: err {err}", row[0]);
        }
    }

    #[test]
    fn intro_tree_matches_hand_semantics() {
        let tree = hiv_not_aids();
        use psketch_core::Profile;
        assert!(tree.evaluate(&Profile::from_bits(&[true, false, false, false, false])));
        assert!(!tree.evaluate(&Profile::from_bits(&[true, true, false, false, false])));
        assert!(!tree.evaluate(&Profile::from_bits(&[false, false, false, false, false])));
    }
}
