//! E21 — networked service throughput: loopback TCP end-to-end.
//!
//! The paper's deployment story is a live service; this experiment
//! measures the `psketch-server` stack — framed wire protocol, threaded
//! worker pool, `Coordinator::accept_batch` ingest, snapshot-backed
//! query serving — over loopback TCP with ≥100k sketch records:
//!
//! * submissions/second with concurrent submitting clients (WAL off and
//!   WAL on, the latter paying an fsync per batch before each ack);
//! * conjunctive and distribution queries/second from a warm analyst
//!   connection;
//! * bit-for-bit agreement between served answers and the in-process
//!   estimator, and between pre-restart and post-WAL-replay answers.
//!
//! Emits `BENCH_service.json` next to `BENCH_throughput.json` so the
//! service numbers accumulate a trajectory across revisions.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{BitString, BitSubset, ConjunctiveEstimator, Profile, UserId};
use psketch_prf::GlobalKey;
use psketch_protocol::{Announcement, AnnouncementBuilder, Coordinator, Submission, UserAgent};
use psketch_server::wal::WalConfig;
use psketch_server::{Client, Server, ServerConfig};
use std::time::{Duration, Instant};

const EXP: u64 = 21;
const TIMEOUT: Duration = Duration::from_secs(30);

fn announcement(cfg: &Config, m: usize) -> Announcement {
    AnnouncementBuilder::new(EXP, 0.3, m as u64, 1e-6)
        .global_key(*GlobalKey::from_seed(cfg.seed ^ EXP).as_bytes())
        .subset(BitSubset::single(0))
        .subset(BitSubset::single(1))
        .subset(BitSubset::range(0, 2))
        .build()
        .expect("static announcement is valid")
}

fn make_submissions(cfg: &Config, ann: &Announcement, m: usize) -> Vec<Submission> {
    let mut rng = cfg.rng(EXP, 0);
    (0..m as u64)
        .map(|i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, f64::MAX);
            agent
                .participate(ann, &mut rng)
                .expect("participation cannot fail at these parameters")
        })
        .collect()
}

/// Ingests every submission through `clients` concurrent connections
/// and returns submissions/second.
fn ingest_rate(addr: std::net::SocketAddr, subs: &[Submission], clients: usize) -> f64 {
    let chunk = subs.len().div_ceil(clients);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for slice in subs.chunks(chunk) {
            scope.spawn(move || {
                let mut client = Client::connect(addr, TIMEOUT).expect("loopback connect");
                let ack = client.submit_chunked(slice, 500).expect("submit");
                assert_eq!(ack.rejected, 0, "fresh ids cannot be rejected");
            });
        }
    });
    subs.len() as f64 / start.elapsed().as_secs_f64()
}

/// Runs E21.
///
/// # Panics
///
/// Panics if the loopback service misbehaves or the output file cannot
/// be written.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &Config) -> Vec<Table> {
    // 40k users × 3 subsets = 120k records at full scale.
    let m = cfg.m(40_000);
    let records = m * 3;
    let clients = 4;
    let ann = announcement(cfg, m);
    let subs = make_submissions(cfg, &ann, m);

    // --- Ingest, WAL off. ---
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            workers: clients + 2,
            wal: None,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let subs_per_sec = ingest_rate(addr, &subs, clients);

    // --- Query rates off the same populated server. ---
    let mut analyst = Client::connect(addr, TIMEOUT).expect("connect analyst");
    let pair = BitSubset::range(0, 2);
    let value = BitString::from_bits(&[true, true]);
    let reps = cfg.reps(200);
    let start = Instant::now();
    for _ in 0..reps {
        let _ = analyst
            .conjunctive(pair.clone(), value.clone())
            .expect("conjunctive query");
    }
    let conj_qps = reps as f64 / start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..reps {
        let _ = analyst.distribution(pair.clone()).expect("distribution");
    }
    let dist_qps = reps as f64 / start.elapsed().as_secs_f64();

    // --- Served answers match the in-process oracle bit-for-bit. ---
    let oracle = Coordinator::new(ann.clone());
    oracle.accept_batch(&subs);
    let estimator = ConjunctiveEstimator::new(ann.validate().expect("announcement validates"));
    let served = analyst
        .conjunctive(pair.clone(), value.clone())
        .expect("conjunctive query");
    let q = psketch_core::ConjunctiveQuery::new(pair.clone(), value.clone()).expect("widths match");
    let local = estimator
        .estimate(oracle.pool(), &q)
        .expect("oracle populated");
    assert_eq!(
        served.fraction.to_bits(),
        local.fraction.to_bits(),
        "served estimate diverged from the in-process estimator"
    );
    drop(analyst);
    server.shutdown();

    // --- Ingest, WAL on (fsync per batch), then replay fidelity. ---
    let wal_dir = std::env::temp_dir().join(format!("psketch-e21-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wal_config = || ServerConfig {
        workers: clients + 2,
        wal: Some(WalConfig::new(&wal_dir)),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", ann.clone(), wal_config()).expect("bind loopback");
    let wal_subs_per_sec = ingest_rate(server.local_addr(), &subs, clients);
    let mut analyst = Client::connect(server.local_addr(), TIMEOUT).expect("connect analyst");
    let before = analyst
        .conjunctive(pair.clone(), value.clone())
        .expect("pre-restart query");
    drop(analyst);
    server.shutdown();

    let server = Server::start("127.0.0.1:0", ann, wal_config()).expect("restart from wal");
    let mut analyst = Client::connect(server.local_addr(), TIMEOUT).expect("reconnect analyst");
    let after = analyst
        .conjunctive(pair, value)
        .expect("post-restart query");
    assert_eq!(
        before.fraction.to_bits(),
        after.fraction.to_bits(),
        "WAL replay changed the answer"
    );
    drop(analyst);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);

    let mut t = Table::new(
        format!(
            "E21 — loopback service throughput ({m} users x 3 subsets = {records} records, \
             {clients} clients)"
        ),
        &["metric", "rate"],
    );
    t.row(vec![
        "ingest, wal off (submissions/s)".into(),
        f(subs_per_sec, 0),
    ]);
    t.row(vec![
        "ingest, wal off (records/s)".into(),
        f(subs_per_sec * 3.0, 0),
    ]);
    t.row(vec![
        "ingest, wal fsync/batch (submissions/s)".into(),
        f(wal_subs_per_sec, 0),
    ]);
    t.row(vec![
        "conjunctive queries/s (1 shard scan each)".into(),
        f(conj_qps, 1),
    ]);
    t.row(vec![
        "distribution queries/s (4 values, one pass)".into(),
        f(dist_qps, 1),
    ]);
    t.note("served answers verified bit-identical to the in-process estimator");
    t.note("post-restart WAL replay verified bit-identical to pre-restart answers");

    let json = format!(
        "{{\n  \"experiment\": \"e21_service\",\n  \"users\": {m},\n  \"records\": {records},\n  \
         \"clients\": {clients},\n  \"submissions_per_sec\": {subs_per_sec:.1},\n  \
         \"records_per_sec\": {:.1},\n  \"submissions_per_sec_wal\": {wal_subs_per_sec:.1},\n  \
         \"conjunctive_queries_per_sec\": {conj_qps:.1},\n  \
         \"distribution_queries_per_sec\": {dist_qps:.1}\n}}\n",
        subs_per_sec * 3.0,
    );
    if cfg.quick {
        t.note("quick mode: BENCH_service.json not written");
    } else {
        std::fs::write("BENCH_service.json", json).expect("write BENCH_service.json");
        t.note("wrote BENCH_service.json");
    }

    vec![t]
}
