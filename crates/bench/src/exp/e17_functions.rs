//! E17 — the Conclusions' generalization: sketching arbitrary functions
//! of a profile.
//!
//! Users sketch `f(d)` for public functions `f` with small output ranges;
//! the analyst recovers `freq(f(d) = v)` with the same machinery and the
//! same privacy bound. Functions here: a popcount bucket, a threshold
//! predicate, and a parity — none of which is a subset projection.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{
    FunctionEstimator, FunctionId, FunctionRecord, FunctionSketcher, Profile, UserId,
};
use psketch_data::SurveyModel;

const EXP: u64 = 17;
const P: f64 = 0.3;

/// Runs E17.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E17 — sketching arbitrary functions f(d) (epidemiology survey)",
        &["function", "output", "truth", "estimate", "|err|"],
    );
    let m = cfg.m(60_000);
    let model = SurveyModel::epidemiology();
    let mut rng = cfg.rng(EXP, 0);
    let pop = model.generate(m, &mut rng);
    let params = cfg.params(P, 10, EXP);
    let sketcher = FunctionSketcher::new(params);
    let estimator = FunctionEstimator::new(params);

    // f1: risk bucket = min(#risk factors among {hiv, inhaled, smoker}, 3).
    let bucket =
        |p: &Profile| (u64::from(p.get(0)) + u64::from(p.get(2)) + u64::from(p.get(3))).min(3);
    // f2: "any health flag" threshold predicate.
    let any_flag = |p: &Profile| u64::from(p.get(0) || p.get(1));
    // f3: parity of the whole profile (a maximally non-conjunctive f).
    let parity = |p: &Profile| (p.bits().count_ones() % 2) as u64;

    type NamedFn = (&'static str, FunctionId, Box<dyn Fn(&Profile) -> u64>);
    let functions: Vec<NamedFn> = vec![
        ("risk bucket", FunctionId::new(1, 2), Box::new(bucket)),
        ("any health flag", FunctionId::new(2, 1), Box::new(any_flag)),
        ("profile parity", FunctionId::new(3, 1), Box::new(parity)),
    ];

    for (name, fid, func) in &functions {
        let mut records = Vec::with_capacity(pop.len());
        for (id, profile) in pop.iter() {
            let s = sketcher
                .sketch(id, profile, *fid, |p| func(p), &mut rng)
                .expect("10-bit space does not exhaust");
            records.push(FunctionRecord { id, sketch: s });
        }
        for v in 0..(1u64 << fid.width).min(4) {
            let est = estimator.estimate(*fid, &records, v).expect("records");
            let truth = pop.true_fraction_by(|p| func(p) == v);
            t.row(vec![
                (*name).to_string(),
                v.to_string(),
                f(truth, 4),
                f(est.fraction, 4),
                f((est.fraction - truth).abs(), 4),
            ]);
        }
        let _ = UserId(0);
    }
    t.note("§5: 'the same privacy guarantees apply' — and so does Algorithm 2's accuracy");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_estimates_track_truth() {
        let tables = run(&Config::quick());
        for row in &tables[0].rows {
            let err: f64 = row[4].parse().unwrap();
            assert!(err < 0.06, "{} output {}: err {err}", row[0], row[1]);
        }
        // All three functions appear.
        let names: std::collections::HashSet<&str> =
            tables[0].rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(names.len(), 3);
    }
}
