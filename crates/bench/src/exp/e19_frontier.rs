//! E19 — the privacy–utility frontier (ablation over `p`).
//!
//! The bias `p` is the paper's single dial: towards 0 it buys accuracy
//! (denominator `1 − 2p` grows) and spends privacy (`((1−p)/p)⁴`
//! explodes); towards 1/2 the reverse. No figure in the paper plots this
//! trade-off, but every deployment must choose a point on it — this
//! ablation table makes the frontier concrete, with both measured error
//! and the Lemma 4.1 prediction at each `p`.

use crate::common::{publish, Config};
use crate::report::{f, rms, Table};
use psketch_core::theory::{privacy_ratio_bound, query_error_bound};
use psketch_core::{ConjunctiveEstimator, ConjunctiveQuery, Sketcher};
use psketch_data::PlantedConjunction;

const EXP: u64 = 19;

/// Runs E19.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E19 — privacy–utility frontier over p (k = 4, truth = 0.5)",
        &[
            "p",
            "eps/sketch (ratio-1)",
            "M",
            "measured RMS",
            "Lemma 4.1 bound (δ=0.32)",
        ],
    );
    let m = cfg.m(20_000);
    let reps = cfg.reps(10);
    for &p in &[0.05f64, 0.15, 0.25, 0.35, 0.45, 0.49] {
        let errors: Vec<f64> = (0..reps)
            .map(|rep| {
                let mut rng = cfg.rng(EXP, ((p * 1000.0) as u64) << 16 | rep);
                let gen = PlantedConjunction::all_ones(4, 4, 0.5);
                let pop = gen.generate(m, &mut rng);
                let truth = pop.true_fraction(&gen.subset, &gen.value);
                let params = cfg.params(p, 12, EXP ^ rep);
                let sketcher = Sketcher::new(params);
                let (db, _) = publish(&pop, &sketcher, std::slice::from_ref(&gen.subset), &mut rng);
                let q =
                    ConjunctiveQuery::new(gen.subset.clone(), gen.value.clone()).expect("widths");
                ConjunctiveEstimator::new(params)
                    .estimate(&db, &q)
                    .expect("published")
                    .fraction
                    - truth
            })
            .collect();
        t.row(vec![
            f(p, 2),
            f(privacy_ratio_bound(p) - 1.0, 3),
            m.to_string(),
            f(rms(&errors), 4),
            f(query_error_bound(m as u64, p, 0.32), 4),
        ]);
    }
    t.note("small p: cheap accuracy, catastrophic privacy; p -> 1/2: strong privacy, 1/(1-2p) error growth");
    t.note("every deployment picks a point here; the paper's examples sit around p = 0.25..0.45");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_is_monotone_both_ways() {
        let tables = run(&Config::quick());
        let rows = &tables[0].rows;
        let eps: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let err: Vec<f64> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let bound: Vec<f64> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // Privacy cost decreases with p; the theoretical error bound
        // increases with p.
        assert!(
            eps.windows(2).all(|w| w[1] < w[0]),
            "eps not decreasing: {eps:?}"
        );
        assert!(
            bound.windows(2).all(|w| w[1] > w[0]),
            "bound not increasing: {bound:?}"
        );
        // Measured error stays under the bound at every point.
        for (e, b) in err.iter().zip(&bound) {
            assert!(e <= b, "measured {e} above bound {b}");
        }
        // And the endpoints differ materially (the frontier is real).
        assert!(err.last().unwrap() > &(err[0] * 2.0) || err[0] < 0.01);
    }
}
