//! E25 — PRF lane throughput: the lanes × cores scaling matrix.
//!
//! The multi-lane SipHash evaluator (`psketch_prf::lanes`) advances 4 or
//! 8 interleaved hash streams per instruction sequence; the estimator's
//! `thread::scope` chunking multiplies that across cores. This experiment
//! measures the full matrix — lane width ∈ {1, 4, 8} × worker threads ∈
//! {1, 2, 4} — over the same 1M-record shard scan e20 measures, asserts
//! that every cell produces the *same count* as the scalar reference
//! (lane paths are bit-identical, so this must hold exactly), and rewrites
//! `BENCH_throughput.json` with the matrix alongside the e20-style
//! baseline fields.
//!
//! In quick mode this doubles as the CI throughput smoke: identity is
//! asserted at every width, and the best lane width must not be
//! slower than the scalar loop beyond a generous noise margin — a
//! catastrophic-regression guard, not a precision benchmark.

use crate::common::Config;
use crate::report::{f, Table};
use psketch_core::{
    set_lane_width, BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, HFunction,
    Profile, SketchDb, Sketcher, UserId, SUPPORTED_LANE_WIDTHS,
};
use std::time::Instant;

const EXP: u64 = 25;

/// Worker-thread counts for the cores dimension of the matrix.
const CORE_STEPS: [usize; 3] = [1, 2, 4];

/// Best observed rate over `reps` runs of `scan` (which returns the
/// satisfying count, checked against `expected` every time).
fn best_rate(reps: u64, records: usize, expected: usize, mut scan: impl FnMut() -> usize) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let ones = scan();
            let rate = records as f64 / start.elapsed().as_secs_f64();
            assert_eq!(ones, expected, "lane scan diverged from the scalar oracle");
            rate
        })
        .fold(0.0, f64::max)
}

/// Runs E25.
///
/// # Panics
///
/// Panics if any lane/thread combination miscounts, if the best lane
/// width regresses far below the scalar loop, or if
/// `BENCH_throughput.json` cannot be written.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &Config) -> Vec<Table> {
    let m = cfg.m(1_000_000);
    let k = 8usize;
    let params = cfg.params(0.3, 10, EXP);
    let sketcher = Sketcher::new(params);
    let subset = BitSubset::range(0, k as u32);
    let db = SketchDb::new();
    let mut rng = cfg.rng(EXP, 0);
    for i in 0..m as u64 {
        let profile = Profile::from_bits(&vec![i % 3 == 0; k]);
        let sketch = sketcher
            .sketch(UserId(i), &profile, &subset, &mut rng)
            .expect("sketching at ell=10 cannot exhaust");
        db.insert(subset.clone(), UserId(i), sketch);
    }

    // The raw scan under measurement: PreparedH::count_ones over the
    // snapshot columns — exactly the estimator's inner loop, driven
    // directly so the thread count is ours to choose per cell.
    let value = BitString::from_bits(&vec![true; k]);
    let prepared = HFunction::new(&params).prepare_query(&subset, &value);
    let snapshot = db.snapshot(&subset).expect("populated");
    let (ids, keys) = (snapshot.ids(), snapshot.keys());

    // Scalar oracle count: every matrix cell must reproduce it exactly.
    set_lane_width(1).expect("1 is a supported width");
    let expected = prepared.count_ones(ids, keys);

    let reps = if cfg.quick { 30 } else { cfg.reps(7) };
    let scan_with_threads = |threads: usize| -> usize {
        if threads <= 1 {
            return prepared.count_ones(ids, keys);
        }
        let chunk = ids.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .zip(keys.chunks(chunk))
                .map(|(ids, keys)| scope.spawn(|| prepared.count_ones(ids, keys)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("count worker panicked"))
                .sum()
        })
    };

    let mut matrix: Vec<(usize, usize, f64)> = Vec::new();
    for &lanes in SUPPORTED_LANE_WIDTHS {
        set_lane_width(lanes).expect("supported width");
        for cores in CORE_STEPS {
            let rate = best_rate(reps, m, expected, || scan_with_threads(cores));
            matrix.push((lanes, cores, rate));
        }
    }
    set_lane_width(0).expect("0 restores auto-probing");

    // The full estimator path at auto width (continuity with e20's
    // batched figure, and a check that estimates — not just counts —
    // are identical to the scalar-width run).
    let estimator = ConjunctiveEstimator::new(params);
    let query = ConjunctiveQuery::new(subset, value).expect("widths match");
    let auto_estimate = estimator.estimate(&db, &query).expect("populated");
    set_lane_width(1).expect("supported width");
    let scalar_estimate = estimator.estimate(&db, &query).expect("populated");
    set_lane_width(0).expect("supported width");
    assert_eq!(
        auto_estimate.fraction.to_bits(),
        scalar_estimate.fraction.to_bits(),
        "auto-lane estimate not float-bit-identical to the scalar estimate"
    );
    let estimator_rate = best_rate(reps, m, expected, || {
        let e = estimator.estimate(&db, &query).expect("populated");
        assert_eq!(e.raw.to_bits(), auto_estimate.raw.to_bits());
        expected
    });

    let cell = |lanes: usize, cores: usize| -> f64 {
        matrix
            .iter()
            .find(|&&(l, c, _)| l == lanes && c == cores)
            .map_or(f64::NAN, |&(_, _, r)| r)
    };
    let scalar_1core = cell(1, 1);
    let (best_lanes, best_1core) = SUPPORTED_LANE_WIDTHS[1..]
        .iter()
        .map(|&l| (l, cell(l, 1)))
        .fold(
            (1, scalar_1core),
            |best, cand| {
                if cand.1 > best.1 {
                    cand
                } else {
                    best
                }
            },
        );
    // CI guard: the lane path must not be slower than the scalar loop.
    // The 0.8 factor absorbs scheduler noise at smoke sizes; a true lane
    // regression shows up as a multiple, not a percentage.
    assert!(
        best_1core >= 0.8 * scalar_1core,
        "lane path regressed below the scalar loop: best {best_1core:.0} vs scalar {scalar_1core:.0} records/s"
    );

    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut t = Table::new(
        format!("E25 — PRF lane throughput at M = {m} (k = {k}, p = 0.3), records/s"),
        &[
            "lanes",
            "1 thread",
            "2 threads",
            "4 threads",
            "speedup (1T)",
        ],
    );
    for &lanes in SUPPORTED_LANE_WIDTHS {
        t.row(vec![
            if lanes == 1 {
                "1 (scalar)".into()
            } else {
                format!("{lanes}")
            },
            f(cell(lanes, 1), 0),
            f(cell(lanes, 2), 0),
            f(cell(lanes, 4), 0),
            format!("{:.2}x", cell(lanes, 1) / scalar_1core),
        ]);
    }
    t.note(format!(
        "host exposes {host_cores} core(s): thread counts above that are \
         oversubscribed on this box and shown for the matrix shape, not as \
         scaling evidence"
    ));
    t.note(format!(
        "auto-probed lane width {} | full estimator path (auto lanes): {} records/s",
        psketch_core::probe_lane_width(),
        f(estimator_rate, 0)
    ));

    let matrix_json: Vec<String> = matrix
        .iter()
        .map(|&(lanes, cores, rate)| {
            format!("{{\"lanes\": {lanes}, \"threads\": {cores}, \"records_per_sec\": {rate:.1}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e25_lanes\",\n  \"records\": {m},\n  \"width\": {k},\n  \"p\": 0.3,\n  \
         \"host_cores\": {host_cores},\n  \
         \"host_cores_note\": \"thread counts above host_cores are oversubscribed on this host\",\n  \
         \"probed_lane_width\": {},\n  \
         \"scalar_records_per_sec\": {scalar_1core:.1},\n  \
         \"batched_records_per_sec\": {estimator_rate:.1},\n  \
         \"best_single_core_records_per_sec\": {best_1core:.1},\n  \
         \"best_single_core_lanes\": {best_lanes},\n  \
         \"lane_speedup_vs_scalar\": {:.3},\n  \
         \"lanes_matrix\": [\n    {}\n  ]\n}}\n",
        psketch_core::probe_lane_width(),
        best_1core / scalar_1core,
        matrix_json.join(",\n    "),
    );
    if cfg.quick {
        t.note("quick mode: BENCH_throughput.json not written");
    } else {
        std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
        t.note("wrote BENCH_throughput.json");
    }

    vec![t]
}
