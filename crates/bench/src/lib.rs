//! # psketch-bench — the experiment harness
//!
//! Regenerates every claim of *Privacy via Pseudorandom Sketches* as a
//! measured table. The paper is a theory paper with no experimental
//! tables of its own, so the "evaluation" to reproduce is its collection
//! of lemmas, worked examples and comparative claims; EXPERIMENTS.md maps
//! each to an experiment id (E1–E15) implemented under [`exp`].
//!
//! Run everything: `cargo run -p psketch-bench --release --bin experiments`
//! Run one:        `cargo run -p psketch-bench --release --bin experiments -- e5`
//! Smoke mode:     append `--quick`.
//!
//! Criterion micro-benchmarks (PRF, sketching, queries, combining,
//! baselines) live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod exp;
pub mod report;

pub use common::Config;
pub use report::Table;
