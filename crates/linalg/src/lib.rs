//! # psketch-linalg — small dense linear algebra
//!
//! A dependency-free linear-algebra substrate sized for the needs of the
//! *Privacy via Pseudorandom Sketches* reproduction:
//!
//! * [`matrix`] — dense row-major [`matrix::Matrix`] with checked
//!   constructors and arithmetic;
//! * [`lu`] — LU factorization with partial pivoting (solve, inverse,
//!   determinant), used by the Appendix F sketch-combining system and the
//!   randomized-response matrix estimator;
//! * [`norms`] — induced norms and condition numbers for the Appendix F
//!   conditioning experiment (E12);
//! * [`comb`] — binomial/hypergeometric machinery for the equation (6)
//!   transition probabilities and the exact privacy analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comb;
pub mod lu;
pub mod matrix;
pub mod norms;

pub use comb::{binomial_f64, binomial_pmf, binomial_u128, hypergeometric_pmf, ln_binomial};
pub use lu::{inverse, solve, Lu};
pub use matrix::{Matrix, MatrixError};
pub use norms::{condition_number_1, condition_number_inf, norm_1, norm_frobenius, norm_inf};
