//! Combinatorial helpers: binomial coefficients and related probabilities.
//!
//! The Appendix F transition probabilities (equation (6) of the paper) and
//! the exact Lemma 3.3 analysis both need binomial coefficients — in exact
//! `f64` where they fit, and in log space where they do not.

/// Exact binomial coefficient `C(n, k)` as `u128`.
///
/// Returns `None` on overflow; all uses inside the workspace are far below
/// that (k ≤ 64 style parameters).
#[must_use]
pub fn binomial_u128(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul(u128::from(n - i))?;
        acc /= u128::from(i + 1);
    }
    Some(acc)
}

/// Binomial coefficient as `f64` (exact while representable, then rounded).
#[must_use]
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    match binomial_u128(n, k) {
        Some(v) if v <= (1u128 << 53) => v as f64,
        _ => ln_binomial(n, k).exp(),
    }
}

/// Natural log of `C(n, k)` via `ln Γ`.
///
/// Returns `f64::NEG_INFINITY` for `k > n` (the coefficient is zero).
#[must_use]
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` (exact table for small `n`, Stirling series beyond).
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    if n < SMALL_FACTORIALS.len() as u64 {
        return SMALL_FACTORIALS[n as usize].ln();
    }
    // Stirling series with three correction terms: accurate to ~1e-12 for
    // n ≥ 20, far beyond the statistical tolerances of the experiments.
    let x = n as f64;
    let inv = 1.0 / x;
    (x + 0.5) * x.ln() - x + 0.5 * (2.0 * core::f64::consts::PI).ln() + inv / 12.0
        - inv.powi(3) / 360.0
        + inv.powi(5) / 1260.0
}

const SMALL_FACTORIALS: [f64; 21] = [
    1.0,
    1.0,
    2.0,
    6.0,
    24.0,
    120.0,
    720.0,
    5_040.0,
    40_320.0,
    362_880.0,
    3_628_800.0,
    39_916_800.0,
    479_001_600.0,
    6_227_020_800.0,
    87_178_291_200.0,
    1_307_674_368_000.0,
    20_922_789_888_000.0,
    355_687_428_096_000.0,
    6_402_373_705_728_000.0,
    121_645_100_408_832_000.0,
    2_432_902_008_176_640_000.0,
];

/// Probability mass `P[Binomial(n, p) = k]`, computed in log space for
/// numerical robustness.
#[must_use]
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // ln(1-p) computed as ln_1p(-p) for accuracy when p is near zero.
    let log_pmf = ln_binomial(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (-p).ln_1p();
    log_pmf.exp()
}

/// Hypergeometric mass: probability of `k` successes in `draws` draws
/// without replacement from a population of `total` with `successes` marked.
#[must_use]
pub fn hypergeometric_pmf(total: u64, successes: u64, draws: u64, k: u64) -> f64 {
    if k > draws || k > successes || draws.saturating_sub(k) > total - successes {
        return 0.0;
    }
    (ln_binomial(successes, k) + ln_binomial(total - successes, draws - k)
        - ln_binomial(total, draws))
    .exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_exact_values() {
        assert_eq!(binomial_u128(0, 0), Some(1));
        assert_eq!(binomial_u128(5, 2), Some(10));
        assert_eq!(binomial_u128(10, 5), Some(252));
        assert_eq!(binomial_u128(64, 32), Some(1_832_624_140_942_590_534));
        assert_eq!(binomial_u128(5, 7), Some(0));
    }

    #[test]
    fn binomial_f64_matches_exact() {
        for n in 0..30u64 {
            for k in 0..=n {
                let exact = binomial_u128(n, k).unwrap() as f64;
                assert!((binomial_f64(n, k) - exact).abs() <= exact * 1e-12);
            }
        }
    }

    #[test]
    fn ln_binomial_of_large_n_is_finite_and_monotone_in_middle() {
        let edge = ln_binomial(1000, 1);
        let middle = ln_binomial(1000, 500);
        assert!(middle.is_finite());
        assert!(middle > edge);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_factorial_against_direct_product() {
        for n in [0u64, 1, 5, 20, 25, 50, 170] {
            let direct: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_factorial(n) - direct).abs() < 1e-9,
                "ln {n}! mismatch: {} vs {direct}",
                ln_factorial(n)
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.5), (40, 0.05)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_degenerate_probabilities() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 1, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
    }

    #[test]
    fn pmf_hand_checked_value() {
        // P[Bin(4, 0.5) = 2] = 6/16.
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn hypergeometric_sums_to_one_and_matches_hand_value() {
        let total = 10;
        let succ = 4;
        let draws = 3;
        let sum: f64 = (0..=draws)
            .map(|k| hypergeometric_pmf(total, succ, draws, k))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // P[k=0] = C(6,3)/C(10,3) = 20/120.
        assert!((hypergeometric_pmf(total, succ, draws, 0) - 20.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn hypergeometric_impossible_cases_are_zero() {
        assert_eq!(hypergeometric_pmf(10, 4, 3, 5), 0.0);
        assert_eq!(hypergeometric_pmf(10, 4, 8, 1), 0.0); // needs ≥4 failures drawn from 6
    }
}
