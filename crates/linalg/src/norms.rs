//! Matrix norms and condition numbers.
//!
//! Appendix F closes with: "an empirical analysis of the conditioning
//! number of the matrix V suggests that it decreases exponentially in k,
//! with the base of the exponent proportional to 1/(p − 1/2)" — i.e. the
//! recovery matrix becomes exponentially badly conditioned as conjunction
//! width grows. Experiment E12 measures exactly `κ₁(V) = ‖V‖₁·‖V⁻¹‖₁`
//! using this module.

use crate::lu::Lu;
use crate::matrix::{Matrix, MatrixError};

/// The induced 1-norm (maximum absolute column sum).
#[must_use]
pub fn norm_1(a: &Matrix) -> f64 {
    (0..a.cols())
        .map(|j| (0..a.rows()).map(|i| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// The induced ∞-norm (maximum absolute row sum).
#[must_use]
pub fn norm_inf(a: &Matrix) -> f64 {
    (0..a.rows())
        .map(|i| a.row(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// The Frobenius norm.
#[must_use]
pub fn norm_frobenius(a: &Matrix) -> f64 {
    (0..a.rows())
        .map(|i| a.row(i).iter().map(|v| v * v).sum::<f64>())
        .sum::<f64>()
        .sqrt()
}

/// The 1-norm condition number `κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁`.
///
/// Returns `f64::INFINITY` when the matrix is singular, matching the
/// conventional limit.
///
/// # Errors
///
/// Returns an error only for non-square input; singularity maps to `∞`.
pub fn condition_number_1(a: &Matrix) -> Result<f64, MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            dims: (a.rows(), a.cols()),
        });
    }
    match Lu::factorize(a) {
        Ok(lu) => {
            let inv = lu.inverse()?;
            Ok(norm_1(a) * norm_1(&inv))
        }
        Err(MatrixError::Singular { .. }) => Ok(f64::INFINITY),
        Err(e) => Err(e),
    }
}

/// The ∞-norm condition number `κ_∞(A)`.
///
/// # Errors
///
/// As [`condition_number_1`].
pub fn condition_number_inf(a: &Matrix) -> Result<f64, MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            dims: (a.rows(), a.cols()),
        });
    }
    match Lu::factorize(a) {
        Ok(lu) => {
            let inv = lu.inverse()?;
            Ok(norm_inf(a) * norm_inf(&inv))
        }
        Err(MatrixError::Singular { .. }) => Ok(f64::INFINITY),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_identity() {
        let i = Matrix::identity(4);
        assert_eq!(norm_1(&i), 1.0);
        assert_eq!(norm_inf(&i), 1.0);
        assert_eq!(norm_frobenius(&i), 2.0);
    }

    #[test]
    fn norm_1_is_max_column_sum() {
        let a = Matrix::from_rows(2, 2, vec![1.0, -3.0, 2.0, 4.0]).unwrap();
        assert_eq!(norm_1(&a), 7.0); // |−3| + |4|
        assert_eq!(norm_inf(&a), 6.0); // |2| + |4|
    }

    #[test]
    fn condition_of_identity_is_one() {
        assert!((condition_number_1(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
        assert!((condition_number_inf(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_of_scaled_identity_is_one() {
        let mut a = Matrix::identity(3);
        for i in 0..3 {
            a[(i, i)] = 100.0;
        }
        assert!((condition_number_1(&a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_of_diagonal_is_ratio() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = 10.0;
        a[(1, 1)] = 0.1;
        assert!((condition_number_1(&a).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_has_infinite_condition() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(condition_number_1(&a).unwrap(), f64::INFINITY);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(condition_number_1(&a).is_err());
    }

    #[test]
    fn condition_bounds_hold_for_hilbert_like_matrix() {
        // Hilbert matrices are a classic ill-conditioned family; κ grows
        // quickly with n, so κ(H₄) must dominate κ(H₂).
        let hilbert = |n: usize| Matrix::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64));
        let k2 = condition_number_1(&hilbert(2)).unwrap();
        let k4 = condition_number_1(&hilbert(4)).unwrap();
        assert!(k2 > 1.0);
        assert!(k4 > 100.0 * k2, "H4 should be much worse conditioned");
    }
}
