//! Dense row-major matrices of `f64`.
//!
//! The workspace only needs small dense systems — the Appendix F
//! sketch-combining matrix is `(k+1) × (k+1)` for conjunction width `k`, and
//! the randomized-response matrix estimator is the same shape — so a simple
//! contiguous row-major layout with checked constructors is the right tool.
//! No external linear-algebra dependency is used anywhere in the workspace.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors from matrix construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Data length does not equal `rows × cols`.
    ShapeMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Provided number of elements.
        actual: usize,
    },
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) where a
    /// factorization or solve requires invertibility.
    Singular {
        /// Pivot column at which elimination broke down.
        pivot: usize,
    },
    /// Operation requires a square matrix.
    NotSquare {
        /// Actual dimensions.
        dims: (usize, usize),
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape ({expected} expected)"
                )
            }
            Self::DimensionMismatch { left, right } => write!(
                f,
                "incompatible dimensions {}x{} and {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Self::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            Self::NotSquare { dims } => {
                write!(
                    f,
                    "operation requires a square matrix, got {}x{}",
                    dims.0, dims.1
                )
            }
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every entry.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[must_use]
    pub const fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows a row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row ≥ rows` (index contract, as with slice indexing).
    #[must_use]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows a row.
    ///
    /// # Panics
    ///
    /// Panics if `row ≥ rows`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if inner dimensions differ.
    pub fn mul(&self, other: &Self) -> Result<Self, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Maximum absolute entry-wise difference to `other`, or `None` when
    /// shapes differ. Useful for approximate equality in tests.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z[(1, 2)], 0.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(2, 2, vec![1.0; 4]).is_ok());
        assert_eq!(
            Matrix::from_rows(2, 2, vec![1.0; 3]).unwrap_err(),
            MatrixError::ShapeMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
    }

    #[test]
    fn mul_vec_rejects_bad_length() {
        let a = Matrix::identity(2);
        assert!(matches!(
            a.mul_vec(&[1.0]),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matrix_product_against_identity() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn matrix_product_hand_checked() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let ab = a.mul(&b).unwrap();
        assert_eq!(
            ab,
            Matrix::from_rows(2, 2, vec![2.0, 1.0, 4.0, 3.0]).unwrap()
        );
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn swap_rows_works_and_self_swap_is_noop() {
        let mut a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        let before = a.clone();
        a.swap_rows(1, 1);
        assert_eq!(a, before);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_none());
        let c = Matrix::identity(2);
        assert_eq!(a.max_abs_diff(&c), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(1, 1);
        let _ = a[(0, 1)];
    }
}
