//! LU decomposition with partial pivoting: solve, inverse, determinant.
//!
//! Appendix F of the paper recovers true itemset frequencies from perturbed
//! ones by solving `x = V⁻¹ E[y]` for the `(k+1) × (k+1)` bit-count
//! transition matrix `V`. This module supplies the numerically standard
//! tool for that: a PA = LU factorization with partial (row) pivoting,
//! exposed as [`Lu`] with `solve`/`inverse`/`det`.

use crate::matrix::{Matrix, MatrixError};

/// Relative pivot threshold below which elimination is declared singular.
const SINGULARITY_EPS: f64 = 1e-13;

/// An LU factorization `P·A = L·U` of a square matrix with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the source row of factored row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (±1), used by the determinant.
    perm_sign: f64,
    /// Largest absolute entry of the original matrix, used for the relative
    /// singularity test.
    scale: f64,
}

impl Lu {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`MatrixError::NotSquare`] if `a` is not square.
    /// * [`MatrixError::Singular`] if a pivot is (relatively) zero.
    pub fn factorize(a: &Matrix) -> Result<Self, MatrixError> {
        if !a.is_square() {
            return Err(MatrixError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = (0..n)
            .flat_map(|i| lu.row(i).iter().copied().map(f64::abs).collect::<Vec<_>>())
            .fold(0.0, f64::max)
            .max(1.0);

        for col in 0..n {
            // Partial pivoting: pick the largest magnitude entry in column.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, lu[(r, col)]))
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .expect("non-empty pivot candidates");
            if pivot_val.abs() < SINGULARITY_EPS * scale {
                return Err(MatrixError::Singular { pivot: col });
            }
            if pivot_row != col {
                lu.swap_rows(pivot_row, col);
                perm.swap(pivot_row, col);
                perm_sign = -perm_sign;
            }
            for row in col + 1..n {
                let factor = lu[(row, col)] / lu[(col, col)];
                lu[(row, col)] = factor;
                for j in col + 1..n {
                    let delta = factor * lu[(col, j)];
                    lu[(row, j)] -= delta;
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
            scale,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution (L has unit diag).
        let mut x: Vec<f64> = self.perm.iter().map(|&src| b[src]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A⁻¹` column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix of matching dimension, but the signature stays honest).
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for (row, v) in x.into_iter().enumerate() {
                inv[(row, col)] = v;
            }
            e[col] = 0.0;
        }
        Ok(inv)
    }

    /// The determinant of the original matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let n = self.dim();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.perm_sign
    }

    /// The scale (max-abs entry) recorded at factorization time.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// One-shot convenience: solves `A·x = b`.
///
/// # Errors
///
/// See [`Lu::factorize`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    Lu::factorize(a)?.solve(b)
}

/// One-shot convenience: computes `A⁻¹`.
///
/// # Errors
///
/// See [`Lu::factorize`].
pub fn inverse(a: &Matrix) -> Result<Matrix, MatrixError> {
    Lu::factorize(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_hand_checked_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            Lu::factorize(&a),
            Err(MatrixError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factorize(&a),
            Err(MatrixError::NotSquare { .. })
        ));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.mul(&inv).unwrap();
        let diff = prod.max_abs_diff(&Matrix::identity(3)).unwrap();
        assert!(diff < 1e-12, "A·A⁻¹ deviates from I by {diff}");
    }

    #[test]
    fn determinant_of_triangular_and_permuted() {
        let a = Matrix::from_rows(2, 2, vec![3.0, 1.0, 0.0, 2.0]).unwrap();
        assert!((Lu::factorize(&a).unwrap().det() - 6.0).abs() < 1e-12);
        // Row swap flips the sign.
        let b = Matrix::from_rows(2, 2, vec![0.0, 2.0, 3.0, 1.0]).unwrap();
        assert!((Lu::factorize(&b).unwrap().det() + 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_identity() {
        let lu = Lu::factorize(&Matrix::identity(5)).unwrap();
        assert!((lu.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let lu = Lu::factorize(&Matrix::identity(3)).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_well_conditioned_systems_have_small_residual() {
        // Deterministic pseudo-random diagonally dominant matrices.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) as f64) / f64::from(1u32 << 31) - 0.5
        };
        for n in [1usize, 2, 5, 9] {
            let mut a = Matrix::from_fn(n, n, |_, _| next());
            for i in 0..n {
                a[(i, i)] += n as f64; // diagonal dominance => well-conditioned
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = solve(&a, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-10, "residual too large at n={n}");
        }
    }
}
