//! End-to-end trace correlation over loopback TCP: the query nonce a
//! client (or the router) puts on the wire must come out of the
//! *server-side* structured log, so one grep over every node's stderr
//! reconstructs a cluster query's full path.
//!
//! Servers here run in-process, so [`psketch_obs::log::Capture`] sees
//! their worker threads' records directly. The capture buffer is
//! process-global — everything lives in one `#[test]` so parallel test
//! threads cannot swap buffers mid-assertion.

use psketch_cluster::{Router, RouterConfig, ShardMap};
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Profile, UserId};
use psketch_obs::trace_hex;
use psketch_prf::{GlobalKey, Prg};
use psketch_protocol::{Announcement, AnnouncementBuilder, ShardIdentity, Submission, UserAgent};
use psketch_queries::TermPlan;
use psketch_server::{Client, Server, ServerConfig};
use rand::SeedableRng;
use std::time::Duration;

fn announcement() -> Announcement {
    AnnouncementBuilder::new(777, 0.45, 10_000, 1e-6)
        .global_key(*GlobalKey::from_seed(5).as_bytes())
        .subset(BitSubset::range(0, 2))
        .subset(BitSubset::single(0))
        .build()
        .unwrap()
}

fn submissions(ann: &Announcement, ids: &[u64]) -> Vec<Submission> {
    let mut rng = Prg::seed_from_u64(99);
    ids.iter()
        .map(|&i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, 1e9);
            agent.participate(ann, &mut rng).unwrap()
        })
        .collect()
}

#[test]
fn query_nonce_surfaces_in_server_side_logs() {
    let ann = announcement();
    // --slow-query-ms 0: every request is "slow", so each query logs a
    // WARN record that passes the default (info) filter — no env vars.
    let servers: Vec<Server> = (0..2)
        .map(|shard_id| {
            Server::start(
                "127.0.0.1:0",
                ann.clone(),
                ServerConfig {
                    workers: 2,
                    shard: Some(ShardIdentity {
                        shard_id,
                        shard_count: 2,
                    }),
                    slow_query_ms: Some(0),
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let map = ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string())).unwrap();
    let mut router = Router::new(
        map,
        RouterConfig {
            timeout: Duration::from_secs(10),
            retries: 1,
            backoff: Duration::from_millis(10),
            slow_query_ms: Some(0),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router
        .submit_batch(&submissions(&ann, &(0..40).collect::<Vec<_>>()))
        .unwrap();

    let capture = psketch_obs::log::Capture::install();

    // Part 1: a *known* nonce sent by a direct client must appear
    // verbatim in the shard's slow-query record.
    let nonce = 0x00C0_FFEE_u64;
    let terms =
        vec![ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap()];
    let mut client = Client::connect(servers[0].local_addr(), Duration::from_secs(10)).unwrap();
    client.partial_term_counts_nonced(nonce, &terms).unwrap();
    let needle = format!("trace={}", trace_hex(nonce));
    let lines = capture.lines();
    let server_line = lines
        .iter()
        .find(|l| l.contains("psketch::server::slow_query") && l.contains(&needle));
    assert!(
        server_line.is_some(),
        "known nonce {needle} missing from server-side capture:\n{}",
        lines.join("\n")
    );

    // Part 2: a routed scatter-gather query is traceable end to end —
    // the router's own record and every shard's record carry the same
    // nonce, without the test ever learning it out of band.
    let plan = TermPlan::for_conjunctive(
        ConjunctiveQuery::new(BitSubset::range(0, 2), BitString::from_u64(2, 2)).unwrap(),
    );
    router.execute_plan(&plan).unwrap();
    let lines = capture.lines();
    let router_line = lines
        .iter()
        .find(|l| l.contains("psketch::router::query"))
        .expect("router emitted no query record");
    let trace_token = router_line
        .split_whitespace()
        .find(|tok| tok.starts_with("trace=0x"))
        .expect("router record carries no trace id");
    let matching_shards = lines
        .iter()
        .filter(|l| l.contains("psketch::server::slow_query") && l.contains(trace_token))
        .count();
    assert_eq!(
        matching_shards,
        2,
        "router trace {trace_token} should appear in both shards' logs:\n{}",
        lines.join("\n")
    );
}
