//! Cluster end-to-end tests over loopback TCP: bit-identical
//! scatter-gather answers, degraded-mode behavior when a node dies, and
//! recovery when it comes back.

use proptest::prelude::*;
use psketch_cluster::{ClusterError, Router, RouterConfig, ShardMap};
use psketch_core::{BitString, BitSubset, ConjunctiveEstimator, ConjunctiveQuery, Profile, UserId};
use psketch_prf::{GlobalKey, Prg};
use psketch_protocol::{
    Announcement, AnnouncementBuilder, Coordinator, ShardIdentity, Submission, UserAgent,
};
use psketch_queries::{LinearQuery, QueryEngine};
use psketch_server::{Server, ServerConfig};
use rand::SeedableRng;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn announcement(seed: u64) -> Announcement {
    AnnouncementBuilder::new(4242, 0.45, 10_000, 1e-6)
        .global_key(*GlobalKey::from_seed(seed).as_bytes())
        .subset(BitSubset::range(0, 2))
        .subset(BitSubset::single(0))
        .subset(BitSubset::single(1))
        .build()
        .unwrap()
}

fn submissions(ann: &Announcement, ids: &[u64], seed: u64) -> Vec<Submission> {
    let mut rng = Prg::seed_from_u64(seed);
    ids.iter()
        .map(|&i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, 1e9);
            agent.participate(ann, &mut rng).unwrap()
        })
        .collect()
}

/// Starts one server per shard and returns (servers, map).
fn start_cluster(ann: &Announcement, shards: u32) -> (Vec<Server>, ShardMap) {
    let servers: Vec<Server> = (0..shards)
        .map(|shard_id| {
            Server::start(
                "127.0.0.1:0",
                ann.clone(),
                ServerConfig {
                    workers: 2,
                    shard: Some(ShardIdentity {
                        shard_id,
                        shard_count: shards,
                    }),
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let map = ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string())).unwrap();
    (servers, map)
}

fn fast_router(map: ShardMap) -> Router {
    Router::new(
        map,
        RouterConfig {
            timeout: TIMEOUT,
            retries: 1,
            backoff: Duration::from_millis(10),
            ..RouterConfig::default()
        },
    )
    .unwrap()
}

/// The core acceptance property: a cluster over any shard count answers
/// conjunctive, distribution and linear queries bit-identically to one
/// node (the oracle) ingesting the same records.
fn assert_cluster_matches_oracle(user_ids: &[u64], shards: u32, seed: u64) {
    let ann = announcement(seed);
    let subs = submissions(&ann, user_ids, seed ^ 0x5EED);

    // Single-node oracle.
    let oracle = Coordinator::new(ann.clone());
    oracle.accept_batch(&subs);
    let params = ann.validate().unwrap();
    let estimator = ConjunctiveEstimator::new(params);
    let engine = QueryEngine::new(params);

    // Cluster over the same records.
    let (servers, map) = start_cluster(&ann, shards);
    let mut router = fast_router(map);
    let report = router.submit_batch(&subs).unwrap();
    assert!(report.fully_ingested());
    assert_eq!(report.accepted, subs.len() as u64);
    assert_eq!(report.rejected, 0);

    // Conjunctive: every value of the pair subset.
    let pair = BitSubset::range(0, 2);
    for value in 0..4u64 {
        let value = BitString::from_u64(value, 2);
        let clustered = router.conjunctive(pair.clone(), value.clone()).unwrap();
        assert!(clustered.coverage.is_complete());
        let q = ConjunctiveQuery::new(pair.clone(), value).unwrap();
        let local = estimator.estimate(oracle.pool(), &q).unwrap();
        assert_eq!(
            clustered.estimate.fraction.to_bits(),
            local.fraction.to_bits(),
            "conjunctive diverged at {shards} shards"
        );
        assert_eq!(clustered.estimate.raw.to_bits(), local.raw.to_bits());
        assert_eq!(clustered.estimate.sample_size, local.sample_size);
    }

    // Distribution over the pair subset.
    let clustered = router.distribution(pair.clone()).unwrap();
    let local = estimator
        .estimate_distribution(oracle.pool(), &pair)
        .unwrap();
    assert_eq!(clustered.estimates.len(), local.len());
    for (c, l) in clustered.estimates.iter().zip(&local) {
        assert_eq!(
            c.fraction.to_bits(),
            l.fraction.to_bits(),
            "distribution diverged at {shards} shards"
        );
    }

    // Linear with a duplicate term and a constant.
    let q0 = ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true])).unwrap();
    let q1 = ConjunctiveQuery::new(BitSubset::single(1), BitString::from_bits(&[true])).unwrap();
    let mut lq = LinearQuery::new("cluster test");
    lq.constant = -0.25;
    lq.push(1.5, q0.clone());
    lq.push(-2.0, q1);
    lq.push(0.5, q0);
    let clustered = router.linear(&lq).unwrap();
    let local = engine.linear(oracle.pool(), &lq).unwrap();
    assert_eq!(
        clustered.answer.value.to_bits(),
        local.value.to_bits(),
        "linear diverged at {shards} shards"
    );
    assert_eq!(clustered.answer.queries_used, local.queries_used);
    assert_eq!(clustered.answer.min_sample_size, local.min_sample_size);

    // Merged status equals the oracle's counters.
    let status = router.status().unwrap();
    assert_eq!(status.merged, oracle.stats());

    for server in servers {
        server.shutdown();
    }
}

proptest! {
    /// Random user-id sets (sparse, duplicate-free, arbitrary ranges)
    /// over random shard counts: the cluster answer is always
    /// bit-identical to the single-node oracle.
    #[test]
    fn cluster_answers_bit_identical_to_oracle(
        user_ids in proptest::collection::vec(any::<u64>(), 30..80),
        shard_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut user_ids = user_ids;
        user_ids.sort_unstable();
        user_ids.dedup();
        let shards = (shard_pick % 4 + 1) as u32;
        assert_cluster_matches_oracle(&user_ids, shards, seed);
    }

    /// Every query family, plan-compiled, answers bit-identically to
    /// the pre-refactor direct path over random populations and shard
    /// counts.
    #[test]
    fn plan_families_bit_identical_to_direct_paths(
        m in 60u64..160,
        shard_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let shards = (shard_pick % 4 + 1) as u32;
        assert_families_match_direct_paths(m, shards, seed);
    }
}

/// Compiles one plan per query family over two 2-bit fields
/// (`a` at bits 0–1, `b` at bits 2–3), executes each three ways —
/// legacy direct path, local plan path, clustered plan path — and
/// asserts float-bit identity throughout.
#[allow(clippy::too_many_lines)]
fn assert_families_match_direct_paths(m: u64, shards: u32, seed: u64) {
    use psketch_core::IntField;
    use psketch_queries as q;

    let a = IntField::new(0, 2);
    let b = IntField::new(2, 2);
    let attr = q::CategoricalAttribute::new(a, 3);

    // One plan per family (descriptive label, plan, the LinearQuery
    // oracle when the direct path is an engine evaluation).
    let clause0 =
        psketch_core::ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true]))
            .unwrap();
    let clause1 = psketch_core::ConjunctiveQuery::new(
        BitSubset::new(vec![1, 2]).unwrap(),
        BitString::from_bits(&[true, false]),
    )
    .unwrap();
    let tree = psketch_queries::DecisionTree::split(
        0,
        psketch_queries::DecisionTree::split(
            2,
            psketch_queries::DecisionTree::Leaf(true),
            psketch_queries::DecisionTree::Leaf(false),
        ),
        psketch_queries::DecisionTree::split(
            1,
            psketch_queries::DecisionTree::Leaf(false),
            psketch_queries::DecisionTree::Leaf(true),
        ),
    );
    let mut custom = q::LinearQuery::new("linear family");
    custom.constant = -0.25;
    custom.push(1.5, clause0.clone());
    custom.push(0.5, clause0.clone());
    custom.push(-2.0, clause1.clone());
    let bits_columns = vec![
        (BitSubset::single(0), BitString::from_bits(&[true])),
        (BitSubset::single(3), BitString::from_bits(&[false])),
    ];

    let families: Vec<(&str, q::TermPlan, Option<q::LinearQuery>)> = vec![
        (
            "conjunction",
            q::TermPlan::for_conjunctive(clause1.clone()),
            None,
        ),
        ("linear", q::TermPlan::compile(&custom), Some(custom)),
        (
            "dnf",
            q::dnf_plan(&[clause0.clone(), clause1.clone()]).unwrap(),
            Some(q::dnf_query(&[clause0, clause1]).unwrap()),
        ),
        (
            "interval",
            q::range_plan(&a, 1, 2),
            Some(q::range_query(&a, 1, 2)),
        ),
        ("mean", q::mean_plan(&a), Some(q::mean_query(&a))),
        (
            "moment",
            q::moment_plan(&a, 2),
            Some(q::moment_query(&a, 2)),
        ),
        (
            "product",
            q::inner_product_plan(&a, &b),
            Some(q::inner_product_query(&a, &b)),
        ),
        (
            "combined",
            q::eq_and_less_than_plan(&a, 2, &b, 3),
            Some(q::eq_and_less_than(&a, 2, &b, 3)),
        ),
        ("tree", tree.to_plan(), Some(tree.to_linear_query())),
        ("sumlt", q::sum_lt_plan(&a, &b, 2), None),
        ("categorical", q::histogram_plan(&attr), None),
        (
            "bits",
            q::perturbed_conjunction_plan(&bits_columns).unwrap(),
            None,
        ),
        // Multi-output families: variance and the conditional mean
        // share terms across outputs.
        ("variance", q::variance_plan(&a), None),
        (
            "conditional-mean",
            q::conditional_mean_plan(&a, 2, &b),
            None,
        ),
    ];

    // The announcement sketches exactly what the plans need.
    let mut subsets: Vec<BitSubset> = families
        .iter()
        .flat_map(|(_, plan, _)| plan.required_subsets())
        .collect();
    subsets.sort();
    subsets.dedup();
    let mut builder = psketch_protocol::AnnouncementBuilder::new(777, 0.45, 10_000, 1e-6)
        .global_key(*GlobalKey::from_seed(seed).as_bytes());
    for subset in subsets {
        builder = builder.subset(subset);
    }
    let ann = builder.build().unwrap();

    let ids: Vec<u64> = (0..m).map(|i| i.wrapping_mul(0x9E37) ^ seed).collect();
    let mut ids = ids;
    ids.sort_unstable();
    ids.dedup();
    // 4-bit profiles covering both fields (the shared helper's profiles
    // are only 2 bits wide).
    let mut rng = Prg::seed_from_u64(seed ^ 0xFA91);
    let subs: Vec<Submission> = ids
        .iter()
        .map(|&i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0, i % 5 < 2, i % 7 < 3]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, 1e12);
            agent.participate(&ann, &mut rng).unwrap()
        })
        .collect();

    // Single-node oracle.
    let oracle = Coordinator::new(ann.clone());
    oracle.accept_batch(&subs);
    let params = ann.validate().unwrap();
    let engine = QueryEngine::new(params);

    // Cluster over the same records.
    let (servers, map) = start_cluster(&ann, shards);
    let mut router = fast_router(map);
    let report = router.submit_batch(&subs).unwrap();
    assert!(report.fully_ingested());

    for (family, plan, direct) in &families {
        // Local plan path vs legacy direct path.
        let local = engine.execute_plan(oracle.pool(), plan).unwrap();
        if let Some(lq) = direct {
            let legacy = engine.linear(oracle.pool(), lq).unwrap();
            assert_eq!(
                local[0].value.to_bits(),
                legacy.value.to_bits(),
                "{family}: plan diverged from the direct engine path"
            );
            assert_eq!(local[0].queries_used, legacy.queries_used, "{family}");
            assert_eq!(local[0].min_sample_size, legacy.min_sample_size, "{family}");
        }
        // Clustered plan path vs local plan path, output by output.
        let clustered = router.execute_plan(plan).unwrap();
        assert!(clustered.coverage.is_complete());
        assert_eq!(clustered.outputs.len(), local.len(), "{family}");
        for (c, l) in clustered.outputs.iter().zip(&local) {
            assert_eq!(
                c.value.to_bits(),
                l.value.to_bits(),
                "{family}: cluster diverged from local at {shards} shards"
            );
            assert_eq!(c.queries_used, l.queries_used, "{family}");
            assert_eq!(c.min_sample_size, l.min_sample_size, "{family}");
        }
    }

    // The categorical direct path goes through the miner, not the
    // engine: check it against the histogram plan explicitly.
    let miner = q::CategoricalMiner::new(params);
    let hist = miner.histogram(oracle.pool(), &attr).unwrap();
    let plan = q::histogram_plan(&attr);
    let clustered = router.execute_plan(&plan).unwrap();
    for (level, direct) in hist.frequencies.iter().enumerate() {
        assert_eq!(
            clustered.outputs[level].value.to_bits(),
            direct.to_bits(),
            "histogram level {level} diverged"
        );
    }

    // The conditional-mean ratio matches the engine's ratio path.
    let num = q::conditional_sum_query_inclusive(&a, 2, &b);
    let den = q::less_equal_query(&a, 2);
    let direct_ratio = engine.ratio(oracle.pool(), &num, &den).unwrap();
    let cm = router
        .execute_plan(&q::conditional_mean_plan(&a, 2, &b))
        .unwrap();
    let plan_ratio = if cm.outputs[1].value <= 0.0 {
        None
    } else {
        Some(cm.outputs[0].value / cm.outputs[1].value)
    };
    match (direct_ratio, plan_ratio) {
        (None, None) => {}
        (Some(d), Some(p)) => assert_eq!(d.to_bits(), p.to_bits(), "conditional mean diverged"),
        other => panic!("ratio availability diverged: {other:?}"),
    }

    for server in servers {
        server.shutdown();
    }
}

#[test]
fn plan_families_three_shard_anchor() {
    // The deterministic anchor for the family proptest.
    assert_families_match_direct_paths(120, 3, 2026);
}

#[test]
fn three_shard_split_matches_oracle() {
    // The deterministic anchor for the proptest (fast to re-run alone).
    let ids: Vec<u64> = (0..600).collect();
    assert_cluster_matches_oracle(&ids, 3, 7);
}

#[test]
fn killing_a_node_degrades_answers_and_recovery_restores_them() {
    let ann = announcement(11);
    let ids: Vec<u64> = (0..900).collect();
    let subs = submissions(&ann, &ids, 23);
    let (mut servers, map) = start_cluster(&ann, 3);
    let mut router = fast_router(map.clone());
    router.submit_batch(&subs).unwrap();
    // Size every shard while all are up (degraded answers report the
    // missing fraction from this sweep).
    let status = router.status().unwrap();
    assert_eq!(status.merged.accepted, 900);
    let per_shard_accepted: Vec<u64> = status
        .per_shard
        .iter()
        .map(|s| s.status.as_ref().unwrap().0.accepted)
        .collect();

    let pair = BitSubset::range(0, 2);
    let value = BitString::from_bits(&[true, true]);
    let full = router.conjunctive(pair.clone(), value.clone()).unwrap();
    assert!(full.coverage.is_complete());
    assert_eq!(full.estimate.sample_size as u64, 900);

    // Kill shard 1. Its records drop out of answers; the router reports
    // exactly which shard (and how many known users) went missing.
    servers.remove(1).shutdown();
    let degraded = router.conjunctive(pair.clone(), value.clone()).unwrap();
    assert!(!degraded.coverage.is_complete());
    assert_eq!(
        degraded
            .coverage
            .missing
            .iter()
            .map(|o| o.shard)
            .collect::<Vec<_>>(),
        vec![1]
    );
    assert_eq!(degraded.coverage.responding, vec![0, 2]);
    assert_eq!(degraded.coverage.missing_users, Some(per_shard_accepted[1]));
    let fraction = degraded.coverage.missing_fraction().unwrap();
    assert!(
        (fraction - per_shard_accepted[1] as f64 / 900.0).abs() < 1e-12,
        "missing fraction {fraction}"
    );
    // The degraded estimate covers exactly the surviving population.
    assert_eq!(
        degraded.estimate.sample_size as u64,
        900 - per_shard_accepted[1]
    );

    // A status sweep keeps working, reporting the outage in its row.
    let status = router.status().unwrap();
    let row = &status.per_shard[1];
    assert!(row.status.is_err());
    assert_eq!(status.merged.accepted, 900 - per_shard_accepted[1]);

    // Restart shard 1 empty at the same address: the map still routes
    // to it, and re-submitting restores the full bit-identical answer.
    let addr = map.addr_of(1).to_string();
    let restarted = Server::start(
        addr.as_str(),
        ann.clone(),
        ServerConfig {
            workers: 2,
            shard: Some(ShardIdentity {
                shard_id: 1,
                shard_count: 3,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Re-submit everything; surviving shards reject duplicates, shard 1
    // re-ingests its users.
    let report = router.submit_batch(&subs).unwrap();
    assert!(report.fully_ingested());
    assert_eq!(report.accepted, per_shard_accepted[1]);
    let restored = router.conjunctive(pair, value).unwrap();
    assert!(restored.coverage.is_complete());
    assert_eq!(
        restored.estimate.fraction.to_bits(),
        full.estimate.fraction.to_bits(),
        "recovered cluster must answer bit-identically to the pre-kill cluster"
    );
    restarted.shutdown();
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn all_nodes_down_is_an_error_not_a_zero() {
    let ann = announcement(5);
    let (servers, map) = start_cluster(&ann, 2);
    for server in servers {
        server.shutdown();
    }
    let mut router = Router::new(
        map,
        RouterConfig {
            timeout: Duration::from_millis(300),
            retries: 0,
            backoff: Duration::from_millis(1),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    match router.conjunctive(BitSubset::single(0), BitString::from_bits(&[true])) {
        Err(ClusterError::AllShardsDown(outages)) => assert_eq!(outages.len(), 2),
        other => panic!("expected AllShardsDown, got {other:?}"),
    }
}

#[test]
fn misrouted_nodes_are_rejected_not_merged() {
    let ann = announcement(9);
    // A node claiming shard 1/3 behind an address mapped as shard 0/2.
    let server = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            shard: Some(ShardIdentity {
                shard_id: 1,
                shard_count: 3,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let other = Server::start(
        "127.0.0.1:0",
        ann.clone(),
        ServerConfig {
            shard: Some(ShardIdentity {
                shard_id: 1,
                shard_count: 2,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let map = ShardMap::new(
        1,
        [
            server.local_addr().to_string(),
            other.local_addr().to_string(),
        ],
    )
    .unwrap();
    let mut router = fast_router(map);
    match router.ping() {
        Err(ClusterError::Misrouted { shard: 0, found }) => {
            assert_eq!(
                found,
                Some(ShardIdentity {
                    shard_id: 1,
                    shard_count: 3
                })
            );
        }
        other => panic!("expected Misrouted, got {other:?}"),
    }
    server.shutdown();
    other.shutdown();

    // An unsharded node is fine behind a single-entry map...
    let standalone = Server::start("127.0.0.1:0", ann.clone(), ServerConfig::default()).unwrap();
    let map = ShardMap::new(1, [standalone.local_addr().to_string()]).unwrap();
    let mut router = fast_router(map);
    router.ping().unwrap();
    // ...but not behind a multi-shard map (it would be double-counted).
    let map = ShardMap::new(
        1,
        [
            standalone.local_addr().to_string(),
            standalone.local_addr().to_string(),
        ],
    )
    .unwrap();
    let mut router = fast_router(map);
    assert!(matches!(
        router.ping(),
        Err(ClusterError::Misrouted { found: None, .. })
    ));
    standalone.shutdown();
}

#[test]
fn budget_refusals_propagate_and_are_not_retried() {
    use psketch_server::wire::codes;
    let ann = announcement(13);
    // Per-analyst budget that affords one estimate per shard at p=0.45.
    let servers: Vec<Server> = (0..2)
        .map(|shard_id| {
            Server::start(
                "127.0.0.1:0",
                ann.clone(),
                ServerConfig {
                    workers: 2,
                    shard: Some(ShardIdentity {
                        shard_id,
                        shard_count: 2,
                    }),
                    analyst_budget: Some(3.0),
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let map = ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string())).unwrap();
    let ids: Vec<u64> = (0..100).collect();
    let subs = submissions(&ann, &ids, 3);
    let mut router = Router::new(
        map,
        RouterConfig {
            timeout: TIMEOUT,
            analyst: 42,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.submit_batch(&subs).unwrap();
    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);
    router.conjunctive(subset.clone(), value.clone()).unwrap();
    match router.conjunctive(subset, value) {
        Err(ClusterError::Refused { code, .. }) => assert_eq!(code, codes::BUDGET),
        other => panic!("expected a budget refusal, got {other:?}"),
    }
    for server in servers {
        server.shutdown();
    }
}

// ---------------------------------------------------------------------
// Parallel fan-out vs the sequential oracle.
// ---------------------------------------------------------------------

/// Every family's compiled plan over two 2-bit fields (`a` at bits 0–1,
/// `b` at bits 2–3). No engine oracles here: the *sequential* router
/// (`fanout = 1`, the old visit order) is the oracle the parallel
/// fan-out must match bit-for-bit.
fn family_plans() -> Vec<(&'static str, psketch_queries::TermPlan)> {
    use psketch_core::IntField;
    use psketch_queries as q;
    let a = IntField::new(0, 2);
    let b = IntField::new(2, 2);
    let attr = q::CategoricalAttribute::new(a, 3);
    let clause0 =
        psketch_core::ConjunctiveQuery::new(BitSubset::single(0), BitString::from_bits(&[true]))
            .unwrap();
    let clause1 = psketch_core::ConjunctiveQuery::new(
        BitSubset::new(vec![1, 2]).unwrap(),
        BitString::from_bits(&[true, false]),
    )
    .unwrap();
    let tree = q::DecisionTree::split(
        0,
        q::DecisionTree::split(2, q::DecisionTree::Leaf(true), q::DecisionTree::Leaf(false)),
        q::DecisionTree::split(1, q::DecisionTree::Leaf(false), q::DecisionTree::Leaf(true)),
    );
    let mut linear = q::LinearQuery::new("linear family");
    linear.constant = -0.25;
    linear.push(1.5, clause0.clone());
    linear.push(0.5, clause0.clone());
    linear.push(-2.0, clause1.clone());
    vec![
        ("conjunction", q::TermPlan::for_conjunctive(clause1.clone())),
        (
            "distribution",
            q::TermPlan::for_distribution(&BitSubset::range(0, 2)),
        ),
        ("linear", q::TermPlan::compile(&linear)),
        ("dnf", q::dnf_plan(&[clause0, clause1]).unwrap()),
        ("interval", q::range_plan(&a, 1, 2)),
        ("mean", q::mean_plan(&a)),
        ("moment", q::moment_plan(&a, 2)),
        ("product", q::inner_product_plan(&a, &b)),
        ("combined", q::eq_and_less_than_plan(&a, 2, &b, 3)),
        ("tree", tree.to_plan()),
        ("sumlt", q::sum_lt_plan(&a, &b, 2)),
        ("categorical", q::histogram_plan(&attr)),
        ("variance", q::variance_plan(&a)),
        ("conditional-mean", q::conditional_mean_plan(&a, 2, &b)),
    ]
}

/// Asserts two cluster plan answers are float-bit-identical, including
/// the degraded-coverage fields (outage *error strings* may differ —
/// they quote nondeterministic OS messages — but the structured fields
/// may not).
fn assert_answers_identical(
    family: &str,
    parallel: &psketch_cluster::ClusterPlanAnswer,
    sequential: &psketch_cluster::ClusterPlanAnswer,
) {
    assert_eq!(
        parallel.outputs.len(),
        sequential.outputs.len(),
        "{family}: output arity diverged"
    );
    for (p, s) in parallel.outputs.iter().zip(&sequential.outputs) {
        assert_eq!(
            p.value.to_bits(),
            s.value.to_bits(),
            "{family}: parallel fan-out diverged from the sequential oracle"
        );
        assert_eq!(p.queries_used, s.queries_used, "{family}");
        assert_eq!(p.min_sample_size, s.min_sample_size, "{family}");
    }
    assert_eq!(
        parallel.term_estimates.len(),
        sequential.term_estimates.len(),
        "{family}"
    );
    for (p, s) in parallel
        .term_estimates
        .iter()
        .zip(&sequential.term_estimates)
    {
        assert_eq!(p.fraction.to_bits(), s.fraction.to_bits(), "{family}");
        assert_eq!(p.raw.to_bits(), s.raw.to_bits(), "{family}");
        assert_eq!(p.sample_size, s.sample_size, "{family}");
        assert_eq!(p.p.to_bits(), s.p.to_bits(), "{family}");
    }
    let (pc, sc) = (&parallel.coverage, &sequential.coverage);
    assert_eq!(pc.total_shards, sc.total_shards, "{family}");
    assert_eq!(pc.responding, sc.responding, "{family}");
    assert_eq!(pc.population, sc.population, "{family}");
    assert_eq!(pc.missing_users, sc.missing_users, "{family}");
    let p_missing: Vec<u32> = pc.missing.iter().map(|o| o.shard).collect();
    let s_missing: Vec<u32> = sc.missing.iter().map(|o| o.shard).collect();
    assert_eq!(p_missing, s_missing, "{family}: degraded coverage diverged");
}

fn router_with_fanout(map: ShardMap, fanout: usize) -> Router {
    Router::new(
        map,
        RouterConfig {
            timeout: TIMEOUT,
            retries: 1,
            backoff: Duration::from_millis(10),
            fanout,
            ..RouterConfig::default()
        },
    )
    .unwrap()
}

/// The parallel-correctness property: for every query family the
/// parallel scatter-gather (`fanout = 0`, all shards at once) answers
/// float-bit-identically to the sequential oracle (`fanout = 1`, the
/// pre-parallel visit order) — with all shards up *and* with one shard
/// killed (degraded coverage fields unchanged).
fn assert_parallel_matches_sequential(m: u64, shards: u32, seed: u64) {
    let plans = family_plans();
    let mut subsets: Vec<BitSubset> = plans
        .iter()
        .flat_map(|(_, plan)| plan.required_subsets())
        .collect();
    subsets.sort();
    subsets.dedup();
    let mut builder = AnnouncementBuilder::new(4243, 0.45, 10_000, 1e-6)
        .global_key(*GlobalKey::from_seed(seed).as_bytes());
    for subset in subsets {
        builder = builder.subset(subset);
    }
    let ann = builder.build().unwrap();

    let mut ids: Vec<u64> = (0..m).map(|i| i.wrapping_mul(0x9E37) ^ seed).collect();
    ids.sort_unstable();
    ids.dedup();
    let mut rng = Prg::seed_from_u64(seed ^ 0x00B5);
    let subs: Vec<Submission> = ids
        .iter()
        .map(|&i| {
            let profile = Profile::from_bits(&[i % 3 == 0, i % 2 == 0, i % 5 < 2, i % 7 < 3]);
            let mut agent = UserAgent::new(UserId(i), profile, ann.p, 1e12);
            agent.participate(&ann, &mut rng).unwrap()
        })
        .collect();

    let (mut servers, map) = start_cluster(&ann, shards);
    let mut parallel = router_with_fanout(map.clone(), 0);
    let mut sequential = router_with_fanout(map, 1);
    let report = parallel.submit_batch(&subs).unwrap();
    assert!(report.fully_ingested());
    // Size every shard on both routers so degraded answers report the
    // same missing-user counts after the kill.
    parallel.status().unwrap();
    sequential.status().unwrap();

    for (family, plan) in &plans {
        let p = parallel.execute_plan(plan).unwrap();
        let s = sequential.execute_plan(plan).unwrap();
        assert!(p.coverage.is_complete(), "{family}");
        assert_answers_identical(family, &p, &s);
    }

    if shards > 1 {
        // Kill shard 1: both routers must degrade identically.
        servers.remove(1).shutdown();
        for (family, plan) in plans.iter().take(5) {
            match (parallel.execute_plan(plan), sequential.execute_plan(plan)) {
                (Ok(p), Ok(s)) => {
                    assert!(!p.coverage.is_complete(), "{family}: kill went unnoticed");
                    assert_answers_identical(family, &p, &s);
                }
                // A term held only by the dead shard fails estimation on
                // the surviving population — for both routers alike.
                (Err(ClusterError::Estimation(_)), Err(ClusterError::Estimation(_))) => {}
                (p, s) => panic!("{family}: outcomes diverged: {p:?} vs {s:?}"),
            }
        }
    }
    for server in servers {
        server.shutdown();
    }
}

proptest! {
    /// Parallel scatter-gather answers are float-bit-identical to the
    /// sequential oracle for every query family × 1–4 shards, including
    /// with one shard killed (degraded coverage fields unchanged).
    #[test]
    fn parallel_fanout_bit_identical_to_sequential_oracle(
        m in 50u64..120,
        shard_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let shards = (shard_pick % 4 + 1) as u32;
        assert_parallel_matches_sequential(m, shards, seed);
    }
}

#[test]
fn parallel_fanout_four_shard_anchor() {
    // The deterministic anchor for the parallel-vs-sequential proptest.
    assert_parallel_matches_sequential(100, 4, 2026);
}

#[test]
fn intermediate_fanouts_answer_identically() {
    // fanout = 2 on a 4-shard cluster: a bounded fan-out window must
    // not change a single bit either.
    let ann = announcement(21);
    let ids: Vec<u64> = (0..400).collect();
    let subs = submissions(&ann, &ids, 21);
    let (servers, map) = start_cluster(&ann, 4);
    let mut bounded = router_with_fanout(map.clone(), 2);
    let mut sequential = router_with_fanout(map, 1);
    bounded.submit_batch(&subs).unwrap();
    let pair = BitSubset::range(0, 2);
    let plan = psketch_queries::TermPlan::for_distribution(&pair);
    let b = bounded.execute_plan(&plan).unwrap();
    let s = sequential.execute_plan(&plan).unwrap();
    assert_answers_identical("distribution@fanout2", &b, &s);
    for server in servers {
        server.shutdown();
    }
}

// ---------------------------------------------------------------------
// PRF lane widths through the wire paths.
// ---------------------------------------------------------------------

/// One sweep's worth of wire answers, bit-exact, for direct comparison
/// across lane widths.
#[derive(Debug, PartialEq)]
struct WireAnswers {
    server_conj: (u64, u64, usize),
    server_dist: Vec<(u64, u64)>,
    server_plan: Vec<(u64, usize, usize)>,
    cluster_conj: (u64, u64, usize),
    cluster_dist: Vec<u64>,
    cluster_plan: Vec<(u64, usize, usize)>,
}

/// Queries one standalone server (server path) and one router (cluster
/// path) with a conjunctive, a distribution and a compiled mean plan,
/// capturing every answer's bit pattern.
fn wire_answers(
    client: &mut psketch_server::Client,
    router: &mut Router,
    plan: &psketch_queries::TermPlan,
) -> WireAnswers {
    let pair = BitSubset::range(0, 2);
    let value = BitString::from_bits(&[true, false]);
    let s_conj = client.conjunctive(pair.clone(), value.clone()).unwrap();
    let s_dist = client.distribution(pair.clone()).unwrap();
    let s_plan = client.execute_plan(plan).unwrap();
    let c_conj = router.conjunctive(pair.clone(), value).unwrap();
    let c_dist = router.distribution(pair).unwrap();
    let c_plan = router.execute_plan(plan).unwrap();
    assert!(c_conj.coverage.is_complete());
    assert!(c_plan.coverage.is_complete());
    WireAnswers {
        server_conj: (
            s_conj.fraction.to_bits(),
            s_conj.raw.to_bits(),
            s_conj.sample_size,
        ),
        server_dist: s_dist
            .iter()
            .map(|e| (e.fraction.to_bits(), e.raw.to_bits()))
            .collect(),
        server_plan: s_plan
            .iter()
            .map(|a| (a.value.to_bits(), a.queries_used, a.min_sample_size))
            .collect(),
        cluster_conj: (
            c_conj.estimate.fraction.to_bits(),
            c_conj.estimate.raw.to_bits(),
            c_conj.estimate.sample_size,
        ),
        cluster_dist: c_dist
            .estimates
            .iter()
            .map(|e| e.fraction.to_bits())
            .collect(),
        cluster_plan: c_plan
            .outputs
            .iter()
            .map(|a| (a.value.to_bits(), a.queries_used, a.min_sample_size))
            .collect(),
    }
}

/// The wire-path acceptance property for the multi-lane PRF: a
/// standalone `Server` behind `Client` and a sharded cluster behind
/// `Router` answer float-bit-identically at every supported lane width
/// (and at auto-probe) to the width-1 scalar oracle. The lane knob is
/// process-global, so the in-process server scan threads see each
/// width as the sweep sets it.
fn assert_lane_widths_identical_over_the_wire(m: u64, shards: u32, seed: u64) {
    let ann = announcement(seed);
    let mut ids: Vec<u64> = (0..m).map(|i| i.wrapping_mul(0x9E37) ^ seed).collect();
    ids.sort_unstable();
    ids.dedup();
    let subs = submissions(&ann, &ids, seed ^ 0x1A9E);
    let plan = psketch_queries::mean_plan(&psketch_core::IntField::new(0, 2));

    let standalone = Server::start("127.0.0.1:0", ann.clone(), ServerConfig::default()).unwrap();
    let mut client = psketch_server::Client::connect(standalone.local_addr(), TIMEOUT).unwrap();
    client.submit_batch(&subs).unwrap();

    let (servers, map) = start_cluster(&ann, shards);
    let mut router = fast_router(map);
    let report = router.submit_batch(&subs).unwrap();
    assert!(report.fully_ingested());

    psketch_core::set_lane_width(1).unwrap();
    let oracle = wire_answers(&mut client, &mut router, &plan);

    let sweep = psketch_core::SUPPORTED_LANE_WIDTHS
        .iter()
        .copied()
        .filter(|&w| w != 1)
        .chain([0]);
    for width in sweep {
        psketch_core::set_lane_width(width).unwrap();
        let swept = wire_answers(&mut client, &mut router, &plan);
        assert_eq!(
            swept, oracle,
            "wire answers diverged from the scalar oracle at lane width {width}"
        );
    }
    psketch_core::set_lane_width(0).unwrap();

    standalone.shutdown();
    for server in servers {
        server.shutdown();
    }
}

proptest! {
    /// Server and cluster wire paths answer bit-identically at every
    /// PRF lane width over random populations and shard counts.
    #[test]
    fn lane_widths_bit_identical_over_the_wire(
        m in 30u64..80,
        shard_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let shards = (shard_pick % 4 + 1) as u32;
        assert_lane_widths_identical_over_the_wire(m, shards, seed);
    }
}

#[test]
fn lane_widths_three_shard_anchor() {
    // The deterministic anchor for the lane-width wire sweep.
    assert_lane_widths_identical_over_the_wire(200, 3, 2026);
}

#[test]
fn fatal_outcomes_stop_dispatching_further_shards() {
    // At fanout = 1 a refusal on shard 0 must end the scatter before
    // shard 1 is contacted at all — the old sequential contract. With
    // the budget sized to afford exactly one estimate per shard, shard
    // 1's ledger must show one charge and zero denials afterwards.
    let ann = announcement(29);
    let servers: Vec<Server> = (0..2)
        .map(|shard_id| {
            Server::start(
                "127.0.0.1:0",
                ann.clone(),
                ServerConfig {
                    workers: 2,
                    shard: Some(ShardIdentity {
                        shard_id,
                        shard_count: 2,
                    }),
                    analyst_budget: Some(3.0),
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let map = ShardMap::new(1, servers.iter().map(|s| s.local_addr().to_string())).unwrap();
    let ids: Vec<u64> = (0..80).collect();
    let subs = submissions(&ann, &ids, 29);
    let mut router = Router::new(
        map,
        RouterConfig {
            timeout: TIMEOUT,
            analyst: 42,
            fanout: 1,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.submit_batch(&subs).unwrap();
    let subset = BitSubset::single(0);
    let value = BitString::from_bits(&[true]);
    router.conjunctive(subset.clone(), value.clone()).unwrap();
    match router.conjunctive(subset, value) {
        Err(ClusterError::Refused { shard: 0, .. }) => {}
        other => panic!("expected shard 0 refusal, got {other:?}"),
    }
    // Shard 1 was never asked to over-spend.
    let mut probe = psketch_server::Client::connect(servers[1].local_addr(), TIMEOUT).unwrap();
    let stats = probe.server_stats().unwrap();
    assert_eq!(stats.budget.denials, 0, "{stats:?}");
    assert_eq!(stats.budget.charged_terms, 1, "{stats:?}");
    for server in servers {
        server.shutdown();
    }
}
