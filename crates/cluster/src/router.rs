//! The cluster router: scatter-gather over shard nodes.
//!
//! A [`Router`] owns one connection per shard (lazily opened, hello
//! handshake verified against the [`ShardMap`]) and serves the same
//! analyst surface a single node does — **any compiled
//! [`TermPlan`]**, which covers every query family (conjunctions, DNF,
//! intervals, means, moments, trees, histograms, linear combinations) —
//! plus ingest and status, by **merging exact partial counts** instead
//! of estimates:
//!
//! 1. every shard answers one generic `PartialTermCounts` frame with
//!    integer `(ones, population)` counts for the plan's deduplicated
//!    terms (a shard holding none of a subset's records reports
//!    `(0, 0)`);
//! 2. the router sums them ([`PlanAccumulator`]) — integer addition,
//!    exact in any order;
//! 3. the Algorithm 2 float inversion runs **once per term**, on the
//!    merged sums, via the same [`psketch_core::Estimate::from_counts`]
//!    a single node uses, and [`TermPlan::evaluate`] replays the
//!    compiler's combination order.
//!
//! Cluster answers are therefore bit-identical to a single node holding
//! the union of the records (the property tests in this crate pin that
//! down, family by family).
//!
//! # Failure handling
//!
//! Transport failures are retried per shard with exponential backoff;
//! a shard that stays unreachable is reported as **missing** in the
//! answer's [`Coverage`] rather than silently skewing `r'`: the
//! estimate then covers exactly the responding shards' population, and
//! the caller can see which shards — and, when a prior
//! [`Router::status`] sweep recorded their size, what fraction of the
//! known user population — the answer excludes. Deterministic server
//! refusals (budget exhausted, malformed query) are never retried and
//! fail the whole query, because every shard would refuse identically.

use crate::shard::{ShardMap, ShardMapError};
use psketch_core::{BitString, BitSubset, ConjunctiveQuery, Estimate};
use psketch_protocol::{Announcement, CoordinatorStats, ShardIdentity, Submission};
use psketch_queries::{LinearAnswer, LinearQuery, PlanAccumulator, TermPlan};
use psketch_server::{Client, ClientError, ServerStats};
use std::time::Duration;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connect/read/write timeout for every shard connection.
    pub timeout: Duration,
    /// Extra attempts per shard operation after the first failure.
    pub retries: u32,
    /// Base backoff slept before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// The analyst identity declared to every shard (budget accounting).
    pub analyst: u64,
    /// Chunk size for batch submissions (bounds frame sizes).
    pub submit_chunk: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(10),
            retries: 2,
            backoff: Duration::from_millis(50),
            analyst: 0,
            submit_chunk: 500,
        }
    }
}

/// Why a shard is missing from an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutage {
    /// The unreachable shard.
    pub shard: u32,
    /// The last transport error observed (after all retries).
    pub error: String,
}

/// Which part of the population an answer covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Total shards in the map.
    pub total_shards: u32,
    /// Shards that contributed to the answer.
    pub responding: Vec<u32>,
    /// Shards that stayed unreachable after retries.
    pub missing: Vec<ShardOutage>,
    /// Records merged into the answer (the estimate's sample size).
    pub population: u64,
    /// Accepted users on the missing shards, summed from the most
    /// recent successful [`Router::status`] sweep; `None` if any
    /// missing shard has never been seen.
    pub missing_users: Option<u64>,
}

impl Coverage {
    /// Whether every shard contributed (a full-population answer).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// The fraction of the *known* user population the answer misses:
    /// `missing / (covered + missing)`. `None` until a status sweep has
    /// sized every missing shard.
    #[must_use]
    pub fn missing_fraction(&self) -> Option<f64> {
        if self.missing.is_empty() {
            return Some(0.0);
        }
        let missing = self.missing_users? as f64;
        let total = self.population as f64 + missing;
        if total == 0.0 {
            return None;
        }
        Some(missing / total)
    }
}

/// A cluster conjunctive answer: the merged estimate plus coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEstimate {
    /// The merged estimate (bit-identical to a single node over the
    /// responding shards' records).
    pub estimate: Estimate,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// A cluster distribution answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterDistribution {
    /// Per-value merged estimates, indexed by the LSB-first integer
    /// encoding of the value.
    pub estimates: Vec<Estimate>,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// A cluster linear-query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterLinear {
    /// The merged answer.
    pub answer: LinearAnswer,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// A cluster plan answer: one output answer per plan output plus the
/// merged per-term estimates (each bit-identical to a single node over
/// the responding shards' records).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlanAnswer {
    /// One answer per plan output, in plan order.
    pub outputs: Vec<LinearAnswer>,
    /// The merged estimate of every plan term, aligned with the plan's
    /// term list (richer than the outputs: raw fractions and sample
    /// sizes survive for single-term outputs like distributions).
    pub term_estimates: Vec<Estimate>,
    /// Which shards the answer covers.
    pub coverage: Coverage,
}

/// The outcome of a cluster batch submission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSubmitReport {
    /// Submissions accepted across all shards.
    pub accepted: u64,
    /// Submissions rejected (malformed or duplicate) across all shards.
    pub rejected: u64,
    /// `(shard, submissions not ingested, error)` for shards that
    /// stayed unreachable; their users were **not** durably submitted.
    pub failed: Vec<(u32, usize, String)>,
}

impl ClusterSubmitReport {
    /// Whether every submission reached its shard.
    #[must_use]
    pub fn fully_ingested(&self) -> bool {
        self.failed.is_empty()
    }
}

/// One shard's row of a cluster status sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard.
    pub shard: u32,
    /// The address serving it.
    pub addr: String,
    /// Its counters, or the transport error that kept it unreachable.
    pub status: Result<(CoordinatorStats, ServerStats), String>,
}

/// A cluster status sweep: per-shard counters plus the exact merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStatus {
    /// One row per shard.
    pub per_shard: Vec<ShardStatus>,
    /// Coordinator counters summed over the responding shards (shards
    /// partition the population, so this is the single-node total).
    pub merged: CoordinatorStats,
}

/// Errors from cluster operations.
#[derive(Debug)]
pub enum ClusterError {
    /// The shard map failed validation.
    Map(ShardMapError),
    /// Every shard stayed unreachable after retries.
    AllShardsDown(Vec<ShardOutage>),
    /// A shard answered with a deterministic refusal (budget exhausted,
    /// malformed query, …) — retrying or failing over cannot help,
    /// every shard would refuse identically.
    Refused {
        /// The refusing shard.
        shard: u32,
        /// The wire error code (see `psketch_server::wire::codes`).
        code: u16,
        /// The server's message.
        message: String,
    },
    /// The hello handshake found the wrong node behind a mapped
    /// address (stale map or misconfigured node) — merging its counts
    /// would corrupt answers, so this is fatal rather than degraded.
    Misrouted {
        /// The shard the map expects at the address.
        shard: u32,
        /// What the node actually reported.
        found: Option<ShardIdentity>,
    },
    /// Two responding shards publish different announcements.
    AnnouncementMismatch {
        /// The disagreeing shard.
        shard: u32,
    },
    /// The merged counts could not be turned into an answer (e.g. no
    /// responding shard holds any records for the subset).
    Estimation(psketch_core::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Map(e) => write!(f, "{e}"),
            Self::AllShardsDown(outages) => {
                write!(f, "all {} shards unreachable: ", outages.len())?;
                for o in outages {
                    write!(f, "[shard {}: {}] ", o.shard, o.error)?;
                }
                Ok(())
            }
            Self::Refused {
                shard,
                code,
                message,
            } => write!(f, "shard {shard} refused (code {code}): {message}"),
            Self::Misrouted { shard, found } => match found {
                Some(identity) => write!(
                    f,
                    "address mapped to shard {shard} is actually serving shard {identity}"
                ),
                None => write!(
                    f,
                    "address mapped to shard {shard} is serving an unsharded node"
                ),
            },
            Self::AnnouncementMismatch { shard } => write!(
                f,
                "shard {shard} publishes a different announcement than shard 0; \
                 refusing to merge pools"
            ),
            Self::Estimation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ShardMapError> for ClusterError {
    fn from(e: ShardMapError) -> Self {
        Self::Map(e)
    }
}

impl From<psketch_core::Error> for ClusterError {
    fn from(e: psketch_core::Error) -> Self {
        Self::Estimation(e)
    }
}

/// Successful scatter results (per responding shard) plus outages.
type Gathered<T> = (Vec<(u32, T)>, Vec<ShardOutage>);

/// Outcome of one shard operation after retries.
enum ShardAttempt<T> {
    Ok(T),
    /// Transport-level failure: the shard may be down; degrade.
    Down(String),
    /// Deterministic server refusal: fail the whole operation.
    Refused {
        code: u16,
        message: String,
    },
    /// Wrong node behind the address: fail the whole operation.
    Misrouted(Option<ShardIdentity>),
}

/// A scatter-gather router over a shard map.
pub struct Router {
    map: ShardMap,
    config: RouterConfig,
    conns: Vec<Option<Client>>,
    /// Last-known accepted-user count per shard (status sweeps).
    known_users: Vec<Option<u64>>,
    announcement: Option<Announcement>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.map.len())
            .field("version", &self.map.version)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Builds a router over a validated map. No connections are opened
    /// until the first operation needs them.
    ///
    /// # Errors
    ///
    /// Shard-map validation errors.
    pub fn new(map: ShardMap, config: RouterConfig) -> Result<Self, ClusterError> {
        map.validate()?;
        let n = map.len();
        Ok(Self {
            map,
            config,
            conns: (0..n).map(|_| None).collect(),
            known_users: vec![None; n],
            announcement: None,
        })
    }

    /// The shard map in force.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Ensures a verified connection to `shard`, running the hello
    /// handshake on fresh connects.
    fn connect(&mut self, shard: u32) -> Result<&mut Client, ShardAttempt<()>> {
        let slot = shard as usize;
        if self.conns[slot].is_none() {
            let addr = self.map.addr_of(shard).to_string();
            let mut client = Client::connect(addr.as_str(), self.config.timeout)
                .map_err(|e| ShardAttempt::Down(e.to_string()))?;
            let identity = match client.hello(self.config.analyst) {
                Ok(identity) => identity,
                Err(ClientError::Server { code, message }) => {
                    return Err(ShardAttempt::Refused { code, message });
                }
                Err(e) => return Err(ShardAttempt::Down(e.to_string())),
            };
            let expected = ShardIdentity {
                shard_id: shard,
                shard_count: self.map.len() as u32,
            };
            match identity {
                Some(found) if found == expected => {}
                // A standalone node is acceptable only as a 1-shard map.
                None if self.map.len() == 1 => {}
                other => return Err(ShardAttempt::Misrouted(other)),
            }
            self.conns[slot] = Some(client);
        }
        Ok(self.conns[slot].as_mut().expect("connection just ensured"))
    }

    /// Runs one operation against one shard with retry + backoff.
    /// Transport failures retry (reconnecting each time); server error
    /// frames don't.
    fn try_shard<T>(
        &mut self,
        shard: u32,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> ShardAttempt<T> {
        let mut last_err = String::new();
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                std::thread::sleep(self.config.backoff * (1 << (attempt - 1)));
            }
            let client = match self.connect(shard) {
                Ok(client) => client,
                Err(ShardAttempt::Down(e)) => {
                    last_err = e;
                    continue;
                }
                Err(ShardAttempt::Refused { code, message }) => {
                    return ShardAttempt::Refused { code, message };
                }
                Err(ShardAttempt::Misrouted(found)) => return ShardAttempt::Misrouted(found),
                Err(ShardAttempt::Ok(())) => unreachable!("connect never yields Ok"),
            };
            match op(client) {
                Ok(value) => return ShardAttempt::Ok(value),
                Err(ClientError::Server { code, message }) => {
                    return ShardAttempt::Refused { code, message };
                }
                Err(e) => {
                    // The connection is poisoned or gone; reconnect on
                    // the next attempt.
                    last_err = e.to_string();
                    self.conns[shard as usize] = None;
                }
            }
        }
        ShardAttempt::Down(last_err)
    }

    /// Scatters one operation over every shard, gathering successes and
    /// outages. Deterministic refusals and misrouted nodes abort.
    fn scatter<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<Gathered<T>, ClusterError> {
        let mut gathered = Vec::new();
        let mut outages = Vec::new();
        for shard in 0..self.map.len() as u32 {
            match self.try_shard(shard, &mut op) {
                ShardAttempt::Ok(value) => gathered.push((shard, value)),
                ShardAttempt::Down(error) => outages.push(ShardOutage { shard, error }),
                ShardAttempt::Refused { code, message } => {
                    return Err(ClusterError::Refused {
                        shard,
                        code,
                        message,
                    });
                }
                ShardAttempt::Misrouted(found) => {
                    return Err(ClusterError::Misrouted { shard, found });
                }
            }
        }
        if gathered.is_empty() {
            return Err(ClusterError::AllShardsDown(outages));
        }
        Ok((gathered, outages))
    }

    fn coverage(
        &self,
        responding: Vec<u32>,
        missing: Vec<ShardOutage>,
        population: u64,
    ) -> Coverage {
        let missing_users = missing
            .iter()
            .map(|o| self.known_users[o.shard as usize])
            .sum::<Option<u64>>();
        Coverage {
            total_shards: self.map.len() as u32,
            responding,
            missing,
            population,
            missing_users,
        }
    }

    /// The deployment's announcement: fetched from the first responding
    /// shard and verified identical on every other responding shard
    /// (then cached).
    ///
    /// # Errors
    ///
    /// Transport errors on all shards, or an announcement mismatch.
    pub fn announcement(&mut self) -> Result<Announcement, ClusterError> {
        if let Some(ann) = &self.announcement {
            return Ok(ann.clone());
        }
        let (gathered, _) = self.scatter(Client::announcement)?;
        let (first_shard, reference) = &gathered[0];
        debug_assert!(first_shard < &(self.map.len() as u32));
        for (shard, ann) in &gathered[1..] {
            if ann != reference {
                return Err(ClusterError::AnnouncementMismatch { shard: *shard });
            }
        }
        self.announcement = Some(reference.clone());
        Ok(reference.clone())
    }

    /// The bias the merged-count inversion must use: the **quantized**
    /// `SketchParams::p()`, exactly as the shards' own estimators use it
    /// — the raw `announcement.p` can differ in the low mantissa bits
    /// after `Bias` fixed-point quantization, which would break
    /// bit-identity with single-node answers.
    fn bias(&mut self) -> Result<f64, ClusterError> {
        let params = self.announcement()?.validate()?;
        Ok(params.p())
    }

    /// Submits a batch, fanned out by each user's shard. Shards that
    /// stay unreachable are reported in the outcome (those users are
    /// *not* ingested); reachable shards are unaffected.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Refused`] if a shard rejects a batch frame
    /// outright, [`ClusterError::Misrouted`] on map/node disagreement.
    pub fn submit_batch(
        &mut self,
        subs: &[Submission],
    ) -> Result<ClusterSubmitReport, ClusterError> {
        let mut per_shard: Vec<Vec<Submission>> = (0..self.map.len()).map(|_| Vec::new()).collect();
        for sub in subs {
            per_shard[self.map.shard_of(sub.user) as usize].push(sub.clone());
        }
        let chunk = self.config.submit_chunk.max(1);
        let mut report = ClusterSubmitReport::default();
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard = shard as u32;
            match self.try_shard(shard, |client| client.submit_chunked(&batch, chunk)) {
                ShardAttempt::Ok(ack) => {
                    report.accepted += ack.accepted;
                    report.rejected += ack.rejected;
                }
                ShardAttempt::Down(error) => report.failed.push((shard, batch.len(), error)),
                ShardAttempt::Refused { code, message } => {
                    return Err(ClusterError::Refused {
                        shard,
                        code,
                        message,
                    });
                }
                ShardAttempt::Misrouted(found) => {
                    return Err(ClusterError::Misrouted { shard, found });
                }
            }
        }
        Ok(report)
    }

    /// Executes a compiled [`TermPlan`] across the cluster — the one
    /// distributed query path every family routes through. Each shard
    /// counts the plan's deduplicated terms in a single generic
    /// `PartialTermCounts` round trip; the router merges the integer
    /// counts, inverts once per term, and runs the plan's
    /// post-combination exactly as the single-node engine would.
    ///
    /// # Errors
    ///
    /// All-shards-down, refusals, or estimation failure (a term whose
    /// merged population is zero — no responding shard holds records
    /// for its subset).
    pub fn execute_plan(&mut self, plan: &TermPlan) -> Result<ClusterPlanAnswer, ClusterError> {
        let p = self.bias()?;
        let terms: Vec<ConjunctiveQuery> = plan.terms().to_vec();
        let expected = terms.len();
        let (gathered, outages) = self.scatter(|client| client.partial_term_counts(&terms))?;
        let mut acc = PlanAccumulator::for_plan(plan);
        let mut responding = Vec::with_capacity(gathered.len());
        for (shard, counts) in gathered {
            // A reply of the wrong shape is a protocol violation, not an
            // empty share — merging a default would silently drop the
            // shard's population from a "complete" answer.
            if counts.len() != expected {
                return Err(ClusterError::Estimation(psketch_core::Error::Codec {
                    reason: format!(
                        "shard {shard} answered {} counts to a {expected}-term plan",
                        counts.len()
                    ),
                }));
            }
            let pairs: Vec<(u64, u64)> = counts.iter().map(|c| (c.ones, c.population)).collect();
            acc.absorb(&pairs)?;
            responding.push(shard);
        }
        let term_estimates = acc.finish(p)?;
        let outputs = plan.evaluate(&term_estimates)?;
        let coverage = self.coverage(responding, outages, acc.max_population());
        Ok(ClusterPlanAnswer {
            outputs,
            term_estimates,
            coverage,
        })
    }

    /// Estimates one conjunctive frequency (a single-term plan).
    ///
    /// # Errors
    ///
    /// As [`Router::execute_plan`].
    pub fn conjunctive(
        &mut self,
        subset: BitSubset,
        value: BitString,
    ) -> Result<ClusterEstimate, ClusterError> {
        let query = ConjunctiveQuery::new(subset, value).map_err(ClusterError::Estimation)?;
        let answer = self.execute_plan(&TermPlan::for_conjunctive(query))?;
        Ok(ClusterEstimate {
            estimate: answer.term_estimates[0],
            coverage: answer.coverage,
        })
    }

    /// Estimates a full `2^k` distribution (a `2^k`-term plan, indexed
    /// by the LSB-first integer encoding of the value).
    ///
    /// # Errors
    ///
    /// As [`Router::execute_plan`].
    pub fn distribution(&mut self, subset: BitSubset) -> Result<ClusterDistribution, ClusterError> {
        let answer = self.execute_plan(&TermPlan::for_distribution(&subset))?;
        Ok(ClusterDistribution {
            estimates: answer.term_estimates,
            coverage: answer.coverage,
        })
    }

    /// Evaluates a linear query (a single-output plan): each shard
    /// counts the query's distinct conjunctive terms in one round trip,
    /// and the merged counts are combined exactly as the single-node
    /// engine would (memoized duplicates, original term order).
    ///
    /// # Errors
    ///
    /// As [`Router::execute_plan`].
    pub fn linear(&mut self, lq: &LinearQuery) -> Result<ClusterLinear, ClusterError> {
        let plan = TermPlan::compile(lq);
        let mut answer = self.execute_plan(&plan)?;
        let output = answer.outputs.remove(0);
        // The binding population for a linear answer is its smallest
        // term's merged sample.
        answer.coverage.population = u64::try_from(output.min_sample_size).unwrap_or(u64::MAX);
        Ok(ClusterLinear {
            answer: output,
            coverage: answer.coverage,
        })
    }

    /// Sweeps every shard for coordinator + server stats, refreshing the
    /// per-shard population cache used for degraded-answer reporting.
    ///
    /// Unreachable shards appear with their error instead of counters —
    /// a status sweep never fails outright unless *all* shards are down.
    ///
    /// # Errors
    ///
    /// All-shards-down, refusals, misrouted nodes.
    pub fn status(&mut self) -> Result<ClusterStatus, ClusterError> {
        let (gathered, outages) = self.scatter(|client| {
            let coordinator = client.stats()?;
            let server = client.server_stats()?;
            Ok((coordinator, server))
        })?;
        let mut per_shard: Vec<ShardStatus> = Vec::with_capacity(self.map.len());
        let mut merged = CoordinatorStats::default();
        for (shard, (coordinator, server)) in gathered {
            self.known_users[shard as usize] = Some(coordinator.accepted);
            merged.merge(&coordinator);
            per_shard.push(ShardStatus {
                shard,
                addr: self.map.addr_of(shard).to_string(),
                status: Ok((coordinator, server)),
            });
        }
        for outage in outages {
            per_shard.push(ShardStatus {
                shard: outage.shard,
                addr: self.map.addr_of(outage.shard).to_string(),
                status: Err(outage.error),
            });
        }
        per_shard.sort_by_key(|s| s.shard);
        Ok(ClusterStatus { per_shard, merged })
    }

    /// Pings every shard; returns the set of unreachable shards.
    ///
    /// # Errors
    ///
    /// Refusals and misrouted nodes only (a fully down cluster is a
    /// full outage list, not an error).
    pub fn ping(&mut self) -> Result<Vec<ShardOutage>, ClusterError> {
        match self.scatter(Client::ping) {
            Ok((_, outages)) => Ok(outages),
            Err(ClusterError::AllShardsDown(outages)) => Ok(outages),
            Err(e) => Err(e),
        }
    }
}

/// Ingests a submission set through one independent connection per
/// shard, in parallel — the scale-out ingest path (a [`Router`] fans
/// out sequentially, which measures scatter latency, not throughput).
///
/// Every submission is routed by the map's placement hash; chunking
/// bounds frame sizes. Returns `(accepted, rejected)` summed over
/// shards.
///
/// # Errors
///
/// The first shard error encountered, as a string (all shards are
/// attempted regardless).
pub fn parallel_ingest(
    map: &ShardMap,
    subs: &[Submission],
    timeout: Duration,
    chunk: usize,
) -> Result<(u64, u64), String> {
    let mut per_shard: Vec<Vec<Submission>> = (0..map.len()).map(|_| Vec::new()).collect();
    for sub in subs {
        per_shard[map.shard_of(sub.user) as usize].push(sub.clone());
    }
    let results: Vec<Result<(u64, u64), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .iter()
            .enumerate()
            .map(|(shard, batch)| {
                let addr = map.addr_of(shard as u32).to_string();
                scope.spawn(move || {
                    if batch.is_empty() {
                        return Ok((0, 0));
                    }
                    let mut client = Client::connect(addr.as_str(), timeout)
                        .map_err(|e| format!("shard {shard}: {e}"))?;
                    let ack = client
                        .submit_chunked(batch, chunk.max(1))
                        .map_err(|e| format!("shard {shard}: {e}"))?;
                    Ok((ack.accepted, ack.rejected))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect()
    });
    let mut accepted = 0;
    let mut rejected = 0;
    for result in results {
        let (a, r) = result?;
        accepted += a;
        rejected += r;
    }
    Ok((accepted, rejected))
}
